"""Performance-tracking benchmark harness (micro + macro).

Usage (from the repository root)::

    python -m benchmarks.perf                 # full run, writes BENCH_p3q.json
    python -m benchmarks.perf --quick         # CI smoke run on a tiny network
    python -m benchmarks.perf --validate BENCH_p3q.json
    python -m benchmarks.perf --compare /tmp/BENCH_now.json --against BENCH_p3q.json
    python -m benchmarks.perf --scale --profile  # adds N=5000/10000 + phase timings
    python -m benchmarks.perf --scale-smoke 10000 --budget-seconds 120

The harness measures the two hot paths the performance layer optimizes --
Bloom-digest operations and similarity scoring -- against their seed
(pre-optimization) baselines, plus end-to-end simulator cycles/sec at
several network sizes, and persists everything to ``BENCH_p3q.json`` so the
repository's performance trajectory is tracked PR over PR.
"""

import sys
from pathlib import Path

# Allow `python -m benchmarks.perf` without an explicit PYTHONPATH=src.
_SRC = Path(__file__).resolve().parent.parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

from .harness import (  # noqa: E402
    DEFAULT_REPORT_NAME,
    SCALE_MACRO_SIZES,
    SCHEMA_VERSION,
    bench_digest,
    bench_macro,
    bench_scale_smoke,
    bench_serving,
    bench_similarity,
    compare_reports,
    main,
    run_suite,
    validate_report,
    write_report,
)

__all__ = [
    "DEFAULT_REPORT_NAME",
    "SCALE_MACRO_SIZES",
    "SCHEMA_VERSION",
    "bench_digest",
    "bench_macro",
    "bench_scale_smoke",
    "bench_serving",
    "bench_similarity",
    "compare_reports",
    "main",
    "run_suite",
    "validate_report",
    "write_report",
]
