"""``python -m benchmarks.perf`` -- deprecated shim for ``python -m repro perf``."""

import sys
import warnings

from . import main

if __name__ == "__main__":
    warnings.warn(
        "'python -m benchmarks.perf' is deprecated; use 'python -m repro perf'",
        DeprecationWarning,
    )
    sys.exit(main())
