"""Entry point for ``python -m benchmarks.perf``."""

import sys

from . import main

if __name__ == "__main__":
    sys.exit(main())
