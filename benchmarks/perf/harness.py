"""Micro and macro performance benchmarks writing ``BENCH_p3q.json``.

Four benchmark families:

* **digest** -- Bloom-filter construction and membership throughput of the
  bit-packed :class:`repro.bloom.BloomFilter` versus the seed
  :class:`repro.bloom._legacy.LegacyBloomFilter` (per-probe ``hashlib``),
  at the paper's digest geometry (20 Kbit / 14 hashes, ~250-item profiles);
* **similarity** -- profile-scoring throughput of the interned fast path
  (:func:`repro.similarity.overlap_score` on cached action-id sets) versus
  a naive baseline that rebuilds tuple sets per comparison, the seed's
  behaviour;
* **columnar** -- digest-row build and pair-probe throughput of the
  columnar store (:mod:`repro.data.columnar`) versus the object-level
  big-int path, at large N;
* **macro** -- end-to-end simulator cycles/sec (lazy gossip and eager query
  processing) at several network sizes.

The report format is versioned JSON; :func:`validate_report` is the schema
check CI runs against the smoke report.  All numbers are best-of-``repeats``
wall-clock rates, so background noise biases results low, never high.

Schema v4 adds per-phase peak-RSS accounting (cumulative ``ru_maxrss``
observed after each phase), the resolved executor kind plus pool-reuse
count on sharded entries, the ``columnar`` micro section, and the optional
``worker_scaling`` serial-vs-sharded section.  ``--require-executor`` turns
a silent executor degradation (requested workers resolving to the inline
pass-through) into a hard failure -- CI's multi-core jobs use it so a
mis-provisioned runner cannot greenwash the parallel path.

Schema v5 adds the ``serving`` section: the query-serving sweep
(:mod:`repro.serving`) reporting QPS (per cycle and per wall-second),
p50/p95/p99 latency-in-cycles, coverage-at-cutoff for abandoned queries
and the CPU/RSS envelope, per ``workload@concurrency`` cell.  ``--serving``
adds it to a suite run, ``--serving-smoke`` runs a small sweep standalone
under a wall-clock budget (the CI PR job), and ``--compare`` guards
``qps_wall`` drops and ``latency_p95`` increases beyond the regression
budget whenever both reports carry the section.

Schema v6 adds the ``service`` section: codec encode/decode frames/sec per
message type (JSON vs binary wire codec, headlined by the
digest-advertisement round-trip speedup) plus end-to-end service-demo round
throughput and rpc p95 latency at a couple of network sizes.  ``--service``
adds it to a suite run, ``--service-smoke`` runs the quick variant
standalone under a wall-clock budget (the CI ``service-perf`` job), and
``--compare`` guards demo ``rounds_per_sec`` drops and ``rpc_p95_ms``
increases the same self-activating way as the serving guard.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

SCHEMA_VERSION = 6
DEFAULT_REPORT_NAME = "BENCH_p3q.json"

#: Macro benchmark network sizes (the issue's N=100/500/1000 trajectory).
DEFAULT_MACRO_SIZES = (100, 500, 1000)
QUICK_MACRO_SIZES = (30,)
#: Large-N sizes exercised by ``--scale`` and the CI scale-smoke job.
SCALE_MACRO_SIZES = (5_000, 10_000, 100_000)
#: From this size on, the eager phase starts from lazy-built personal
#: networks instead of the offline ideal index: ``IdealNetworkIndex`` is
#: O(N^2) pairwise scoring, which is *setup*, and at N >= 2000 it would
#: dominate the benchmark's wall clock without measuring the simulator.
LAZY_WARM_THRESHOLD = 2_000
#: From this size on, macro entries run one timed lazy cycle and a single
#: repeat (a 100k-node cycle is tens of seconds; repeats would add minutes
#: of benchmark time without changing the story), and the simulation folds
#: traffic rows into aggregates every cycle to bound memory.
XL_SIZE_THRESHOLD = 50_000


_median = statistics.median


def _peak_rss_bytes() -> Optional[int]:
    """The process's lifetime peak RSS in bytes (``None`` off-POSIX).

    Delegates to the serving layer's shared probe
    (:func:`repro.serving.resources.peak_rss_bytes`) -- one implementation
    of the ``ru_maxrss`` unit handling serves both harnesses.
    """
    from repro.serving.resources import peak_rss_bytes

    return peak_rss_bytes()


def _pool_reuse_count(sim) -> int:
    """Barriers served by the simulation's persistent pool incarnation."""
    engine = sim.engine
    pool = getattr(engine, "_pool", None)
    if pool is not None:
        return pool.barriers_served
    return 0


def _best_rate(operation: Callable[[], int], repeats: int) -> float:
    """Best observed rate (operations/second) over ``repeats`` timed runs.

    ``operation`` performs a batch of work and returns how many operations
    the batch contained.
    """
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        count = operation()
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, count / elapsed)
    return best


# --------------------------------------------------------------------- digest


def bench_digest(
    num_items: int = 250,
    num_probes: int = 2_000,
    repeats: int = 5,
    quick: bool = False,
) -> Dict[str, float]:
    """Bloom digest construction and membership throughput, new vs. legacy."""
    from repro.bloom import BloomFilter, clear_hash_cache
    from repro.bloom._legacy import LegacyBloomFilter

    if quick:
        num_probes = min(num_probes, 500)
        repeats = 2

    items = list(range(num_items))
    # Half members, half non-members: exercises both the early-exit negative
    # probe and the full k-probe positive path.
    half = num_probes // 2
    probes = [items[i % num_items] for i in range(half)]
    probes += list(range(num_items, num_items + half))

    def build_new() -> int:
        for _ in range(10):
            BloomFilter.from_items(items)
        return 10

    def build_legacy() -> int:
        for _ in range(10):
            LegacyBloomFilter.from_items(items)
        return 10

    new_filter = BloomFilter.from_items(items)
    legacy_filter = LegacyBloomFilter.from_items(items)

    def probe(bloom) -> Callable[[], int]:
        def run() -> int:
            hits = 0
            for key in probes:
                if key in bloom:
                    hits += 1
            # Members always hit (no false negatives); keeps the loop live.
            assert hits >= half
            return len(probes)

        return run

    clear_hash_cache()
    build_per_sec = _best_rate(build_new, repeats)
    membership_per_sec = _best_rate(probe(new_filter), repeats)
    legacy_build_per_sec = _best_rate(build_legacy, repeats)
    legacy_membership_per_sec = _best_rate(probe(legacy_filter), repeats)

    return {
        "num_items": num_items,
        "num_probes": len(probes),
        "build_per_sec": build_per_sec,
        "membership_ops_per_sec": membership_per_sec,
        "legacy_build_per_sec": legacy_build_per_sec,
        "legacy_membership_ops_per_sec": legacy_membership_per_sec,
        "build_speedup": build_per_sec / legacy_build_per_sec,
        "membership_speedup": membership_per_sec / legacy_membership_per_sec,
    }


# ----------------------------------------------------------------- similarity


def _naive_overlap(a, b) -> float:
    """The seed implementation of the overlap score.

    Copies both action sets (the seed's ``actions`` property returned a fresh
    ``frozenset`` per access) and intersects them with a Python-level
    comprehension, exactly like the pre-interning ``common_actions``.
    """
    actions_a = frozenset(iter(a))
    actions_b = frozenset(iter(b))
    if len(actions_a) > len(actions_b):
        actions_a, actions_b = actions_b, actions_a
    return float(len({action for action in actions_a if action in actions_b}))


def bench_similarity(
    num_users: int = 120,
    repeats: int = 5,
    quick: bool = False,
    seed: int = 7,
) -> Dict[str, float]:
    """All-pairs scoring throughput, interned fast path vs. naive baseline."""
    from repro.data import SyntheticConfig, generate_dataset
    from repro.similarity import cosine_score, jaccard_score, overlap_score

    if quick:
        num_users = min(num_users, 40)
        repeats = 2

    dataset = generate_dataset(SyntheticConfig(num_users=num_users, seed=seed))
    profiles = list(dataset.profiles())
    pairs = [
        (profiles[i], profiles[j])
        for i in range(len(profiles))
        for j in range(i + 1, len(profiles))
    ]

    def run_metric(metric) -> Callable[[], int]:
        def run() -> int:
            total = 0.0
            for a, b in pairs:
                total += metric(a, b)
            assert total >= 0.0
            return len(pairs)

        return run

    overlap_per_sec = _best_rate(run_metric(overlap_score), repeats)
    naive_per_sec = _best_rate(run_metric(_naive_overlap), repeats)

    return {
        "num_users": num_users,
        "num_pairs": len(pairs),
        "overlap_pairs_per_sec": overlap_per_sec,
        "naive_overlap_pairs_per_sec": naive_per_sec,
        "overlap_speedup": overlap_per_sec / naive_per_sec,
        "jaccard_pairs_per_sec": _best_rate(run_metric(jaccard_score), repeats),
        "cosine_pairs_per_sec": _best_rate(run_metric(cosine_score), repeats),
    }


# ------------------------------------------------------------------- columnar

#: Columnar micro-benchmark population sizes (the issue's 1e4 / 1e5 points).
DEFAULT_COLUMNAR_SIZES = (10_000, 100_000)
QUICK_COLUMNAR_SIZES = (1_000,)


def bench_columnar(
    sizes: Sequence[int] = DEFAULT_COLUMNAR_SIZES,
    repeats: int = 3,
    quick: bool = False,
    seed: int = 5,
    num_bits: int = 20_000,
    num_hashes: int = 14,
    object_build_cap: int = 2_000,
    num_probe_pairs: int = 200,
) -> Dict[str, Dict[str, float]]:
    """Digest-row build and pair-probe throughput, columnar vs object path.

    Per population size:

    * **build** -- rows/sec of :meth:`DigestMatrix.build_rows` over the
      whole store (the cache-hoisted bulk path the setup pipeline uses)
      versus profiles/sec of ``BloomFilter.from_items`` over a capped
      sample (the PR-1 per-profile object path; building all N that way
      is exactly the cost the columnar build replaces, so the sample keeps
      the benchmark honest *and* finite).
    * **probe** -- item probes/sec of the shard workers' pricing loop
      (``mask_int`` AND against the row's bits integer) versus the
      object path (``item in bloom`` positional probes), over the same
      ``(receiver, subject)`` pair sample.
    """
    from repro.bloom import BloomFilter
    from repro.data.columnar import (
        ColumnarStore,
        DigestMatrix,
        geometry_mask_cache,
        mask_int,
    )
    from repro.data.synthetic import SyntheticConfig, SyntheticTraceGenerator

    if quick:
        sizes = QUICK_COLUMNAR_SIZES
        repeats = 2
        object_build_cap = 200
        num_probe_pairs = 50

    results: Dict[str, Dict[str, float]] = {}
    for size in sizes:
        generator = SyntheticTraceGenerator(SyntheticConfig(num_users=size, seed=seed))
        store = ColumnarStore.from_action_stream(generator.iter_user_actions())
        matrix = DigestMatrix(len(store), num_bits, num_hashes)

        def build_columnar() -> int:
            return matrix.build_rows(store)

        sample = list(range(0, len(store), max(1, len(store) // object_build_cap)))
        sample = sample[:object_build_cap]

        def build_object() -> int:
            for row in sample:
                BloomFilter.from_items(
                    store.distinct_items_of_row(row),
                    num_bits=num_bits,
                    num_hashes=num_hashes,
                )
            return len(sample)

        build_rows_per_sec = _best_rate(build_columnar, repeats)
        object_rows_per_sec = _best_rate(build_object, repeats)

        # Probe benchmark: the same pair set through both representations.
        step = max(1, len(store) // num_probe_pairs)
        pairs = [
            (row, (row + 7) % len(store)) for row in range(0, len(store), step)
        ][:num_probe_pairs]
        probes_per_round = sum(
            len(store.distinct_items_of_row(receiver)) for receiver, _ in pairs
        )
        blooms = {
            subject: BloomFilter.from_state(
                num_bits, num_hashes, matrix.row_bits_int(subject), 0
            )
            for _, subject in pairs
        }

        mask_cache = geometry_mask_cache(num_bits, num_hashes)

        def probe_columnar() -> int:
            cache_get = mask_cache.get
            for receiver, subject in pairs:
                bits = matrix.row_bits_int(subject)
                for item in store.distinct_items_of_row(receiver):
                    mask = cache_get(item)
                    if mask is None:
                        mask = mask_int(item, num_bits, num_hashes)
                    if bits & mask == mask:
                        pass
            return probes_per_round

        def probe_object() -> int:
            for receiver, subject in pairs:
                bloom = blooms[subject]
                for item in store.distinct_items_of_row(receiver):
                    if item in bloom:
                        pass
            return probes_per_round

        probe_columnar_per_sec = _best_rate(probe_columnar, repeats)
        probe_object_per_sec = _best_rate(probe_object, repeats)

        results[str(size)] = {
            "num_users": size,
            "num_actions": store.num_actions,
            "digest_bits": num_bits,
            "digest_hashes": num_hashes,
            "build_rows_per_sec": build_rows_per_sec,
            "object_build_rows_per_sec": object_rows_per_sec,
            "object_build_sampled_rows": len(sample),
            "build_speedup": (
                build_rows_per_sec / object_rows_per_sec if object_rows_per_sec else 0.0
            ),
            "probe_pairs": len(pairs),
            "probe_ops_per_sec": probe_columnar_per_sec,
            "object_probe_ops_per_sec": probe_object_per_sec,
            "probe_speedup": (
                probe_columnar_per_sec / probe_object_per_sec
                if probe_object_per_sec
                else 0.0
            ),
        }
        matrix.close()
    return results


# ------------------------------------------------------------- worker scaling


def bench_worker_scaling(
    size: int = 10_000,
    workers: int = 4,
    engine_executor: str = "auto",
    lazy_cycles: int = 2,
    seed: int = 1,
    dataset_cache: Optional[Path] = None,
) -> Dict[str, float]:
    """Serial vs sharded lazy throughput at one size, same process, same data.

    The committed report's evidence that the requested worker count
    resolved to a real parallel executor and what it bought: records both
    lazy cycles/sec rates, the resolved executor, the pool-reuse count and
    the speedup.  On a single-core runner the executor honestly resolves
    to ``inline`` (or the explicit executor runs without a core to win on)
    and the speedup reads below one -- ``--require-executor`` is how CI
    rejects that outcome on machines that should do better.
    """
    import gc

    from repro.data import SyntheticConfig, load_or_generate_synthetic
    from repro.p3q import P3QConfig, P3QSimulation
    from repro.simulator.shard import resolve_executor

    dataset, cache_status = load_or_generate_synthetic(
        SyntheticConfig(num_users=size, seed=seed), dataset_cache
    )

    def run(run_workers: int, executor: str):
        config = P3QConfig(
            network_size=max(10, min(50, size // 4)),
            storage=3,
            seed=seed,
            workers=run_workers,
            engine_executor=executor,
        )
        sim = P3QSimulation(dataset.copy(), config)
        sim.bootstrap_random_views()
        gc.collect()
        start = time.perf_counter()
        sim.run_lazy(lazy_cycles)
        elapsed = time.perf_counter() - start
        rate = lazy_cycles / elapsed if elapsed > 0 else 0.0
        reuse = _pool_reuse_count(sim)
        sim.close()
        return rate, reuse

    serial_rate, _ = run(1, "inline")
    sharded_rate, pool_reuse = run(workers, engine_executor)

    return {
        "num_nodes": size,
        "lazy_cycles": lazy_cycles,
        "workers": workers,
        "engine_executor": resolve_executor(engine_executor, workers),
        "serial_lazy_cycles_per_sec": serial_rate,
        "sharded_lazy_cycles_per_sec": sharded_rate,
        "speedup": sharded_rate / serial_rate if serial_rate else 0.0,
        "pool_reuse_count": pool_reuse,
        "dataset_cache": cache_status,
    }


# ---------------------------------------------------------------------- macro


def bench_macro(
    sizes: Sequence[int] = DEFAULT_MACRO_SIZES,
    lazy_cycles: int = 3,
    num_queries: int = 10,
    quick: bool = False,
    seed: int = 1,
    repeats: int = 2,
    profile_phases: bool = False,
    workers: int = 1,
    engine_executor: str = "auto",
    dataset_cache: Optional[Path] = None,
) -> Dict[str, Dict[str, float]]:
    """End-to-end simulator throughput: lazy and eager cycles/sec per size.

    Each size runs ``repeats`` fresh simulations.  With three or more
    repeats the headline rate is the **median** of the per-repeat rates
    (robust against noisy CI runners in both directions; the perf guard
    runs this mode); with fewer it remains the best observed rate (noise
    biases low, never high).  The per-repeat samples are reported either
    way, so regressions can be judged against the spread.  Garbage is
    collected before every timed region so earlier benchmarks' heap
    pressure cannot leak into this one.

    Setup (dataset generation or cache load, node construction, view
    bootstrap, eager warm-up) is timed *separately* from the steady-state
    cycle loops and reported as ``setup_seconds`` -- cycles/sec measures
    cycles only, at every size.  Sizes at or above
    :data:`LAZY_WARM_THRESHOLD` warm the eager phase from the lazy-built
    personal networks (``eager_warm: "lazy"``) instead of the O(N^2)
    offline ideal index; sizes at or above :data:`XL_SIZE_THRESHOLD` run a
    single timed lazy cycle once (and fold traffic rows every cycle --
    ``stats_flush_every=1`` -- to bound memory).  ``workers`` runs the
    sharded engine; each entry records both the requested worker count and
    the executor that actually resolved on this machine, so a report from
    a single-core runner is legible as such.  With ``profile_phases`` each
    size also carries a ``phases`` dict of per-phase wall-clock seconds
    (the ``--profile`` flag).
    """
    import gc

    from repro.data import QueryWorkloadGenerator, SyntheticConfig, load_or_generate_synthetic
    from repro.p3q import P3QConfig, P3QSimulation
    from repro.simulator.shard import resolve_executor

    if quick:
        sizes = QUICK_MACRO_SIZES
        lazy_cycles = 2
        num_queries = 3
        repeats = 1

    results: Dict[str, Dict[str, float]] = {}
    for size in sizes:
        xl = size >= XL_SIZE_THRESHOLD
        size_lazy_cycles = 1 if xl else lazy_cycles
        size_repeats = 1 if xl else max(1, repeats)

        start = time.perf_counter()
        dataset, cache_status = load_or_generate_synthetic(
            SyntheticConfig(num_users=size, seed=seed), dataset_cache
        )
        dataset_seconds = time.perf_counter() - start

        config = P3QConfig(
            network_size=max(10, min(50, size // 4)),
            storage=3,
            seed=seed,
            workers=workers,
            engine_executor=engine_executor,
            stats_flush_every=1 if xl else None,
        )
        ideal_warm = size < LAZY_WARM_THRESHOLD
        lazy_samples: List[float] = []
        eager_samples: List[float] = []
        eager_run = 0
        #: Per-repeat phase breakdowns, parallel to ``lazy_samples``.
        phase_runs: List[Dict[str, float]] = []
        pool_reuse = 0
        peak_rss: Dict[str, int] = {}
        for _ in range(size_repeats):
            phases: Dict[str, float] = {"dataset_seconds": dataset_seconds}
            rss = _peak_rss_bytes()
            if rss is not None:
                peak_rss["dataset"] = rss

            start = time.perf_counter()
            sim = P3QSimulation(dataset.copy(), config)
            phases["build_seconds"] = time.perf_counter() - start

            start = time.perf_counter()
            sim.bootstrap_random_views()
            phases["bootstrap_seconds"] = time.perf_counter() - start
            rss = _peak_rss_bytes()
            if rss is not None:
                peak_rss["bootstrap"] = rss

            gc.collect()
            start = time.perf_counter()
            sim.run_lazy(size_lazy_cycles)
            lazy_elapsed = time.perf_counter() - start
            phases["lazy_seconds"] = lazy_elapsed
            rss = _peak_rss_bytes()
            if rss is not None:
                peak_rss["lazy"] = rss

            # The eager phase needs populated personal networks with unstored
            # neighbours (that is where the remaining lists come from).  Small
            # sizes warm-start from the offline ideal networks like the
            # paper's query experiments; large sizes reuse the networks the
            # lazy phase just built (the ideal index is quadratic setup).
            start = time.perf_counter()
            if ideal_warm:
                sim.warm_start()
            workload = QueryWorkloadGenerator(dataset, seed=seed)
            queriers = dataset.user_ids[: min(num_queries, len(dataset))]
            queries = [workload.query_for(user_id=uid) for uid in queriers]
            sim.issue_queries(queries)
            phases["warm_seconds"] = time.perf_counter() - start

            gc.collect()
            start = time.perf_counter()
            # XL sizes keep the eager engine turning even when the one warm
            # lazy cycle left some queriers with nothing unstored to chase
            # (the scale gate does the same): the measured rate is then the
            # eager scheduling cost at population scale, never zero.
            run = sim.run_eager(cycles=50, stop_when_idle=not xl)
            eager_elapsed = time.perf_counter() - start
            phases["eager_seconds"] = eager_elapsed
            rss = _peak_rss_bytes()
            if rss is not None:
                peak_rss["eager"] = rss
            if eager_elapsed > 0:
                eager_samples.append(run / eager_elapsed)
                eager_run = run
            if lazy_elapsed > 0:
                lazy_samples.append(size_lazy_cycles / lazy_elapsed)
                phase_runs.append(phases)
            pool_reuse = max(pool_reuse, _pool_reuse_count(sim))
            sim.close()

        # Headline selection: median sample with >= 3 repeats, best otherwise.
        use_median = len(lazy_samples) >= 3
        headline_lazy = _median(lazy_samples) if use_median else max(lazy_samples, default=0.0)
        headline_eager = (
            _median(eager_samples) if len(eager_samples) >= 3 else max(eager_samples, default=0.0)
        )
        # The reported breakdown describes the repeat whose lazy rate is the
        # headline (the closest sample, for an even-count median).
        if phase_runs:
            chosen = min(
                range(len(lazy_samples)),
                key=lambda i: abs(lazy_samples[i] - headline_lazy),
            )
            chosen_phases = phase_runs[chosen]
        else:
            chosen_phases = {"dataset_seconds": dataset_seconds}
        setup_seconds = (
            chosen_phases.get("dataset_seconds", dataset_seconds)
            + chosen_phases.get("build_seconds", 0.0)
            + chosen_phases.get("bootstrap_seconds", 0.0)
            + chosen_phases.get("warm_seconds", 0.0)
        )

        entry: Dict[str, float] = {
            "num_nodes": size,
            "lazy_cycles": size_lazy_cycles,
            "lazy_cycles_per_sec": headline_lazy,
            "lazy_rate_samples": [round(rate, 6) for rate in lazy_samples],
            "eager_cycles": eager_run,
            "eager_cycles_per_sec": headline_eager,
            "eager_rate_samples": [round(rate, 6) for rate in eager_samples],
            "rate_stat": "median" if use_median else "best",
            "node_cycles_per_sec": size * headline_lazy,
            "setup_seconds": round(setup_seconds, 6),
            "eager_warm": "ideal" if ideal_warm else "lazy",
            "workers": workers,
            "engine_executor": resolve_executor(engine_executor, workers),
            "pool_reuse_count": pool_reuse,
            "dataset_cache": cache_status,
        }
        if peak_rss:
            # Cumulative high-water marks: peak_rss["lazy"] is the peak RSS
            # observed by the end of the lazy phase, not the phase's own
            # allocation (ru_maxrss never decreases).
            entry["peak_rss_bytes"] = peak_rss
        if profile_phases:
            entry["phases"] = {
                name: round(value, 6) for name, value in chosen_phases.items()
            }
        results[str(size)] = entry
    return results


# --------------------------------------------------------------- scale smoke


def bench_scale_smoke(
    size: int = 10_000,
    budget_seconds: float = 120.0,
    seed: int = 1,
    num_queries: int = 10,
    workers: int = 1,
    engine_executor: str = "auto",
    dataset_cache: Optional[Path] = None,
) -> Dict[str, float]:
    """One lazy + one eager cycle at large N under a wall-clock budget.

    This is the CI scale gate: it proves the incremental runtime completes
    full cycles at production scale, and fails (``within_budget`` False)
    when the *steady-state* cycle time -- not the one-off setup -- exceeds
    the budget.  ``workers`` runs the sharded engine (the CI job exercises
    a workers dimension); ``dataset_cache`` serves the trace from the
    spec-hash disk cache so repeated jobs skip generation.  Returns the
    timing breakdown either way; the CLI exit code carries the verdict.
    """
    import gc

    from repro.data import QueryWorkloadGenerator, SyntheticConfig, load_or_generate_columnar
    from repro.p3q import P3QConfig, P3QSimulation
    from repro.simulator.shard import resolve_executor

    if size <= 0:
        raise ValueError("size must be positive")
    if budget_seconds <= 0:
        raise ValueError("budget_seconds must be positive")

    start = time.perf_counter()
    # The columnar loader streams the trace straight into flat arrays (and
    # adopts the cache file's arrays directly on a hit) -- the large-N setup
    # path this smoke is meant to gate.  Profile materialization is
    # bit-identical to the object loader, so the run itself is unchanged.
    dataset, cache_status = load_or_generate_columnar(
        SyntheticConfig(num_users=size, seed=seed), dataset_cache
    )
    config = P3QConfig(
        network_size=max(10, min(50, size // 4)),
        storage=3,
        seed=seed,
        workers=workers,
        engine_executor=engine_executor,
        stats_flush_every=1 if size >= XL_SIZE_THRESHOLD else None,
    )
    sim = P3QSimulation(dataset, config)
    sim.bootstrap_random_views()
    setup_seconds = time.perf_counter() - start
    peak_rss: Dict[str, int] = {}
    rss = _peak_rss_bytes()
    if rss is not None:
        peak_rss["setup"] = rss

    gc.collect()
    start = time.perf_counter()
    sim.run_lazy(1)
    lazy_seconds = time.perf_counter() - start
    rss = _peak_rss_bytes()
    if rss is not None:
        peak_rss["lazy"] = rss

    workload = QueryWorkloadGenerator(dataset, seed=seed)
    queriers = dataset.user_ids[: min(num_queries, len(dataset))]
    sim.issue_queries([workload.query_for(user_id=uid) for uid in queriers])
    gc.collect()
    start = time.perf_counter()
    sim.run_eager(cycles=1, stop_when_idle=False)
    eager_seconds = time.perf_counter() - start
    rss = _peak_rss_bytes()
    if rss is not None:
        peak_rss["eager"] = rss

    cycle_seconds = lazy_seconds + eager_seconds
    result = {
        "num_nodes": size,
        "setup_seconds": round(setup_seconds, 3),
        "lazy_cycle_seconds": round(lazy_seconds, 3),
        "eager_cycle_seconds": round(eager_seconds, 3),
        "cycle_seconds": round(cycle_seconds, 3),
        "budget_seconds": budget_seconds,
        "within_budget": cycle_seconds <= budget_seconds,
        "workers": workers,
        "engine_executor": resolve_executor(engine_executor, workers),
        "pool_reuse_count": _pool_reuse_count(sim),
        "dataset_cache": cache_status,
    }
    if peak_rss:
        result["peak_rss_bytes"] = peak_rss
    sim.close()
    return result


# ------------------------------------------------------------------- serving

#: Catalogue workloads swept by the serving benchmark.
DEFAULT_SERVING_WORKLOADS = ("hot-topic", "long-tail", "mixed")
#: Concurrency levels (max simultaneously open sessions) per workload.
DEFAULT_SERVING_CONCURRENCY = (4, 16)
#: Serving network size: small enough that the O(N^2) ideal warm start
#: stays in the seconds range, large enough that personal networks do not
#: trivially cover the population.
DEFAULT_SERVING_NODES = 300
DEFAULT_SERVING_QUERIES = 48


def bench_serving(
    num_nodes: int = DEFAULT_SERVING_NODES,
    num_queries: int = DEFAULT_SERVING_QUERIES,
    workloads: Sequence[str] = DEFAULT_SERVING_WORKLOADS,
    concurrency_levels: Sequence[int] = DEFAULT_SERVING_CONCURRENCY,
    quick: bool = False,
    seed: int = 17,
    max_cycles: int = 120,
    cutoff_cycles: int = 30,
) -> Dict:
    """The query-serving sweep: workload catalogue x concurrency levels.

    Every cell runs a fresh warm-started simulation (the ideal index is
    built once and shared, so the O(N^2) setup is paid once) and drives the
    workload through :func:`repro.serving.run_serving`.  Reported per cell:
    QPS per cycle and per wall-second, nearest-rank p50/p95/p99
    latency-in-cycles over completed queries, coverage-at-cutoff over
    abandoned ones, and the CPU/RSS envelope.  QPS-per-cycle and the
    latency percentiles are deterministic in the seed; only the wall-clock
    rates are machine-dependent.
    """
    from repro.data import SyntheticConfig, generate_dataset
    from repro.p3q import P3QConfig, P3QSimulation
    from repro.serving import ServingConfig, build_workload, run_serving
    from repro.similarity.knn import IdealNetworkIndex

    if quick:
        num_nodes = min(num_nodes, 60)
        num_queries = min(num_queries, 12)
        concurrency_levels = (2, 4)
        max_cycles = 60
        cutoff_cycles = 15

    dataset = generate_dataset(SyntheticConfig(num_users=num_nodes, seed=seed))
    network_size = max(10, min(50, num_nodes // 4))
    ideal = IdealNetworkIndex(dataset, size=network_size)

    cells: Dict[str, Dict[str, float]] = {}
    for workload_name in workloads:
        serving_workload = build_workload(
            workload_name, dataset, num_queries, seed=seed
        )
        for level in concurrency_levels:
            config = P3QConfig(
                network_size=network_size,
                storage=3,
                seed=seed,
            )
            sim = P3QSimulation(dataset.copy(), config)
            sim.warm_start(ideal=ideal)
            sim.bootstrap_random_views()
            result = run_serving(
                sim,
                serving_workload,
                ServingConfig(
                    concurrency=level,
                    arrivals_per_cycle=max(1, level // 2),
                    max_cycles=max_cycles,
                    cutoff_cycles=cutoff_cycles,
                ),
            )
            cells[f"{workload_name}@c{level}"] = result.as_dict()
            sim.close()
    return {
        "num_nodes": num_nodes,
        "num_queries": num_queries,
        "network_size": network_size,
        "seed": seed,
        "workloads": cells,
    }


# -------------------------------------------------------------- service mode

#: End-to-end service demo sizes for the v6 ``service`` section.
DEFAULT_SERVICE_DEMO_SIZES = (50, 200)
QUICK_SERVICE_DEMO_SIZES = (30,)


def _service_bench_messages() -> Dict[str, object]:
    """One realistic instance per wire message type (paper-sized digests)."""
    from repro.data.interning import intern_action
    from repro.data.models import UserProfile
    from repro.data.queries import Query
    from repro.gossip.digest import make_digest
    from repro.p3q.query import PartialResult
    from repro.simulator.transport import (
        VIEW_PERSONAL,
        CommonItemsReply,
        CommonItemsRequest,
        DigestAdvertisement,
        FullProfilePush,
        FullProfileRequest,
        QueryForward,
        QueryResult,
        RemainingReturn,
    )

    profiles = [
        UserProfile(uid, [(uid * 100 + i, i % 25) for i in range(50)])
        for uid in range(8)
    ]
    # Paper-sized Bloom digests (DIGEST_BYTES = 2500 -> 20,000 bits): the
    # digest-advertisement path is the acceptance-criterion headline.
    digests = tuple(make_digest(profile) for profile in profiles)
    query = Query(query_id=9, querier=1, tags=(3, 4), source_item=7)
    partial = PartialResult(
        query_id=9,
        sender=2,
        scores={item: item + 0.5 for item in range(20)},
        contributors=tuple(range(8)),
        cycle=3,
    )
    return {
        "DigestAdvertisement": DigestAdvertisement(digests=digests, view=VIEW_PERSONAL),
        "CommonItemsRequest": CommonItemsRequest(
            subject_id=3, items=frozenset(range(100, 130))
        ),
        "CommonItemsReply": CommonItemsReply(
            subject_id=3,
            actions=frozenset(intern_action(item, item % 25) for item in range(30)),
        ),
        "FullProfileRequest": FullProfileRequest(subject_id=3),
        "FullProfilePush": FullProfilePush(subject_id=3, profile=profiles[0]),
        "QueryForward": QueryForward(query=query, remaining=tuple(range(16)), cycle=3),
        "RemainingReturn": RemainingReturn(query_id=9, remaining=tuple(range(16))),
        "QueryResult": QueryResult(partial=partial),
    }


def _codec_roundtrip_fps(codec_name: str, message, batch: int, repeats: int) -> float:
    """Frames/sec through the real service data path: encode the send
    frame, commit the suppression state (a no-op for JSON), split and
    decode on a receiver-side codec instance -- steady-state caches and
    all, exactly what the runtime does per one-way message."""
    from repro.service.codec import make_codec
    from repro.simulator.transport import Envelope

    def operation() -> int:
        sender = make_codec(codec_name)
        receiver = make_codec(codec_name)
        envelope = Envelope(1, 2, message, None, False, True)
        for _ in range(batch):
            frame = sender.encode_send(envelope)
            sender.commit_sent(2)
            bodies, _ = receiver.split(frame)
            receiver.decode_body(bodies[0])
        return batch

    return _best_rate(operation, repeats)


def bench_service(
    quick: bool = False,
    seed: int = 23,
    demo_sizes: Sequence[int] = DEFAULT_SERVICE_DEMO_SIZES,
    trace_path: Optional[str] = None,
) -> Dict:
    """Service-mode data-plane benchmarks (schema v6 ``service`` section).

    Two subsections:

    * ``codec`` -- encode+decode frames/sec per message type for the JSON
      and binary codecs on the real send/decode path (per-message speedup
      plus the headline ``digest_roundtrip_speedup`` on the
      digest-advertisement path);
    * ``demo`` -- end-to-end demo runs with the binary codec at each N in
      ``demo_sizes``: gossip-round throughput, rpc p95 latency, completed
      queries and the invariant audit result.  When ``trace_path`` is
      given the *last* demo's wire trace is dumped there (the CI smoke leg
      uploads it on failure).
    """
    from repro.service.demo import run_demo_sync

    batch = 30 if quick else 120
    repeats = 2 if quick else 3
    if quick:
        demo_sizes = QUICK_SERVICE_DEMO_SIZES

    messages = _service_bench_messages()
    codec_cells: Dict[str, Dict[str, float]] = {}
    for name, message in messages.items():
        json_fps = _codec_roundtrip_fps("json", message, batch, repeats)
        binary_fps = _codec_roundtrip_fps("binary", message, batch, repeats)
        codec_cells[name] = {
            "json_fps": json_fps,
            "binary_fps": binary_fps,
            "speedup": binary_fps / json_fps if json_fps > 0 else 0.0,
        }

    demo_cells: Dict[str, Dict] = {}
    for index, num_users in enumerate(demo_sizes):
        is_last = index == len(demo_sizes) - 1
        report = run_demo_sync(
            num_users=num_users,
            num_queries=4 if quick else 8,
            seed=seed,
            codec="binary",
            deadline=3.0 if quick else 5.0,
            trace_path=trace_path if is_last else None,
        )
        demo_cells[str(num_users)] = {
            "num_users": num_users,
            "codec": report["codec"],
            "completed": report["completed"],
            "num_queries": report["num_queries"],
            "gossip_rounds": report["gossip_rounds"],
            "rounds_per_sec": report["rounds_per_sec"],
            "rpc_count": report["rpc_count"],
            "rpc_p95_ms": report["rpc_p95_ms"],
            "wall_seconds": report["wall_seconds"],
            "bytes_total": report["bytes_total"],
            "invariant_error": report["invariant_error"],
        }

    return {
        "seed": seed,
        "frame_batch": batch,
        "codec": {
            "messages": codec_cells,
            "digest_roundtrip_speedup": codec_cells["DigestAdvertisement"]["speedup"],
        },
        "demo": demo_cells,
    }


# --------------------------------------------------------------------- report


def run_suite(
    quick: bool = False,
    sizes: Optional[Sequence[int]] = None,
    macro_repeats: int = 2,
    profile_phases: bool = False,
    workers: int = 1,
    engine_executor: str = "auto",
    dataset_cache: Optional[Path] = None,
    columnar: bool = False,
    worker_scaling_size: Optional[int] = None,
    serving: bool = False,
    service: bool = False,
) -> Dict:
    """Run the full benchmark suite and return the report dictionary."""
    started = time.time()
    digest = bench_digest(quick=quick)
    similarity = bench_similarity(quick=quick)
    macro = bench_macro(
        sizes=sizes or DEFAULT_MACRO_SIZES,
        quick=quick,
        repeats=macro_repeats,
        profile_phases=profile_phases,
        workers=workers,
        engine_executor=engine_executor,
        dataset_cache=dataset_cache,
    )
    report = {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(started)),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": __import__("os").cpu_count(),
        "digest": digest,
        "similarity": similarity,
        "macro": macro,
    }
    if columnar or quick:
        report["columnar"] = bench_columnar(quick=quick)
    if serving or quick:
        report["serving"] = bench_serving(quick=quick)
    if service or quick:
        report["service"] = bench_service(quick=quick)
    if worker_scaling_size is not None:
        report["worker_scaling"] = {
            str(worker_scaling_size): bench_worker_scaling(
                size=worker_scaling_size,
                workers=max(2, workers),
                # The section exists to measure the real parallel executor,
                # so "auto" must not quietly degrade it to inline on a
                # small machine -- force the pool and report honestly.
                engine_executor=(
                    engine_executor if engine_executor != "auto" else "pool"
                ),
                dataset_cache=dataset_cache,
            )
        }
    report["wall_seconds"] = round(time.time() - started, 3)
    return report


def validate_report(report: Dict) -> List[str]:
    """Schema-check a report; returns a list of problems (empty when valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {SCHEMA_VERSION}, got {report.get('schema_version')!r}"
        )
    for section, keys in (
        ("digest", ("membership_ops_per_sec", "membership_speedup", "build_per_sec")),
        ("similarity", ("overlap_pairs_per_sec", "overlap_speedup")),
    ):
        payload = report.get(section)
        if not isinstance(payload, dict):
            problems.append(f"missing section {section!r}")
            continue
        for key in keys:
            value = payload.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"{section}.{key} must be a positive number, got {value!r}")
    macro = report.get("macro")
    if not isinstance(macro, dict) or not macro:
        problems.append("missing section 'macro'")
    else:
        for size, entry in macro.items():
            if not isinstance(entry, dict):
                problems.append(f"macro[{size!r}] must be an object")
                continue
            for key in ("lazy_cycles_per_sec", "eager_cycles_per_sec"):
                value = entry.get(key)
                if not isinstance(value, (int, float)) or value <= 0:
                    problems.append(f"macro[{size!r}].{key} must be a positive number")
            # Schema v2: setup must be reported separately from the timed
            # cycle loops, so cycles/sec provably measures cycles only.
            setup = entry.get("setup_seconds")
            if not isinstance(setup, (int, float)) or setup < 0:
                problems.append(
                    f"macro[{size!r}].setup_seconds must be a non-negative number"
                )
            if entry.get("eager_warm") not in ("ideal", "lazy"):
                problems.append(f"macro[{size!r}].eager_warm must be 'ideal' or 'lazy'")
            # Schema v3: the headline rate must declare its statistic and
            # carry the per-repeat samples it was derived from.
            if entry.get("rate_stat") not in ("median", "best"):
                problems.append(f"macro[{size!r}].rate_stat must be 'median' or 'best'")
            samples = entry.get("lazy_rate_samples")
            if not isinstance(samples, (list, tuple)) or not samples:
                problems.append(
                    f"macro[{size!r}].lazy_rate_samples must be a non-empty list"
                )
            # Schema v4: every macro entry names the executor that actually
            # ran and the pool-reuse count (0 for non-pool executors).
            if entry.get("engine_executor") not in ("inline", "fork", "pool"):
                problems.append(
                    f"macro[{size!r}].engine_executor must be "
                    f"'inline', 'fork' or 'pool'"
                )
            reuse = entry.get("pool_reuse_count")
            if not isinstance(reuse, int) or reuse < 0:
                problems.append(
                    f"macro[{size!r}].pool_reuse_count must be a "
                    f"non-negative integer"
                )
            rss = entry.get("peak_rss_bytes")
            if rss is not None:
                if not isinstance(rss, dict) or not all(
                    isinstance(value, int) and value > 0 for value in rss.values()
                ):
                    problems.append(
                        f"macro[{size!r}].peak_rss_bytes must map phases to "
                        f"positive byte counts"
                    )
    columnar = report.get("columnar")
    if columnar is not None:
        if not isinstance(columnar, dict) or not columnar:
            problems.append("section 'columnar' must be a non-empty object")
        else:
            for size, entry in columnar.items():
                for key in ("build_rows_per_sec", "probe_ops_per_sec", "probe_speedup"):
                    value = entry.get(key) if isinstance(entry, dict) else None
                    if not isinstance(value, (int, float)) or value <= 0:
                        problems.append(
                            f"columnar[{size!r}].{key} must be a positive number"
                        )
    serving = report.get("serving")
    if serving is not None:
        if not isinstance(serving, dict):
            problems.append("section 'serving' must be an object")
        else:
            cells = serving.get("workloads")
            if not isinstance(cells, dict) or not cells:
                problems.append("serving.workloads must be a non-empty object")
            else:
                for cell, entry in cells.items():
                    if not isinstance(entry, dict):
                        problems.append(f"serving.workloads[{cell!r}] must be an object")
                        continue
                    for key in ("qps_cycle", "qps_wall"):
                        value = entry.get(key)
                        if not isinstance(value, (int, float)) or value <= 0:
                            problems.append(
                                f"serving.workloads[{cell!r}].{key} must be a "
                                f"positive number (the sweep must complete queries)"
                            )
                    percentiles = []
                    for key in ("latency_p50", "latency_p95", "latency_p99"):
                        value = entry.get(key)
                        if not isinstance(value, (int, float)) or value < 0:
                            problems.append(
                                f"serving.workloads[{cell!r}].{key} must be a "
                                f"non-negative number"
                            )
                        else:
                            percentiles.append(value)
                    if len(percentiles) == 3 and not (
                        percentiles[0] <= percentiles[1] <= percentiles[2]
                    ):
                        problems.append(
                            f"serving.workloads[{cell!r}] latency percentiles "
                            f"must be non-decreasing (p50 <= p95 <= p99)"
                        )
                    completed = entry.get("completed")
                    if not isinstance(completed, int) or completed < 1:
                        problems.append(
                            f"serving.workloads[{cell!r}].completed must be a "
                            f"positive integer"
                        )
                    coverage = entry.get("coverage_at_cutoff")
                    if not isinstance(coverage, (int, float)) or not 0 <= coverage <= 1:
                        problems.append(
                            f"serving.workloads[{cell!r}].coverage_at_cutoff "
                            f"must be in [0, 1]"
                        )
                    rss = entry.get("peak_rss_bytes")
                    if rss is not None and (not isinstance(rss, int) or rss <= 0):
                        problems.append(
                            f"serving.workloads[{cell!r}].peak_rss_bytes must "
                            f"be a positive byte count"
                        )
    service = report.get("service")
    if service is not None:
        if not isinstance(service, dict):
            problems.append("section 'service' must be an object")
        else:
            codec = service.get("codec") or {}
            cells = codec.get("messages")
            if not isinstance(cells, dict) or not cells:
                problems.append("service.codec.messages must be a non-empty object")
            else:
                for name, entry in cells.items():
                    for key in ("json_fps", "binary_fps", "speedup"):
                        value = entry.get(key) if isinstance(entry, dict) else None
                        if not isinstance(value, (int, float)) or value <= 0:
                            problems.append(
                                f"service.codec.messages[{name!r}].{key} must be "
                                f"a positive number"
                            )
            speedup = codec.get("digest_roundtrip_speedup")
            if not isinstance(speedup, (int, float)) or speedup <= 0:
                problems.append(
                    "service.codec.digest_roundtrip_speedup must be a positive number"
                )
            demo = service.get("demo")
            if not isinstance(demo, dict) or not demo:
                problems.append("service.demo must be a non-empty object")
            else:
                for size, entry in demo.items():
                    if not isinstance(entry, dict):
                        problems.append(f"service.demo[{size!r}] must be an object")
                        continue
                    for key in ("rounds_per_sec", "wall_seconds"):
                        value = entry.get(key)
                        if not isinstance(value, (int, float)) or value <= 0:
                            problems.append(
                                f"service.demo[{size!r}].{key} must be a positive number"
                            )
                    p95 = entry.get("rpc_p95_ms")
                    if not isinstance(p95, (int, float)) or p95 < 0:
                        problems.append(
                            f"service.demo[{size!r}].rpc_p95_ms must be a "
                            f"non-negative number"
                        )
                    completed = entry.get("completed")
                    if not isinstance(completed, int) or completed < 1:
                        problems.append(
                            f"service.demo[{size!r}].completed must be a "
                            f"positive integer (the demo must answer queries)"
                        )
                    if entry.get("invariant_error") is not None:
                        problems.append(
                            f"service.demo[{size!r}] recorded an invariant "
                            f"violation: {entry['invariant_error']!r}"
                        )
    scaling = report.get("worker_scaling")
    if scaling is not None:
        if not isinstance(scaling, dict) or not scaling:
            problems.append("section 'worker_scaling' must be a non-empty object")
        else:
            for size, entry in scaling.items():
                if not isinstance(entry, dict):
                    problems.append(f"worker_scaling[{size!r}] must be an object")
                    continue
                for key in (
                    "serial_lazy_cycles_per_sec",
                    "sharded_lazy_cycles_per_sec",
                    "speedup",
                ):
                    value = entry.get(key)
                    if not isinstance(value, (int, float)) or value <= 0:
                        problems.append(
                            f"worker_scaling[{size!r}].{key} must be a "
                            f"positive number"
                        )
                if entry.get("engine_executor") not in ("inline", "fork", "pool"):
                    problems.append(
                        f"worker_scaling[{size!r}].engine_executor must be "
                        f"'inline', 'fork' or 'pool'"
                    )
    return problems


def compare_reports(
    current: Dict,
    baseline: Dict,
    max_regression: float = 0.10,
) -> List[str]:
    """Macro-throughput guard: current vs baseline cycles/sec.

    Returns one problem string per macro metric (``lazy_cycles_per_sec`` /
    ``eager_cycles_per_sec``, at every network size present in *both*
    reports) that regressed by more than ``max_regression``.  Quick (smoke)
    baselines are compared only against quick runs and vice versa -- mixing
    the two would compare different workloads.

    When *both* reports carry a ``serving`` section, its shared
    ``workload@concurrency`` cells are guarded too: a ``qps_wall`` drop or
    a ``latency_p95`` increase beyond ``max_regression`` fails.  A baseline
    predating schema v5 simply has no serving section, so the guard
    self-activates once the baseline carries one (same transition behaviour
    as the v3 ``rate_stat`` parity rule).
    """
    problems: List[str] = []
    if current.get("quick") != baseline.get("quick"):
        return ["cannot compare a quick report against a full one"]
    current_macro = current.get("macro") or {}
    baseline_macro = baseline.get("macro") or {}
    shared = sorted(set(current_macro) & set(baseline_macro), key=int)
    if not shared:
        return ["no common macro sizes between the two reports"]
    for size in shared:
        for key in ("lazy_cycles_per_sec", "eager_cycles_per_sec"):
            old = baseline_macro[size].get(key)
            new = current_macro[size].get(key)
            if not isinstance(old, (int, float)) or not isinstance(new, (int, float)) or old <= 0:
                continue
            # Statistic parity: a pre-v3 baseline reports best-of-N while a
            # v3 current may report the median.  Comparing median(new)
            # against best(old) would bias the guard toward false
            # regressions by the run-to-run spread, so against an old-style
            # baseline the current side is judged by its best sample too.
            # Self-retiring: once the baseline carries `rate_stat`, both
            # sides use their declared headline.
            if "rate_stat" not in baseline_macro[size]:
                samples = current_macro[size].get(key.replace("_cycles_per_sec", "_rate_samples"))
                if isinstance(samples, (list, tuple)) and samples:
                    new = max(new, max(samples))
            if new < old * (1.0 - max_regression):
                message = (
                    f"macro[{size}].{key} regressed {100 * (1 - new / old):.1f}% "
                    f"({old:.2f} -> {new:.2f} cycles/s, budget {max_regression:.0%})"
                )
                # Spread context: on noisy runners the per-repeat samples
                # tell reviewers whether the regression exceeds run-to-run
                # variance or hides inside it.
                sample_key = key.replace("_cycles_per_sec", "_rate_samples")
                for label, entry in (("new", current_macro[size]), ("old", baseline_macro[size])):
                    samples = entry.get(sample_key)
                    if isinstance(samples, (list, tuple)) and samples:
                        stat = entry.get("rate_stat", "best")
                        message += (
                            f"; {label} {stat}-of-{len(samples)} spread "
                            f"{min(samples):.2f}..{max(samples):.2f}"
                        )
                problems.append(message)
    current_serving = (current.get("serving") or {}).get("workloads") or {}
    baseline_serving = (baseline.get("serving") or {}).get("workloads") or {}
    for cell in sorted(set(current_serving) & set(baseline_serving)):
        old_entry, new_entry = baseline_serving[cell], current_serving[cell]
        old_qps, new_qps = old_entry.get("qps_wall"), new_entry.get("qps_wall")
        if (
            isinstance(old_qps, (int, float))
            and isinstance(new_qps, (int, float))
            and old_qps > 0
            and new_qps < old_qps * (1.0 - max_regression)
        ):
            problems.append(
                f"serving[{cell}].qps_wall regressed "
                f"{100 * (1 - new_qps / old_qps):.1f}% "
                f"({old_qps:.2f} -> {new_qps:.2f} q/s, budget {max_regression:.0%})"
            )
        old_p95, new_p95 = old_entry.get("latency_p95"), new_entry.get("latency_p95")
        if (
            isinstance(old_p95, (int, float))
            and isinstance(new_p95, (int, float))
            and old_p95 > 0
            and new_p95 > old_p95 * (1.0 + max_regression)
        ):
            problems.append(
                f"serving[{cell}].latency_p95 regressed "
                f"{100 * (new_p95 / old_p95 - 1):.1f}% "
                f"({old_p95:.0f} -> {new_p95:.0f} cycles, budget {max_regression:.0%})"
            )
    # Service-mode guard: same self-activation rule as the serving one
    # above -- a pre-v6 baseline has no `service` section, so the guard
    # switches on the first time both sides carry one.
    current_service = (current.get("service") or {}).get("demo") or {}
    baseline_service = (baseline.get("service") or {}).get("demo") or {}
    for size in sorted(set(current_service) & set(baseline_service), key=int):
        old_entry, new_entry = baseline_service[size], current_service[size]
        old_rps = old_entry.get("rounds_per_sec")
        new_rps = new_entry.get("rounds_per_sec")
        if (
            isinstance(old_rps, (int, float))
            and isinstance(new_rps, (int, float))
            and old_rps > 0
            and new_rps < old_rps * (1.0 - max_regression)
        ):
            problems.append(
                f"service[{size}].rounds_per_sec regressed "
                f"{100 * (1 - new_rps / old_rps):.1f}% "
                f"({old_rps:.1f} -> {new_rps:.1f} rounds/s, "
                f"budget {max_regression:.0%})"
            )
        old_p95 = old_entry.get("rpc_p95_ms")
        new_p95 = new_entry.get("rpc_p95_ms")
        if (
            isinstance(old_p95, (int, float))
            and isinstance(new_p95, (int, float))
            and old_p95 > 0
            and new_p95 > old_p95 * (1.0 + max_regression)
        ):
            problems.append(
                f"service[{size}].rpc_p95_ms regressed "
                f"{100 * (new_p95 / old_p95 - 1):.1f}% "
                f"({old_p95:.2f} -> {new_p95:.2f} ms, budget {max_regression:.0%})"
            )
    return problems


def write_report(report: Dict, path: Path) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def _print_summary(report: Dict) -> None:
    digest = report["digest"]
    similarity = report["similarity"]
    print(
        f"digest: membership {digest['membership_ops_per_sec']:,.0f} ops/s "
        f"({digest['membership_speedup']:.1f}x vs hashlib), "
        f"build {digest['build_per_sec']:,.1f} filters/s "
        f"({digest['build_speedup']:.1f}x)"
    )
    print(
        f"similarity: overlap {similarity['overlap_pairs_per_sec']:,.0f} pairs/s "
        f"({similarity['overlap_speedup']:.1f}x vs naive)"
    )
    for size, entry in sorted(report["macro"].items(), key=lambda kv: int(kv[0])):
        extras = ""
        if entry.get("workers", 1) != 1:
            extras += f", workers={entry['workers']}/{entry.get('engine_executor', '?')}"
        if entry.get("dataset_cache", "off") != "off":
            extras += f", dataset-cache={entry['dataset_cache']}"
        print(
            f"macro N={size}: lazy {entry['lazy_cycles_per_sec']:.2f} cycles/s, "
            f"eager {entry['eager_cycles_per_sec']:.2f} cycles/s "
            f"({entry.get('rate_stat', 'best')}-of-{len(entry.get('lazy_rate_samples', [1]))}, "
            f"setup {entry.get('setup_seconds', 0):.2f}s, "
            f"warm={entry.get('eager_warm', 'ideal')}{extras})"
        )
        phases = entry.get("phases")
        if phases:
            breakdown = ", ".join(
                f"{name.removesuffix('_seconds')} {value:.3f}s"
                for name, value in phases.items()
            )
            print(f"  phases: {breakdown}")
    for size, entry in sorted(
        (report.get("columnar") or {}).items(), key=lambda kv: int(kv[0])
    ):
        print(
            f"columnar N={size}: build {entry['build_rows_per_sec']:,.0f} rows/s "
            f"({entry['build_speedup']:.1f}x vs object), "
            f"probe {entry['probe_ops_per_sec']:,.0f} ops/s "
            f"({entry['probe_speedup']:.1f}x)"
        )
    serving = report.get("serving")
    if serving:
        print(
            f"serving N={serving['num_nodes']}: "
            f"{len(serving['workloads'])} workload/concurrency cells, "
            f"{serving['num_queries']} queries each"
        )
        for cell, entry in serving["workloads"].items():
            rss = entry.get("peak_rss_bytes")
            rss_text = f", rss {rss / 1e6:.0f}MB" if rss else ""
            print(
                f"  {cell}: {entry['completed']}/{entry['num_queries']} completed, "
                f"{entry['qps_cycle']:.2f} q/cycle, {entry['qps_wall']:.1f} q/s, "
                f"latency p50/p95/p99 {entry['latency_p50']:.0f}/"
                f"{entry['latency_p95']:.0f}/{entry['latency_p99']:.0f} cycles"
                f"{rss_text}"
            )
    service = report.get("service")
    if service:
        codec = service.get("codec") or {}
        speedup = codec.get("digest_roundtrip_speedup")
        if speedup:
            print(
                f"service codec: digest advertisement binary/json "
                f"{speedup:.1f}x frames/s"
            )
        for name, entry in sorted((codec.get("messages") or {}).items()):
            print(
                f"  {name}: json {entry['json_fps']:,.0f} f/s, "
                f"binary {entry['binary_fps']:,.0f} f/s "
                f"({entry['speedup']:.1f}x)"
            )
        for size, entry in sorted(
            (service.get("demo") or {}).items(), key=lambda kv: int(kv[0])
        ):
            print(
                f"service demo N={size}: {entry['completed']}/"
                f"{entry['num_queries']} queries, "
                f"{entry['rounds_per_sec']:.1f} gossip rounds/s, "
                f"rpc p95 {entry['rpc_p95_ms']:.2f}ms, "
                f"wall {entry['wall_seconds']:.2f}s"
            )
    for size, entry in sorted(
        (report.get("worker_scaling") or {}).items(), key=lambda kv: int(kv[0])
    ):
        print(
            f"worker scaling N={size}: serial "
            f"{entry['serial_lazy_cycles_per_sec']:.2f} -> sharded "
            f"{entry['sharded_lazy_cycles_per_sec']:.2f} lazy cycles/s "
            f"({entry['speedup']:.2f}x, workers={entry['workers']}/"
            f"{entry['engine_executor']}, pool reuse {entry['pool_reuse_count']})"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="P3Q performance-tracking benchmark harness",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(DEFAULT_REPORT_NAME),
        help=f"where to write the JSON report (default: ./{DEFAULT_REPORT_NAME})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny smoke run (CI): one small network, few repeats",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help=f"macro network sizes (default: {' '.join(map(str, DEFAULT_MACRO_SIZES))})",
    )
    parser.add_argument(
        "--macro-repeats",
        type=int,
        default=2,
        metavar="N",
        help="best-of-N runs per macro size (default: 2; the perf guard uses more)",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help=f"also run the large-N macro sizes {SCALE_MACRO_SIZES}",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-phase wall-clock timings (dataset/build/bootstrap/"
        "warm/lazy/eager) in every macro entry and print them",
    )
    parser.add_argument(
        "--scale-smoke",
        type=int,
        default=None,
        metavar="N",
        help="run one lazy + one eager cycle at N nodes and exit non-zero "
        "if the cycle time exceeds --budget-seconds (no report written)",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="steady-state cycle budget for --scale-smoke (default: 120)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="run the macro simulations on the sharded engine with N workers "
        "(bit-identical to serial; the report records the resolved executor)",
    )
    parser.add_argument(
        "--executor",
        choices=("auto", "inline", "fork", "pool"),
        default="auto",
        help="sharded-engine executor (default: auto -- persistent pool "
        "when the machine has at least two cores, inline otherwise)",
    )
    parser.add_argument(
        "--require-executor",
        choices=("inline", "fork", "pool"),
        default=None,
        metavar="KIND",
        help="fail (exit 2) unless the requested workers/executor resolve "
        "to KIND on this machine -- CI's multi-core jobs pass this so a "
        "single-core runner cannot silently degrade the parallel path "
        "to the inline pass-through",
    )
    parser.add_argument(
        "--fragment-output",
        type=Path,
        default=None,
        metavar="PATH",
        help="with --scale-smoke: also write the timing breakdown as a "
        "JSON fragment (uploaded as a CI artifact)",
    )
    parser.add_argument(
        "--serving",
        action="store_true",
        help="include the query-serving sweep (workload catalogue x "
        f"concurrency levels {DEFAULT_SERVING_CONCURRENCY}; always on "
        "for --quick)",
    )
    parser.add_argument(
        "--serving-smoke",
        action="store_true",
        help="run a small serving sweep standalone and exit non-zero if it "
        "exceeds --budget-seconds or completes no queries (no report "
        "written)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="include the service-mode section (codec frames/sec per message "
        f"type plus demo round throughput at N in {DEFAULT_SERVICE_DEMO_SIZES}; "
        "always on for --quick)",
    )
    parser.add_argument(
        "--service-smoke",
        action="store_true",
        help="run the quick service-mode bench standalone and exit non-zero "
        "if it exceeds --budget-seconds or completes no demo queries (no "
        "report written)",
    )
    parser.add_argument(
        "--service-trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="with --service-smoke: record the demo's wire trace here "
        "(uploaded as a CI artifact on failure)",
    )
    parser.add_argument(
        "--columnar",
        action="store_true",
        help="include the columnar micro-benchmark section "
        f"(sizes {DEFAULT_COLUMNAR_SIZES}; always on for --quick)",
    )
    parser.add_argument(
        "--worker-scaling",
        type=int,
        default=None,
        metavar="N",
        help="include a serial-vs-sharded lazy-throughput comparison at N "
        "nodes (uses --workers/--executor for the sharded side)",
    )
    parser.add_argument(
        "--dataset-cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="spec-hash dataset disk cache directory; repeated runs load "
        "the identical trace instead of regenerating it",
    )
    parser.add_argument(
        "--validate",
        type=Path,
        default=None,
        metavar="REPORT",
        help="validate an existing report file and exit (no benchmarks run)",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="REPORT",
        help="compare an existing report's macro numbers against --against and exit",
    )
    parser.add_argument(
        "--against",
        type=Path,
        default=Path(DEFAULT_REPORT_NAME),
        metavar="BASELINE",
        help=f"baseline report for --compare (default: ./{DEFAULT_REPORT_NAME})",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="allowed macro cycles/sec regression for --compare (default: 0.10)",
    )
    args = parser.parse_args(argv)

    def check_required_executor(resolved: str) -> bool:
        """False (after a loud stderr message) on executor degradation."""
        if args.require_executor is not None and resolved != args.require_executor:
            import os as _os

            print(
                f"executor requirement FAILED: requested workers={args.workers} "
                f"executor={args.executor!r} resolved to {resolved!r}, "
                f"required {args.require_executor!r} "
                f"(cpu_count={_os.cpu_count()}) -- this runner cannot "
                f"exercise the parallel path it was asked to measure",
                file=sys.stderr,
            )
            return False
        return True

    if args.scale_smoke is not None:
        result = bench_scale_smoke(
            size=args.scale_smoke,
            budget_seconds=args.budget_seconds,
            workers=args.workers,
            engine_executor=args.executor,
            dataset_cache=args.dataset_cache,
        )
        if args.fragment_output is not None:
            fragment = {"schema_version": SCHEMA_VERSION, "scale_smoke": result}
            args.fragment_output.write_text(
                json.dumps(fragment, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        print(
            f"scale smoke N={result['num_nodes']}: "
            f"setup {result['setup_seconds']:.1f}s "
            f"(dataset cache {result['dataset_cache']}), "
            f"lazy cycle {result['lazy_cycle_seconds']:.1f}s, "
            f"eager cycle {result['eager_cycle_seconds']:.1f}s "
            f"(budget {result['budget_seconds']:.0f}s, "
            f"workers {result['workers']}/{result['engine_executor']})"
        )
        if not check_required_executor(result["engine_executor"]):
            return 2
        if not result["within_budget"]:
            print(
                f"scale smoke FAILED: {result['cycle_seconds']:.1f}s of cycle time "
                f"exceeds the {result['budget_seconds']:.0f}s budget",
                file=sys.stderr,
            )
            return 1
        print("scale smoke ok")
        return 0

    if args.serving_smoke:
        start = time.perf_counter()
        serving = bench_serving(quick=True)
        elapsed = time.perf_counter() - start
        total_completed = 0
        for cell, entry in serving["workloads"].items():
            total_completed += entry["completed"]
            print(
                f"serving smoke {cell}: {entry['completed']}/{entry['num_queries']} "
                f"completed, {entry['qps_cycle']:.2f} q/cycle, "
                f"p95 {entry['latency_p95']:.0f} cycles"
            )
        if total_completed == 0:
            print(
                "serving smoke FAILED: no query completed in any cell",
                file=sys.stderr,
            )
            return 1
        if elapsed > args.budget_seconds:
            print(
                f"serving smoke FAILED: {elapsed:.1f}s exceeds the "
                f"{args.budget_seconds:.0f}s budget",
                file=sys.stderr,
            )
            return 1
        print(f"serving smoke ok ({elapsed:.1f}s)")
        return 0

    if args.service_smoke:
        start = time.perf_counter()
        service = bench_service(quick=True, trace_path=args.service_trace)
        elapsed = time.perf_counter() - start
        codec = service["codec"]
        for name, entry in sorted(codec["messages"].items()):
            print(
                f"service smoke codec {name}: json {entry['json_fps']:,.0f} f/s, "
                f"binary {entry['binary_fps']:,.0f} f/s ({entry['speedup']:.1f}x)"
            )
        print(
            f"service smoke digest round-trip speedup: "
            f"{codec['digest_roundtrip_speedup']:.1f}x"
        )
        total_completed = 0
        for size, entry in sorted(service["demo"].items(), key=lambda kv: int(kv[0])):
            total_completed += entry["completed"]
            print(
                f"service smoke demo N={size}: {entry['completed']}/"
                f"{entry['num_queries']} completed, "
                f"{entry['rounds_per_sec']:.1f} rounds/s, "
                f"rpc p95 {entry['rpc_p95_ms']:.2f}ms"
            )
            if entry.get("invariant_error"):
                print(
                    f"service smoke FAILED: demo N={size} violated trace "
                    f"invariants: {entry['invariant_error']}",
                    file=sys.stderr,
                )
                return 1
        if total_completed == 0:
            print(
                "service smoke FAILED: no demo query completed at any size",
                file=sys.stderr,
            )
            return 1
        if elapsed > args.budget_seconds:
            print(
                f"service smoke FAILED: {elapsed:.1f}s exceeds the "
                f"{args.budget_seconds:.0f}s budget",
                file=sys.stderr,
            )
            return 1
        print(f"service smoke ok ({elapsed:.1f}s)")
        return 0

    if args.compare is not None:
        reports = []
        for path in (args.compare, args.against):
            try:
                reports.append(json.loads(path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError) as exc:
                print(f"{path}: unreadable report: {exc}", file=sys.stderr)
                return 1
        problems = compare_reports(reports[0], reports[1], max_regression=args.max_regression)
        if problems:
            for problem in problems:
                print(f"{args.compare} vs {args.against}: {problem}", file=sys.stderr)
            return 1
        print(
            f"{args.compare}: no macro regression beyond "
            f"{args.max_regression:.0%} of {args.against}"
        )
        return 0

    if args.validate is not None:
        try:
            report = json.loads(args.validate.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{args.validate}: unreadable report: {exc}", file=sys.stderr)
            return 1
        problems = validate_report(report)
        if problems:
            for problem in problems:
                print(f"{args.validate}: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid (schema v{report['schema_version']})")
        return 0

    if args.macro_repeats < 1:
        parser.error("--macro-repeats must be positive")
    sizes = args.sizes
    if args.scale:
        # dict.fromkeys dedupes while preserving order: a size listed both
        # in --sizes and in the scale set must not run (minutes) twice.
        sizes = tuple(dict.fromkeys(tuple(sizes or DEFAULT_MACRO_SIZES) + SCALE_MACRO_SIZES))
    if args.require_executor is not None:
        from repro.simulator.shard import resolve_executor

        if not check_required_executor(resolve_executor(args.executor, args.workers)):
            return 2
    report = run_suite(
        quick=args.quick,
        sizes=sizes,
        macro_repeats=args.macro_repeats,
        profile_phases=args.profile,
        workers=args.workers,
        engine_executor=args.executor,
        dataset_cache=args.dataset_cache,
        columnar=args.columnar,
        worker_scaling_size=args.worker_scaling,
        serving=args.serving,
        service=args.service,
    )
    write_report(report, args.output)
    _print_summary(report)
    print(f"report written to {args.output}")
    return 0
