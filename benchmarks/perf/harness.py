"""Micro and macro performance benchmarks writing ``BENCH_p3q.json``.

Three benchmark families:

* **digest** -- Bloom-filter construction and membership throughput of the
  bit-packed :class:`repro.bloom.BloomFilter` versus the seed
  :class:`repro.bloom._legacy.LegacyBloomFilter` (per-probe ``hashlib``),
  at the paper's digest geometry (20 Kbit / 14 hashes, ~250-item profiles);
* **similarity** -- profile-scoring throughput of the interned fast path
  (:func:`repro.similarity.overlap_score` on cached action-id sets) versus
  a naive baseline that rebuilds tuple sets per comparison, the seed's
  behaviour;
* **macro** -- end-to-end simulator cycles/sec (lazy gossip and eager query
  processing) at several network sizes.

The report format is versioned JSON; :func:`validate_report` is the schema
check CI runs against the smoke report.  All numbers are best-of-``repeats``
wall-clock rates, so background noise biases results low, never high.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

SCHEMA_VERSION = 2
DEFAULT_REPORT_NAME = "BENCH_p3q.json"

#: Macro benchmark network sizes (the issue's N=100/500/1000 trajectory).
DEFAULT_MACRO_SIZES = (100, 500, 1000)
QUICK_MACRO_SIZES = (30,)
#: Large-N sizes exercised by ``--scale`` and the CI scale-smoke job.
SCALE_MACRO_SIZES = (5_000, 10_000)
#: From this size on, the eager phase starts from lazy-built personal
#: networks instead of the offline ideal index: ``IdealNetworkIndex`` is
#: O(N^2) pairwise scoring, which is *setup*, and at N >= 2000 it would
#: dominate the benchmark's wall clock without measuring the simulator.
LAZY_WARM_THRESHOLD = 2_000


def _best_rate(operation: Callable[[], int], repeats: int) -> float:
    """Best observed rate (operations/second) over ``repeats`` timed runs.

    ``operation`` performs a batch of work and returns how many operations
    the batch contained.
    """
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        count = operation()
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, count / elapsed)
    return best


# --------------------------------------------------------------------- digest


def bench_digest(
    num_items: int = 250,
    num_probes: int = 2_000,
    repeats: int = 5,
    quick: bool = False,
) -> Dict[str, float]:
    """Bloom digest construction and membership throughput, new vs. legacy."""
    from repro.bloom import BloomFilter, clear_hash_cache
    from repro.bloom._legacy import LegacyBloomFilter

    if quick:
        num_probes = min(num_probes, 500)
        repeats = 2

    items = list(range(num_items))
    # Half members, half non-members: exercises both the early-exit negative
    # probe and the full k-probe positive path.
    half = num_probes // 2
    probes = [items[i % num_items] for i in range(half)]
    probes += list(range(num_items, num_items + half))

    def build_new() -> int:
        for _ in range(10):
            BloomFilter.from_items(items)
        return 10

    def build_legacy() -> int:
        for _ in range(10):
            LegacyBloomFilter.from_items(items)
        return 10

    new_filter = BloomFilter.from_items(items)
    legacy_filter = LegacyBloomFilter.from_items(items)

    def probe(bloom) -> Callable[[], int]:
        def run() -> int:
            hits = 0
            for key in probes:
                if key in bloom:
                    hits += 1
            # Members always hit (no false negatives); keeps the loop live.
            assert hits >= half
            return len(probes)

        return run

    clear_hash_cache()
    build_per_sec = _best_rate(build_new, repeats)
    membership_per_sec = _best_rate(probe(new_filter), repeats)
    legacy_build_per_sec = _best_rate(build_legacy, repeats)
    legacy_membership_per_sec = _best_rate(probe(legacy_filter), repeats)

    return {
        "num_items": num_items,
        "num_probes": len(probes),
        "build_per_sec": build_per_sec,
        "membership_ops_per_sec": membership_per_sec,
        "legacy_build_per_sec": legacy_build_per_sec,
        "legacy_membership_ops_per_sec": legacy_membership_per_sec,
        "build_speedup": build_per_sec / legacy_build_per_sec,
        "membership_speedup": membership_per_sec / legacy_membership_per_sec,
    }


# ----------------------------------------------------------------- similarity


def _naive_overlap(a, b) -> float:
    """The seed implementation of the overlap score.

    Copies both action sets (the seed's ``actions`` property returned a fresh
    ``frozenset`` per access) and intersects them with a Python-level
    comprehension, exactly like the pre-interning ``common_actions``.
    """
    actions_a = frozenset(iter(a))
    actions_b = frozenset(iter(b))
    if len(actions_a) > len(actions_b):
        actions_a, actions_b = actions_b, actions_a
    return float(len({action for action in actions_a if action in actions_b}))


def bench_similarity(
    num_users: int = 120,
    repeats: int = 5,
    quick: bool = False,
    seed: int = 7,
) -> Dict[str, float]:
    """All-pairs scoring throughput, interned fast path vs. naive baseline."""
    from repro.data import SyntheticConfig, generate_dataset
    from repro.similarity import cosine_score, jaccard_score, overlap_score

    if quick:
        num_users = min(num_users, 40)
        repeats = 2

    dataset = generate_dataset(SyntheticConfig(num_users=num_users, seed=seed))
    profiles = list(dataset.profiles())
    pairs = [
        (profiles[i], profiles[j])
        for i in range(len(profiles))
        for j in range(i + 1, len(profiles))
    ]

    def run_metric(metric) -> Callable[[], int]:
        def run() -> int:
            total = 0.0
            for a, b in pairs:
                total += metric(a, b)
            assert total >= 0.0
            return len(pairs)

        return run

    overlap_per_sec = _best_rate(run_metric(overlap_score), repeats)
    naive_per_sec = _best_rate(run_metric(_naive_overlap), repeats)

    return {
        "num_users": num_users,
        "num_pairs": len(pairs),
        "overlap_pairs_per_sec": overlap_per_sec,
        "naive_overlap_pairs_per_sec": naive_per_sec,
        "overlap_speedup": overlap_per_sec / naive_per_sec,
        "jaccard_pairs_per_sec": _best_rate(run_metric(jaccard_score), repeats),
        "cosine_pairs_per_sec": _best_rate(run_metric(cosine_score), repeats),
    }


# ---------------------------------------------------------------------- macro


def bench_macro(
    sizes: Sequence[int] = DEFAULT_MACRO_SIZES,
    lazy_cycles: int = 3,
    num_queries: int = 10,
    quick: bool = False,
    seed: int = 1,
    repeats: int = 2,
    profile_phases: bool = False,
) -> Dict[str, Dict[str, float]]:
    """End-to-end simulator throughput: lazy and eager cycles/sec per size.

    Each size runs ``repeats`` fresh simulations and keeps the best rates
    (noise biases low, never high); garbage is collected before every timed
    region so earlier benchmarks' heap pressure cannot leak into this one.

    Setup (dataset generation, node construction, view bootstrap, eager
    warm-up) is timed *separately* from the steady-state cycle loops and
    reported as ``setup_seconds`` -- cycles/sec measures cycles only, at
    every size.  Sizes at or above :data:`LAZY_WARM_THRESHOLD` warm the
    eager phase from the lazy-built personal networks (``eager_warm:
    "lazy"``) instead of the O(N^2) offline ideal index.  With
    ``profile_phases`` each size also carries a ``phases`` dict of
    per-phase wall-clock seconds (the ``--profile`` flag).
    """
    import gc

    from repro.data import QueryWorkloadGenerator, SyntheticConfig, generate_dataset
    from repro.p3q import P3QConfig, P3QSimulation

    if quick:
        sizes = QUICK_MACRO_SIZES
        lazy_cycles = 2
        num_queries = 3
        repeats = 1

    results: Dict[str, Dict[str, float]] = {}
    for size in sizes:
        start = time.perf_counter()
        dataset = generate_dataset(SyntheticConfig(num_users=size, seed=seed))
        dataset_seconds = time.perf_counter() - start

        config = P3QConfig(
            network_size=max(10, min(50, size // 4)),
            storage=3,
            seed=seed,
        )
        ideal_warm = size < LAZY_WARM_THRESHOLD
        best_lazy = 0.0
        best_eager = 0.0
        eager_run = 0
        #: Phases / setup of the repeat that achieved the best lazy rate, so
        #: the reported breakdown describes the same run as the headline
        #: cycles/sec (all repeats share the dataset-generation phase).
        best_phases: Dict[str, float] = {"dataset_seconds": dataset_seconds}
        setup_seconds = dataset_seconds
        for _ in range(max(1, repeats)):
            phases: Dict[str, float] = {"dataset_seconds": dataset_seconds}

            start = time.perf_counter()
            sim = P3QSimulation(dataset.copy(), config)
            phases["build_seconds"] = time.perf_counter() - start

            start = time.perf_counter()
            sim.bootstrap_random_views()
            phases["bootstrap_seconds"] = time.perf_counter() - start

            gc.collect()
            start = time.perf_counter()
            sim.run_lazy(lazy_cycles)
            lazy_elapsed = time.perf_counter() - start
            phases["lazy_seconds"] = lazy_elapsed

            # The eager phase needs populated personal networks with unstored
            # neighbours (that is where the remaining lists come from).  Small
            # sizes warm-start from the offline ideal networks like the
            # paper's query experiments; large sizes reuse the networks the
            # lazy phase just built (the ideal index is quadratic setup).
            start = time.perf_counter()
            if ideal_warm:
                sim.warm_start()
            workload = QueryWorkloadGenerator(dataset, seed=seed)
            queriers = dataset.user_ids[: min(num_queries, len(dataset))]
            queries = [workload.query_for(user_id=uid) for uid in queriers]
            sim.issue_queries(queries)
            phases["warm_seconds"] = time.perf_counter() - start

            gc.collect()
            start = time.perf_counter()
            run = sim.run_eager(cycles=50)
            eager_elapsed = time.perf_counter() - start
            phases["eager_seconds"] = eager_elapsed
            if eager_elapsed > 0:
                best_eager = max(best_eager, run / eager_elapsed)
                eager_run = run

            if lazy_elapsed > 0 and lazy_cycles / lazy_elapsed >= best_lazy:
                best_lazy = lazy_cycles / lazy_elapsed
                best_phases = phases
                setup_seconds = (
                    dataset_seconds
                    + phases["build_seconds"]
                    + phases["bootstrap_seconds"]
                    + phases["warm_seconds"]
                )

        entry: Dict[str, float] = {
            "num_nodes": size,
            "lazy_cycles": lazy_cycles,
            "lazy_cycles_per_sec": best_lazy,
            "eager_cycles": eager_run,
            "eager_cycles_per_sec": best_eager,
            "node_cycles_per_sec": size * best_lazy,
            "setup_seconds": round(setup_seconds, 6),
            "eager_warm": "ideal" if ideal_warm else "lazy",
        }
        if profile_phases:
            entry["phases"] = {
                name: round(value, 6) for name, value in best_phases.items()
            }
        results[str(size)] = entry
    return results


# --------------------------------------------------------------- scale smoke


def bench_scale_smoke(
    size: int = 10_000,
    budget_seconds: float = 120.0,
    seed: int = 1,
    num_queries: int = 10,
) -> Dict[str, float]:
    """One lazy + one eager cycle at large N under a wall-clock budget.

    This is the CI scale gate: it proves the incremental runtime completes
    full cycles at production scale, and fails (``within_budget`` False)
    when the *steady-state* cycle time -- not the one-off setup -- exceeds
    the budget.  Returns the timing breakdown either way; the CLI exit code
    carries the verdict.
    """
    import gc

    from repro.data import QueryWorkloadGenerator, SyntheticConfig, generate_dataset
    from repro.p3q import P3QConfig, P3QSimulation

    if size <= 0:
        raise ValueError("size must be positive")
    if budget_seconds <= 0:
        raise ValueError("budget_seconds must be positive")

    start = time.perf_counter()
    dataset = generate_dataset(SyntheticConfig(num_users=size, seed=seed))
    config = P3QConfig(network_size=max(10, min(50, size // 4)), storage=3, seed=seed)
    sim = P3QSimulation(dataset, config)
    sim.bootstrap_random_views()
    setup_seconds = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    sim.run_lazy(1)
    lazy_seconds = time.perf_counter() - start

    workload = QueryWorkloadGenerator(dataset, seed=seed)
    queriers = dataset.user_ids[: min(num_queries, len(dataset))]
    sim.issue_queries([workload.query_for(user_id=uid) for uid in queriers])
    gc.collect()
    start = time.perf_counter()
    sim.run_eager(cycles=1, stop_when_idle=False)
    eager_seconds = time.perf_counter() - start

    cycle_seconds = lazy_seconds + eager_seconds
    return {
        "num_nodes": size,
        "setup_seconds": round(setup_seconds, 3),
        "lazy_cycle_seconds": round(lazy_seconds, 3),
        "eager_cycle_seconds": round(eager_seconds, 3),
        "cycle_seconds": round(cycle_seconds, 3),
        "budget_seconds": budget_seconds,
        "within_budget": cycle_seconds <= budget_seconds,
    }


# --------------------------------------------------------------------- report


def run_suite(
    quick: bool = False,
    sizes: Optional[Sequence[int]] = None,
    macro_repeats: int = 2,
    profile_phases: bool = False,
) -> Dict:
    """Run the full benchmark suite and return the report dictionary."""
    started = time.time()
    digest = bench_digest(quick=quick)
    similarity = bench_similarity(quick=quick)
    macro = bench_macro(
        sizes=sizes or DEFAULT_MACRO_SIZES,
        quick=quick,
        repeats=macro_repeats,
        profile_phases=profile_phases,
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(started)),
        "wall_seconds": round(time.time() - started, 3),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "digest": digest,
        "similarity": similarity,
        "macro": macro,
    }


def validate_report(report: Dict) -> List[str]:
    """Schema-check a report; returns a list of problems (empty when valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {SCHEMA_VERSION}, got {report.get('schema_version')!r}"
        )
    for section, keys in (
        ("digest", ("membership_ops_per_sec", "membership_speedup", "build_per_sec")),
        ("similarity", ("overlap_pairs_per_sec", "overlap_speedup")),
    ):
        payload = report.get(section)
        if not isinstance(payload, dict):
            problems.append(f"missing section {section!r}")
            continue
        for key in keys:
            value = payload.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"{section}.{key} must be a positive number, got {value!r}")
    macro = report.get("macro")
    if not isinstance(macro, dict) or not macro:
        problems.append("missing section 'macro'")
    else:
        for size, entry in macro.items():
            if not isinstance(entry, dict):
                problems.append(f"macro[{size!r}] must be an object")
                continue
            for key in ("lazy_cycles_per_sec", "eager_cycles_per_sec"):
                value = entry.get(key)
                if not isinstance(value, (int, float)) or value <= 0:
                    problems.append(f"macro[{size!r}].{key} must be a positive number")
            # Schema v2: setup must be reported separately from the timed
            # cycle loops, so cycles/sec provably measures cycles only.
            setup = entry.get("setup_seconds")
            if not isinstance(setup, (int, float)) or setup < 0:
                problems.append(
                    f"macro[{size!r}].setup_seconds must be a non-negative number"
                )
            if entry.get("eager_warm") not in ("ideal", "lazy"):
                problems.append(f"macro[{size!r}].eager_warm must be 'ideal' or 'lazy'")
    return problems


def compare_reports(
    current: Dict,
    baseline: Dict,
    max_regression: float = 0.10,
) -> List[str]:
    """Macro-throughput guard: current vs baseline cycles/sec.

    Returns one problem string per macro metric (``lazy_cycles_per_sec`` /
    ``eager_cycles_per_sec``, at every network size present in *both*
    reports) that regressed by more than ``max_regression``.  Quick (smoke)
    baselines are compared only against quick runs and vice versa -- mixing
    the two would compare different workloads.
    """
    problems: List[str] = []
    if current.get("quick") != baseline.get("quick"):
        return ["cannot compare a quick report against a full one"]
    current_macro = current.get("macro") or {}
    baseline_macro = baseline.get("macro") or {}
    shared = sorted(set(current_macro) & set(baseline_macro), key=int)
    if not shared:
        return ["no common macro sizes between the two reports"]
    for size in shared:
        for key in ("lazy_cycles_per_sec", "eager_cycles_per_sec"):
            old = baseline_macro[size].get(key)
            new = current_macro[size].get(key)
            if not isinstance(old, (int, float)) or not isinstance(new, (int, float)) or old <= 0:
                continue
            if new < old * (1.0 - max_regression):
                problems.append(
                    f"macro[{size}].{key} regressed {100 * (1 - new / old):.1f}% "
                    f"({old:.2f} -> {new:.2f} cycles/s, budget {max_regression:.0%})"
                )
    return problems


def write_report(report: Dict, path: Path) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def _print_summary(report: Dict) -> None:
    digest = report["digest"]
    similarity = report["similarity"]
    print(
        f"digest: membership {digest['membership_ops_per_sec']:,.0f} ops/s "
        f"({digest['membership_speedup']:.1f}x vs hashlib), "
        f"build {digest['build_per_sec']:,.1f} filters/s "
        f"({digest['build_speedup']:.1f}x)"
    )
    print(
        f"similarity: overlap {similarity['overlap_pairs_per_sec']:,.0f} pairs/s "
        f"({similarity['overlap_speedup']:.1f}x vs naive)"
    )
    for size, entry in sorted(report["macro"].items(), key=lambda kv: int(kv[0])):
        print(
            f"macro N={size}: lazy {entry['lazy_cycles_per_sec']:.2f} cycles/s, "
            f"eager {entry['eager_cycles_per_sec']:.2f} cycles/s "
            f"(setup {entry.get('setup_seconds', 0):.2f}s, "
            f"warm={entry.get('eager_warm', 'ideal')})"
        )
        phases = entry.get("phases")
        if phases:
            breakdown = ", ".join(
                f"{name.removesuffix('_seconds')} {value:.3f}s"
                for name, value in phases.items()
            )
            print(f"  phases: {breakdown}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="P3Q performance-tracking benchmark harness",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(DEFAULT_REPORT_NAME),
        help=f"where to write the JSON report (default: ./{DEFAULT_REPORT_NAME})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny smoke run (CI): one small network, few repeats",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help=f"macro network sizes (default: {' '.join(map(str, DEFAULT_MACRO_SIZES))})",
    )
    parser.add_argument(
        "--macro-repeats",
        type=int,
        default=2,
        metavar="N",
        help="best-of-N runs per macro size (default: 2; the perf guard uses more)",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help=f"also run the large-N macro sizes {SCALE_MACRO_SIZES}",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-phase wall-clock timings (dataset/build/bootstrap/"
        "warm/lazy/eager) in every macro entry and print them",
    )
    parser.add_argument(
        "--scale-smoke",
        type=int,
        default=None,
        metavar="N",
        help="run one lazy + one eager cycle at N nodes and exit non-zero "
        "if the cycle time exceeds --budget-seconds (no report written)",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="steady-state cycle budget for --scale-smoke (default: 120)",
    )
    parser.add_argument(
        "--validate",
        type=Path,
        default=None,
        metavar="REPORT",
        help="validate an existing report file and exit (no benchmarks run)",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="REPORT",
        help="compare an existing report's macro numbers against --against and exit",
    )
    parser.add_argument(
        "--against",
        type=Path,
        default=Path(DEFAULT_REPORT_NAME),
        metavar="BASELINE",
        help=f"baseline report for --compare (default: ./{DEFAULT_REPORT_NAME})",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="allowed macro cycles/sec regression for --compare (default: 0.10)",
    )
    args = parser.parse_args(argv)

    if args.scale_smoke is not None:
        result = bench_scale_smoke(
            size=args.scale_smoke, budget_seconds=args.budget_seconds
        )
        print(
            f"scale smoke N={result['num_nodes']}: "
            f"setup {result['setup_seconds']:.1f}s, "
            f"lazy cycle {result['lazy_cycle_seconds']:.1f}s, "
            f"eager cycle {result['eager_cycle_seconds']:.1f}s "
            f"(budget {result['budget_seconds']:.0f}s)"
        )
        if not result["within_budget"]:
            print(
                f"scale smoke FAILED: {result['cycle_seconds']:.1f}s of cycle time "
                f"exceeds the {result['budget_seconds']:.0f}s budget",
                file=sys.stderr,
            )
            return 1
        print("scale smoke ok")
        return 0

    if args.compare is not None:
        reports = []
        for path in (args.compare, args.against):
            try:
                reports.append(json.loads(path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError) as exc:
                print(f"{path}: unreadable report: {exc}", file=sys.stderr)
                return 1
        problems = compare_reports(reports[0], reports[1], max_regression=args.max_regression)
        if problems:
            for problem in problems:
                print(f"{args.compare} vs {args.against}: {problem}", file=sys.stderr)
            return 1
        print(
            f"{args.compare}: no macro regression beyond "
            f"{args.max_regression:.0%} of {args.against}"
        )
        return 0

    if args.validate is not None:
        try:
            report = json.loads(args.validate.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{args.validate}: unreadable report: {exc}", file=sys.stderr)
            return 1
        problems = validate_report(report)
        if problems:
            for problem in problems:
                print(f"{args.validate}: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid (schema v{report['schema_version']})")
        return 0

    if args.macro_repeats < 1:
        parser.error("--macro-repeats must be positive")
    sizes = args.sizes
    if args.scale:
        # dict.fromkeys dedupes while preserving order: a size listed both
        # in --sizes and in the scale set must not run (minutes) twice.
        sizes = tuple(dict.fromkeys(tuple(sizes or DEFAULT_MACRO_SIZES) + SCALE_MACRO_SIZES))
    report = run_suite(
        quick=args.quick,
        sizes=sizes,
        macro_repeats=args.macro_repeats,
        profile_phases=args.profile,
    )
    write_report(report, args.output)
    _print_summary(report)
    print(f"report written to {args.output}")
    return 0
