"""Ablations of P3Q design choices (DESIGN.md section 5)."""

from __future__ import annotations

from repro.experiments import (
    run_exchange_ablation,
    run_random_view_ablation,
    run_selection_ablation,
)

from conftest import run_once, save_report


def test_ablation_three_step_exchange(benchmark, scale):
    result = run_once(benchmark, run_exchange_ablation, scale, cycles=8)
    save_report(result.render(), name="test_ablation_exchange")
    # The digest-first exchange must reduce the profile payload shipped
    # during personal-network maintenance.
    assert result.payload_savings_factor > 1.0


def test_ablation_random_view(benchmark, scale):
    result = run_once(benchmark, run_random_view_ablation, scale, cycles=20, sample_every=5)
    save_report(result.render(), name="test_ablation_random_view")
    # Without the peer-sampling layer, discovery relies on friends-of-friends
    # only and converges markedly slower.
    assert result.with_random_view[-1] > result.without_random_view[-1]
    assert result.final_gap() > 0.1


def test_ablation_partner_selection(benchmark, scale):
    result = run_once(benchmark, run_selection_ablation, scale, cycles=20, sample_every=5)
    save_report(result.render(), name="test_ablation_selection")
    # Oldest-timestamp selection guarantees fair coverage of the personal
    # network; it must not converge materially slower than random selection.
    assert result.oldest_timestamp[-1] >= result.uniform_random[-1] - 0.1
