"""Section 2.4: R(α) closed form, optimum at α=0.5, involvement bounds."""

from __future__ import annotations

from repro.experiments import run_alpha_analysis

from conftest import run_once, save_report


def test_analysis_alpha(benchmark):
    result = run_once(benchmark, run_alpha_analysis, length=990, found_per_hop=10)
    save_report(result.render())
    # Theorem 2.2: α = 0.5 minimizes R(α); the extremes degenerate to L/X.
    assert result.best_alpha() == 0.5
    assert result.closed_form(0.0) == result.closed_form(1.0) == 99.0
    # O(log2 L) behaviour at the optimum (paper: ~10 cycles suffice).
    assert result.closed_form(0.5) < 11
    # The mechanistic drain agrees with the closed form within one cycle.
    for alpha in (0.1, 0.3, 0.5, 0.7, 0.9):
        assert abs(result.simulated(alpha) - result.closed_form(alpha)) <= 1.5
