"""Figure 10: discovery of new ideal neighbours after profile changes."""

from __future__ import annotations

from repro.experiments import run_network_update

from conftest import run_once, save_report


def test_fig10_network_update(benchmark, scale, workload):
    result = run_once(
        benchmark,
        run_network_update,
        scale,
        lambdas=(1.0, 4.0),
        cycles=30,
        sample_every=5,
        workload=workload,
    )
    save_report(result.render())
    # Paper shape: the (strict) completion ratio grows with lazy cycles in
    # both heterogeneous scenarios and a substantial share of affected users
    # completes their new network within the run.
    for lam in (1.0, 4.0):
        assert result.affected_users[lam] > 0
        series = result.series[lam]
        assert series[-1] >= series[0]
    assert max(result.final_fraction(1.0), result.final_fraction(4.0)) > 0.3
