"""Figure 11: impact of massive departures on top-k quality."""

from __future__ import annotations

from repro.experiments import PAPER_DEPARTURES, run_churn

from conftest import run_once, save_report


def test_fig11_churn(benchmark, scale, workload):
    result = run_once(
        benchmark,
        run_churn,
        scale,
        lambdas=(1.0, 4.0),
        departures=PAPER_DEPARTURES,
        cycles=10,
        workload=workload,
    )
    save_report(result.render())
    # Paper shape (11a/11b): without churn recall reaches 1; the more users
    # leave, the lower the final recall; λ=4 (more replicas) resists better
    # than λ=1 for heavy churn.
    for lam in (1.0, 4.0):
        assert result.final_recall(lam, 0.0) > 0.99
        assert result.final_recall(lam, 0.9) <= result.final_recall(lam, 0.0)
    assert result.final_recall(4.0, 0.9) >= result.final_recall(1.0, 0.9) - 0.05
    # Even at 90% departures most of the answer survives through replicas
    # (paper: ~8 of 10 relevant items at λ=1).
    assert result.final_recall(1.0, 0.9) > 0.4
    # Paper shape (11c): the fraction of queries unable to reach recall 1
    # grows with the departure fraction and is smaller at λ=4.
    assert (
        result.incomplete_queries[1.0][0.9]
        >= result.incomplete_queries[1.0][0.1 if 0.1 in result.incomplete_queries[1.0] else 0.0]
    )
    assert result.incomplete_queries[4.0][0.5] <= result.incomplete_queries[1.0][0.5] + 0.05
