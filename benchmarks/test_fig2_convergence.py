"""Figure 2: personal-network convergence speed in lazy mode."""

from __future__ import annotations

from repro.experiments import run_convergence

from conftest import run_once, save_report


def test_fig2_convergence(benchmark, scale):
    storages = list(scale.storage_levels[:4])
    result = run_once(
        benchmark, run_convergence, scale, storages=storages, cycles=30, sample_every=5
    )
    save_report(result.render())
    # Paper shape: every budget converges upward, and larger budgets converge
    # at least as fast as the smallest one.
    smallest, largest = storages[0], storages[-1]
    assert result.series[smallest][-1] > result.series[smallest][0]
    assert result.final_ratio(largest) >= result.final_ratio(smallest) - 0.05
    # Paper: even c=10 identifies >68% of the network given enough cycles;
    # at our scale 30 cycles should already put the largest budget past 80%.
    assert result.final_ratio(largest) > 0.8
