"""Figure 3: average recall vs eager cycles for different α (small storage)."""

from __future__ import annotations

from repro.experiments import PAPER_ALPHAS, run_alpha_recall

from conftest import run_once, save_report


def test_fig3_alpha_recall(benchmark, scale, workload):
    result = run_once(
        benchmark,
        run_alpha_recall,
        scale,
        alphas=PAPER_ALPHAS,
        storage=scale.storage_levels[0],
        cycles=20,
        workload=workload,
    )
    save_report(result.render())
    # Paper shape: alpha = 0.5 reaches full recall fastest; the extremes
    # (0 and 1) are the slowest.
    half = result.cycles_to_reach(0.5, 0.999)
    assert half is not None
    for alpha in (0.0, 1.0):
        other = result.cycles_to_reach(alpha, 0.999)
        if other is not None:
            assert half <= other
    # Local processing already gives a useful answer at cycle 0
    # (paper: >4 relevant items out of 10 with only 10 stored profiles).
    assert result.series[0.5][0] > 0.3
