"""Figure 4: average recall vs eager cycles for different storage budgets."""

from __future__ import annotations

from repro.experiments import run_storage_recall

from conftest import run_once, save_report


def test_fig4_storage_recall(benchmark, scale, workload):
    storages = list(scale.storage_levels[:6])
    result = run_once(
        benchmark,
        run_storage_recall,
        scale,
        storages=storages,
        alpha=0.5,
        cycles=10,
        workload=workload,
    )
    save_report(result.render())
    # Paper shape: every budget reaches recall 1 within 10 cycles, larger
    # budgets start higher, and the first cycle brings a big improvement.
    for storage in storages:
        assert result.final_recall(storage) > 0.99
    assert result.recall_at(storages[-1], 0) >= result.recall_at(storages[0], 0)
    small = storages[0]
    gain_first = result.recall_at(small, 1) - result.recall_at(small, 0)
    assert gain_first >= -1e-9
