"""Figure 5: per-user storage requirement for each storage budget."""

from __future__ import annotations

from repro.experiments import run_space_requirements

from conftest import run_once, save_report


def test_fig5_space_requirement(benchmark, scale, workload):
    storages = list(scale.storage_levels)
    result = run_once(
        benchmark, run_space_requirements, scale, storages=storages, workload=workload
    )
    save_report(result.render())
    # Paper shape: storage grows with the budget, and a small budget needs a
    # small fraction of the store-everything footprint (paper: c=10 -> 6.8%).
    fractions = [result.fraction_of_full(storage) for storage in storages]
    assert all(b >= a - 1e-9 for a, b in zip(fractions, fractions[1:]))
    assert fractions[0] < 0.5
    assert fractions[-1] <= 1.0 + 1e-9
