"""Figure 6 / Section 3.5: bandwidth needed to answer queries."""

from __future__ import annotations

from repro.experiments import run_query_bandwidth

from conftest import run_once, save_report


def test_fig6_query_bandwidth(benchmark, scale, workload):
    result = run_once(
        benchmark, run_query_bandwidth, scale, lambdas=[1.0, 4.0], cycles=12, workload=workload
    )
    save_report(result.render())
    # Paper shape: partial result lists dominate the per-query traffic, and
    # the storage-poor scenario (λ=1) needs more bytes and more messages per
    # query than λ=4 (573 KB / 228 msgs vs 360 KB / 70 msgs at paper scale).
    assert result.average_bytes[1.0] >= result.average_bytes[4.0]
    assert result.average_messages[1.0] >= result.average_messages[4.0]
    rows = result.rows_by_lambda[1.0]
    dominated = sum(
        1
        for row in rows
        if row.partial_results_bytes
        >= max(row.forwarded_remaining_bytes, row.returned_remaining_bytes)
    )
    assert dominated >= len(rows) // 2
