"""Figure 7: average update rate (AUR) under lazy gossip after profile changes."""

from __future__ import annotations

from repro.experiments import run_aur_lazy

from conftest import run_once, save_report


def test_fig7_aur_lazy(benchmark, scale, workload):
    storages = list(scale.storage_levels[:4])
    result = run_once(
        benchmark,
        run_aur_lazy,
        scale,
        storages=storages,
        lambdas=(1.0, 4.0),
        cycles=20,
        sample_every=5,
        workload=workload,
    )
    save_report(result.render())
    # Paper shape: freshness improves with lazy cycles for every budget, and
    # the smallest budget ends at least as fresh as the largest one.
    for storage in storages:
        series = result.uniform_series[storage]
        assert series[-1] >= series[0]
    assert result.final_aur(storages[0]) >= result.final_aur(storages[-1]) - 0.05
    assert result.final_aur(storages[0]) > 0.5
    # Heterogeneous scenarios: λ=1 (storage-poor) refreshes at least as fast
    # as λ=4 at the end of the run.
    assert result.poisson_series[1.0][-1] >= result.poisson_series[4.0][-1] - 0.05
