"""Figure 8: number of users reached by a query (λ=1 vs λ=4)."""

from __future__ import annotations

from repro.experiments import run_users_reached

from conftest import run_once, save_report


def test_fig8_users_reached(benchmark, scale, workload):
    result = run_once(
        benchmark, run_users_reached, scale, lambdas=(1.0, 4.0), cycles=12, workload=workload
    )
    save_report(result.render())
    # Paper shape: queries reach far more users when storage is scarce
    # (256 at λ=1 vs 75 at λ=4 on the paper's trace).
    assert result.average(1.0) >= result.average(4.0)
    assert result.average(1.0) > 1.0
    assert result.maximum(1.0) >= result.maximum(4.0)
