"""Figure 9: freshness acceleration from consecutive eager queries."""

from __future__ import annotations

from repro.experiments import run_aur_eager

from conftest import run_once, save_report


def test_fig9_aur_eager(benchmark, scale, workload):
    result = run_once(
        benchmark,
        run_aur_eager,
        scale,
        lam=1.0,
        num_queries=10,
        cycles_per_query=8,
        workload=workload,
    )
    save_report(result.render())
    # Paper shape: each additional query refreshes more replicas among the
    # users it reaches; the series is (weakly) increasing and ends well above
    # where it started.
    series = result.aur_series
    assert len(series) >= 5
    assert series[-1] >= series[0]
    # The eager wave alone refreshes a visible share of the changed replicas
    # among reached users (the paper reports ~24% after one query and >60%
    # after ten at its scale; the shape, not the absolute level, is what the
    # small-scale run reproduces).
    assert result.final_aur() > 0.1
    assert series[-1] > series[len(series) // 2] - 1e-9
    # Reached users accumulate over consecutive queries.
    assert result.reached_counts[-1] >= result.reached_counts[0]
