"""Free-rider sweep: recall and bandwidth vs non-serving nodes (beyond paper)."""

from __future__ import annotations

from repro.experiments import DEFAULT_FREE_RIDER_FRACTIONS, run_free_rider_sweep

from conftest import run_once, save_report


def test_fig_free_riders(benchmark, scale, workload):
    result = run_once(
        benchmark,
        run_free_rider_sweep,
        scale,
        fractions=DEFAULT_FREE_RIDER_FRACTIONS,
        cycles=12,
        workload=workload,
    )
    save_report(result.render())
    # With no riders the sweep reproduces the direct-transport behaviour.
    assert result.final_recall(0.0) > 0.99
    # Riders only consume: a three-quarters-parasitic network cannot beat
    # the honest one, and strands more queries below full recall.
    assert result.final_recall(0.75) <= result.final_recall(0.0)
    assert result.incomplete_queries[0.75] >= result.incomplete_queries[0.0]
    # The protocol routes around riders rather than wedging: even at 75%
    # parasitic nodes the majority of the reference answer is found.
    assert result.final_recall(0.75) > 0.5
