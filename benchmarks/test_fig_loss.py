"""Loss sweep: query processing under per-message packet loss (beyond paper)."""

from __future__ import annotations

from repro.experiments import DEFAULT_LOSS_RATES, run_loss_sweep

from conftest import run_once, save_report


def test_fig_loss(benchmark, scale, workload):
    result = run_once(
        benchmark,
        run_loss_sweep,
        scale,
        loss_rates=DEFAULT_LOSS_RATES,
        cycles=12,
        workload=workload,
    )
    save_report(result.render())
    # A lossless sweep point reproduces the direct-transport behaviour:
    # recall converges to (almost) 1 over the eager horizon.
    assert result.final_recall(0.0) > 0.99
    # Loss degrades recall: the heaviest loss level cannot beat the lossless
    # run, and strands a growing fraction of queries below full recall
    # (a dropped return loses its alpha share for good).
    assert result.final_recall(0.4) < result.final_recall(0.0)
    assert result.incomplete_queries[0.4] >= result.incomplete_queries[0.0]
    # Bandwidth stays in a sane band: loss trades bytes both ways (dropped
    # forwards are retried, but lost alpha shares remove future work), so
    # the per-query cost is positive and same-order as the lossless run.
    assert 0 < result.avg_query_bytes[0.4] <= 2 * result.avg_query_bytes[0.0]
