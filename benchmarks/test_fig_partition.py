"""Partition and heal: recall and bandwidth across a network split (beyond paper)."""

from __future__ import annotations

from repro.experiments import run_partition_heal

from conftest import run_once, save_report


def test_fig_partition(benchmark, scale, workload):
    result = run_once(
        benchmark,
        run_partition_heal,
        scale,
        cycles=12,
        workload=workload,
    )
    save_report(result.render())
    # The healthy twin reproduces the direct-transport behaviour: recall
    # converges to (almost) 1 over the eager horizon.
    assert result.final_recall("healthy") > 0.99
    # The cut actually intercepts traffic, and a partition during the eager
    # phase can only hurt: a QueryResult dropped at the cut is permanent
    # recall loss (partial results are never retried).
    assert result.cut_drops > 0
    assert result.final_recall("partitioned") <= result.final_recall("healthy")
    # Recall stalls while the components are separated, then recovers after
    # the heal: the final recall must improve on the mid-cut level.
    series = result.recall_series["partitioned"]
    assert series[-1] > series[result.partition.heal_cycle - 1]
