"""Serving tradeoff: recall vs latency at coverage cutoffs (beyond paper)."""

from __future__ import annotations

from repro.experiments import DEFAULT_COVERAGE_CUTOFFS, run_serving_tradeoff

from conftest import run_once, save_report


def test_fig_serving(benchmark, scale, workload):
    result = run_once(
        benchmark,
        run_serving_tradeoff,
        scale,
        cutoffs=DEFAULT_COVERAGE_CUTOFFS,
        cycles=12,
        workload=workload,
    )
    save_report(result.render())
    cutoffs = result.cutoffs
    # The direct transport loses nothing, so essentially every query reaches
    # full coverage within the horizon, and higher cutoffs can only be met
    # by a subset of the queries meeting lower ones.
    assert result.fraction_met[1.0] > 0.95
    for lo, hi in zip(cutoffs, cutoffs[1:]):
        assert result.fraction_met[hi] <= result.fraction_met[lo]
    # At coverage 1 the querier reads off the exact result: recall 1 over
    # the queries that got there.
    assert result.avg_recall[1.0] > 0.99
    # The tradeoff itself: waiting for a higher cutoff costs cycles and buys
    # answer quality (per query the first cycle reaching a higher coverage
    # can never precede the first cycle reaching a lower one).
    assert result.latency_p50[1.0] >= result.latency_p50[0.5]
    assert result.avg_recall[1.0] >= result.avg_recall[0.5]
