"""Table 1: distribution of the storage budget c under Poisson λ=1 / λ=4."""

from __future__ import annotations

from repro.experiments import run_table1

from conftest import run_once, save_report


def test_table1_storage_distribution(benchmark):
    result = run_once(benchmark, run_table1, num_users=10_000, seed=0)
    save_report(result.render())
    # Paper row (λ=1): 36.79% / 36.79% / 18.39% / 6.13% / 1.53% / 0.31% / 0.06%
    assert abs(result.theoretical[1.0][0] - 0.3679) < 1e-3
    assert abs(result.theoretical[4.0][-1] - 0.1173) < 1e-3
    assert abs(result.empirical[1.0][10] - 0.3679) < 0.02
