"""Table 2: influence of one day of profile changes per storage budget."""

from __future__ import annotations

from repro.experiments import run_table2

from conftest import run_once, save_report


def test_table2_profile_changes(benchmark, scale, workload):
    storages = list(scale.storage_levels)
    result = run_once(benchmark, run_table2, scale, storages=storages, workload=workload)
    save_report(result.render())
    rows = {row.storage: row for row in result.rows_by_storage}
    smallest, largest = storages[0], storages[-1]
    # Paper shape: the fraction of affected users and the number of replicas
    # to refresh both grow with the storage budget.
    assert rows[largest].affected_fraction >= rows[smallest].affected_fraction
    assert rows[largest].average_to_update >= rows[smallest].average_to_update
    assert rows[largest].max_to_update >= rows[smallest].max_to_update
    assert result.changed_users > 0
