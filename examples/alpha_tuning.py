#!/usr/bin/env python3
"""Tuning the split parameter α: theory (Section 2.4) vs simulation (Figure 3).

The remaining-list split parameter α controls how the work of collecting
missing profiles is shared between the query initiator and the gossip
destination.  The closed-form analysis predicts R(α) cycles to completion
with a minimum at α = 0.5; this script prints the analytical sweep and then
verifies the shape with actual P3Q simulations.

Run with:  python examples/alpha_tuning.py
"""

from __future__ import annotations

from repro.experiments import ExperimentScale, prepare_workload, run_alpha_recall
from repro.p3q import alpha_sweep, cycles_to_complete, max_users_involved


def analytical_part() -> None:
    print("=== analytical model (L = 990 unstored neighbours, X = 10 found per hop) ===")
    sweep = alpha_sweep(990, 10)
    print(f"{'alpha':>6}  {'R(alpha) cycles':>16}  {'user bound 2^R':>15}")
    for alpha, cycles in sorted(sweep.items()):
        print(f"{alpha:>6.1f}  {cycles:>16.2f}  {max_users_involved(cycles):>15}")
    best = min(sweep, key=sweep.get)
    print(f"optimum at alpha = {best} "
          f"({cycles_to_complete(990, 10, best):.2f} cycles, logarithmic in L)")


def simulated_part() -> None:
    print("\n=== simulated recall per cycle (small synthetic system, c = 2) ===")
    scale = ExperimentScale.tiny(seed=17)
    workload = prepare_workload(scale, num_queries=10)
    result = run_alpha_recall(
        scale, alphas=(0.0, 0.3, 0.5, 1.0), storage=2, cycles=12, workload=workload
    )
    print(result.render())
    half = result.cycles_to_reach(0.5, 0.999)
    print(f"\nalpha = 0.5 reaches full recall after {half} cycles -- "
          "no other alpha is faster, matching Theorem 2.2.")


def main() -> None:
    analytical_part()
    simulated_part()


if __name__ == "__main__":
    main()
