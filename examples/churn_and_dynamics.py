#!/usr/bin/env python3
"""Dynamics demo: profile changes and massive departures.

Two experiments from Section 3.4 of the paper, condensed:

1. every user keeps tagging: one simulated day of profile changes is applied
   at once, and the lazy gossip progressively refreshes the replicas stored
   in personal networks (average update rate, Figure 7);
2. half of the users leave simultaneously: queries still succeed because the
   departed users' profiles survive as replicas on the remaining nodes
   (Figure 11).

Run with:  python examples/churn_and_dynamics.py
"""

from __future__ import annotations

from repro.baselines import CentralizedTopK
from repro.data import (
    DynamicsConfig,
    ProfileDynamicsGenerator,
    QueryWorkloadGenerator,
    SyntheticConfig,
    generate_dataset,
    massive_departure,
)
from repro.metrics import average_recall, average_update_rate
from repro.p3q import P3QConfig, P3QSimulation


def freshness_demo() -> None:
    print("=== profile dynamics: lazy gossip refreshes stale replicas ===")
    dataset = generate_dataset(SyntheticConfig(num_users=120, seed=5))
    config = P3QConfig(network_size=40, storage=6, random_view_size=8, seed=5)
    simulation = P3QSimulation(dataset, config)
    simulation.warm_start()
    simulation.bootstrap_random_views()

    generator = ProfileDynamicsGenerator(
        simulation.dataset, DynamicsConfig(change_fraction=0.2, mean_new_actions=8, seed=5)
    )
    change_day = generator.generate_day()
    simulation.apply_profile_changes(change_day)
    changed = set(change_day.changed_users)
    print(f"{len(changed)} users changed their profiles simultaneously")

    for cycle in (0, 5, 10, 15, 20):
        if cycle:
            simulation.run_lazy(5)
        aur = average_update_rate(
            simulation.stored_replica_versions(),
            simulation.current_profile_versions(),
            changed,
        )
        print(f"  after {cycle:>2} lazy cycles: average update rate = {aur:.2f}")


def churn_demo() -> None:
    print("\n=== churn: 50% of users leave, queries still mostly succeed ===")
    dataset = generate_dataset(SyntheticConfig(num_users=120, seed=6))
    config = P3QConfig(network_size=40, storage=6, random_view_size=8, seed=6)
    queriers = dataset.user_ids[:20]
    queries = QueryWorkloadGenerator(dataset, seed=6).generate(queriers)
    central = CentralizedTopK(dataset, network_size=config.network_size)
    references = central.relevant_items(queries, k=10)

    for fraction in (0.0, 0.5, 0.9):
        simulation = P3QSimulation(dataset.copy(), config)
        simulation.warm_start()
        if fraction:
            event = massive_departure(
                simulation.dataset, fraction, seed=7, protect=queriers
            )
            simulation.depart_users(event.departing_users)
        sessions = simulation.issue_queries(queries)
        simulation.run_eager(cycles=10, stop_when_idle=False)
        results = {qid: s.snapshots[-1].items for qid, s in sessions.items()}
        value = average_recall(results, references)
        print(f"  departures = {int(fraction * 100):>2}% -> average recall after "
              f"10 cycles = {value:.2f}")

    print("replication inside personal networks keeps most of the answer"
          " available even under massive departures.")


def main() -> None:
    freshness_demo()
    churn_demo()


if __name__ == "__main__":
    main()
