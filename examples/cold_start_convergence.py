#!/usr/bin/env python3
"""Cold start: watch the lazy gossip build personal networks from nothing.

Every node starts knowing only a handful of random contacts.  The two-layer
lazy gossip (random peer sampling below, similarity tracking above) then
gradually discovers each user's most similar peers.  The script reports the
average success ratio against the offline-computed ideal networks (the
paper's Figure 2 metric), then demonstrates that queries issued on the
discovered networks already return most of the reference answer.

Run with:  python examples/cold_start_convergence.py
"""

from __future__ import annotations

from repro.baselines import CentralizedTopK
from repro.data import QueryWorkloadGenerator, SyntheticConfig, generate_dataset
from repro.metrics import average_recall, average_success_ratio
from repro.p3q import P3QConfig, P3QSimulation
from repro.similarity import IdealNetworkIndex


def main() -> None:
    dataset = generate_dataset(
        SyntheticConfig(num_users=120, num_items=900, num_tags=200, seed=3)
    )
    config = P3QConfig(network_size=40, storage=6, random_view_size=8, seed=3)
    simulation = P3QSimulation(dataset, config)
    simulation.bootstrap_random_views()

    # The offline "ideal" networks (global knowledge) are the convergence target.
    ideal = IdealNetworkIndex(dataset, size=config.network_size)

    print("lazy-mode convergence (average success ratio vs ideal networks):")
    ratio = average_success_ratio(ideal, simulation.discovered_networks())
    print(f"  cycle  0: {ratio:.3f}")
    for step in range(5):
        simulation.run_lazy(5)
        ratio = average_success_ratio(ideal, simulation.discovered_networks())
        print(f"  cycle {5 * (step + 1):>2}: {ratio:.3f}")

    # Queries on the *discovered* networks, compared against the reference
    # computed on the *ideal* networks: the gap that remains is exactly the
    # not-yet-discovered part of the personal networks.
    queriers = dataset.user_ids[:25]
    queries = QueryWorkloadGenerator(dataset, seed=4).generate(queriers)
    central = CentralizedTopK(dataset, network_size=config.network_size, ideal=ideal)
    references = central.relevant_items(queries, k=10)

    sessions = simulation.issue_queries(queries)
    simulation.run_eager(cycles=15)
    results = {qid: session.snapshots[-1].items for qid, session in sessions.items()}
    value = average_recall(results, references)
    print(f"\naverage recall of {len(queries)} queries on the discovered networks: {value:.3f}")
    print("(recall 1 requires fully converged networks; the residual gap is the"
          " part of the ideal neighbourhood the lazy mode has not found yet)")


if __name__ == "__main__":
    main()
