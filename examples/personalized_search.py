#!/usr/bin/env python3
"""Personalization demo: the same query, different users, different answers.

The paper's motivating example: a computer scientist searching "matrix"
wants linear algebra, a movie fan wants the film.  This script builds a
hand-crafted tagging system with two communities that use the same tag on
different items, deploys P3Q, and shows that the two users receive different
top-k results for the *same* tag query because the results are scored over
their own implicit social networks.

Run with:  python examples/personalized_search.py
"""

from __future__ import annotations

from repro.data import Dataset, Query
from repro.p3q import P3QConfig, P3QSimulation

# Item identifiers (think URLs).
MATRIX_ALGEBRA_TUTORIAL = 1
EIGENVALUE_COURSE = 2
NUMPY_DOCS = 3
MATRIX_MOVIE_PAGE = 10
KEANU_FAN_WIKI = 11
SCIFI_REVIEWS = 12

# Tag identifiers.
TAG_MATRIX = 100
TAG_MATH = 101
TAG_LINEAR_ALGEBRA = 102
TAG_MOVIE = 110
TAG_SCIFI = 111

ITEM_NAMES = {
    MATRIX_ALGEBRA_TUTORIAL: "matrix-algebra-tutorial",
    EIGENVALUE_COURSE: "eigenvalue-course",
    NUMPY_DOCS: "numpy-docs",
    MATRIX_MOVIE_PAGE: "the-matrix-movie-page",
    KEANU_FAN_WIKI: "keanu-reeves-fan-wiki",
    SCIFI_REVIEWS: "sci-fi-reviews",
}


def build_dataset() -> Dataset:
    """Two communities: scientists (users 0-4) and movie fans (5-9).

    Both communities use the tag 'matrix', but on different items.  User 0
    is the querying scientist, user 5 the querying movie fan.
    """
    scientists = {
        uid: [
            (MATRIX_ALGEBRA_TUTORIAL, TAG_MATRIX),
            (MATRIX_ALGEBRA_TUTORIAL, TAG_MATH),
            (EIGENVALUE_COURSE, TAG_LINEAR_ALGEBRA),
            (EIGENVALUE_COURSE, TAG_MATRIX),
            (NUMPY_DOCS, TAG_MATH),
        ]
        for uid in range(0, 5)
    }
    movie_fans = {
        uid: [
            (MATRIX_MOVIE_PAGE, TAG_MATRIX),
            (MATRIX_MOVIE_PAGE, TAG_MOVIE),
            (KEANU_FAN_WIKI, TAG_MOVIE),
            (KEANU_FAN_WIKI, TAG_MATRIX),
            (SCIFI_REVIEWS, TAG_SCIFI),
        ]
        for uid in range(5, 10)
    }
    return Dataset.from_actions({**scientists, **movie_fans})


def main() -> None:
    dataset = build_dataset()
    config = P3QConfig(network_size=6, storage=2, random_view_size=4, seed=1,
                       digest_bits=2_048, digest_hashes=5)
    simulation = P3QSimulation(dataset, config)
    simulation.bootstrap_random_views()

    # Let the lazy gossip discover the implicit social networks from scratch:
    # no explicit friendship is ever declared.
    simulation.run_lazy(cycles=10)

    scientist, movie_fan = 0, 5
    for name, uid in (("scientist", scientist), ("movie fan", movie_fan)):
        neighbours = simulation.node(uid).personal_network.member_ids()
        print(f"{name} (user {uid}) discovered acquaintances: {neighbours}")

    # Both users issue the *same* query: the single tag 'matrix'.
    queries = [
        Query(query_id=1, querier=scientist, tags=(TAG_MATRIX,)),
        Query(query_id=2, querier=movie_fan, tags=(TAG_MATRIX,)),
    ]
    sessions = simulation.issue_queries(queries)
    simulation.run_eager(cycles=10)

    print("\nsame query ('matrix'), personalized answers:")
    for query in queries:
        session = sessions[query.query_id]
        items = [ITEM_NAMES.get(item, str(item)) for item in session.snapshots[-1].items]
        who = "scientist" if query.querier == scientist else "movie fan"
        print(f"  {who:<10} -> {items}")

    scientist_items = set(sessions[1].snapshots[-1].items)
    fan_items = set(sessions[2].snapshots[-1].items)
    assert MATRIX_ALGEBRA_TUTORIAL in scientist_items
    assert MATRIX_MOVIE_PAGE in fan_items
    print("\nthe scientist gets linear algebra, the fan gets the film -- "
          "personalization emerges purely from implicit tagging affinities.")


if __name__ == "__main__":
    main()
