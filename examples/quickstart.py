#!/usr/bin/env python3
"""Quickstart: run P3Q end to end on a synthetic tagging trace.

The script builds a small delicious-like trace, deploys one P3Q node per
user with converged personal networks, issues a personalized top-10 query,
and shows how the result is refined cycle by cycle until it matches the
centralized reference (recall 1).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines import CentralizedTopK
from repro.data import QueryWorkloadGenerator, SyntheticConfig, generate_dataset
from repro.metrics import recall
from repro.p3q import P3QConfig, P3QSimulation


def main() -> None:
    # 1. A synthetic collaborative tagging system: 150 users, long-tail
    #    item/tag popularity, community structure.
    dataset = generate_dataset(
        SyntheticConfig(num_users=150, num_items=1_200, num_tags=250, seed=1)
    )
    stats = dataset.stats()
    print(f"dataset: {stats.num_users} users, {stats.num_items} items, "
          f"{stats.num_tags} tags, {stats.num_actions} tagging actions")

    # 2. Deploy P3Q: personal networks of 50 neighbours, 5 stored profiles,
    #    random views of 8 peers, alpha = 0.5.
    config = P3QConfig(network_size=50, storage=5, random_view_size=8, alpha=0.5, seed=1)
    simulation = P3QSimulation(dataset, config)
    ideal = simulation.warm_start()      # personal networks already converged
    simulation.bootstrap_random_views()

    # 3. One personalized query: a user searches with the tags she used on a
    #    random item of her own profile.
    querier = dataset.user_ids[0]
    query = QueryWorkloadGenerator(dataset, seed=2).query_for(querier)
    print(f"\nquerier {querier} asks for tags {query.tags}")

    # 4. The centralized reference defines the ideal (recall 1) answer.
    central = CentralizedTopK(dataset, network_size=50, ideal=ideal)
    reference = central.top_k_items(query, k=10)
    print(f"reference top-10 (centralized): {reference}")

    # 5. Issue the query and watch the eager gossip refine the answer.
    sessions = simulation.issue_queries([query])
    session = sessions[query.query_id]
    first = session.snapshots[0]
    print(f"\ncycle 0 (local result from {first.profiles_used} stored profiles): "
          f"{first.items}  recall={recall(first.items, reference):.2f}")

    def report(cycle: int, snapshots) -> None:
        snapshot = snapshots[query.query_id]
        value = recall(snapshot.items, reference)
        print(f"cycle {cycle}: coverage={snapshot.coverage:.2f}  recall={value:.2f}")

    simulation.run_eager(cycles=15, callback=report)

    final = session.snapshots[-1]
    print(f"\nfinal result: {final.items}")
    print(f"exact match with the centralized reference: "
          f"{recall(final.items, reference) == 1.0}")
    print(f"users reached by the query: {len(simulation.users_reached(query.query_id))}")


if __name__ == "__main__":
    main()
