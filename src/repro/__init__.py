"""repro: a reproduction of "Gossiping Personalized Queries" (P3Q, EDBT 2010).

The package implements, in pure Python:

* the collaborative-tagging data substrate and a synthetic delicious-like
  trace generator (:mod:`repro.data`);
* Bloom-filter profile digests (:mod:`repro.bloom`) and profile similarity
  (:mod:`repro.similarity`);
* NRA-based top-k machinery, including the incremental variant for
  asynchronously arriving partial results (:mod:`repro.topk`);
* a cycle-driven peer-to-peer simulator with traffic accounting
  (:mod:`repro.simulator`);
* the gossip substrate -- peer sampling, personal networks, the 3-step lazy
  exchange (:mod:`repro.gossip`);
* the P3Q protocol itself -- node, eager query gossip, querier-side merging,
  analytical model (:mod:`repro.p3q`);
* baselines (:mod:`repro.baselines`), evaluation metrics
  (:mod:`repro.metrics`) and the per-figure experiment runners
  (:mod:`repro.experiments`);
* the query-serving driver (:mod:`repro.serving`), the simulation fuzzer
  (:mod:`repro.simtest`) and the asyncio service runtime speaking
  serialized frames (:mod:`repro.service`).

Every runnable tool is a subcommand of ``python -m repro`` (see
:mod:`repro.cli`); the names re-exported here are the curated library
surface (see README "Library usage").

Quickstart::

    from repro.data import SyntheticConfig, generate_dataset, QueryWorkloadGenerator
    from repro.p3q import P3QConfig, P3QSimulation

    dataset = generate_dataset(SyntheticConfig(num_users=100, seed=1))
    sim = P3QSimulation(dataset, P3QConfig(network_size=30, storage=5, seed=1))
    sim.warm_start()
    query = QueryWorkloadGenerator(dataset, seed=1).query_for(user_id=0)
    sim.issue_queries([query])
    sim.run_eager(cycles=10)
    print(sim.sessions()[query.query_id].current_items())
"""

from .data import (
    Dataset,
    Query,
    QueryWorkloadGenerator,
    SyntheticConfig,
    UserProfile,
    generate_dataset,
)
from .p3q import P3QConfig, P3QNode, P3QSimulation
from .baselines import CentralizedTopK
from .serving import ServingConfig, ServingWorkload, run_serving
from .service import NodeService, ServiceConfig, ServiceRuntime
from .simtest import ScenarioSpec

__version__ = "1.0.0"

__all__ = [
    "CentralizedTopK",
    "Dataset",
    "NodeService",
    "P3QConfig",
    "P3QNode",
    "P3QSimulation",
    "Query",
    "QueryWorkloadGenerator",
    "ScenarioSpec",
    "ServiceConfig",
    "ServiceRuntime",
    "ServingConfig",
    "ServingWorkload",
    "SyntheticConfig",
    "UserProfile",
    "generate_dataset",
    "run_serving",
    "__version__",
]
