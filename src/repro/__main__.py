"""``python -m repro``: the unified command-line front door (see repro.cli)."""

import sys

from .cli import main

sys.exit(main())
