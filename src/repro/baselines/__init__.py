"""Baselines: the centralized reference and the strawman decentralized strategies."""

from .centralized import CentralizedTopK, inverted_list_storage_estimate
from .strategies import (
    OnDemandPollingStrategy,
    StoreEverythingStrategy,
    StrategyCost,
)

__all__ = [
    "CentralizedTopK",
    "OnDemandPollingStrategy",
    "StoreEverythingStrategy",
    "StrategyCost",
    "inverted_list_storage_estimate",
]
