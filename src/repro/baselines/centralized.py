"""Centralized network-aware top-k baseline.

This is the reproduction of the reference the paper compares against
(Section 3.2.2): "a top-10 processing in a centralized implementation of our
protocol", itself inspired by the network-aware search of Amer-Yahia et al.
A central server holds every profile and, per querier, the querier's ideal
personal network; the relevance of an item is its aggregated score over that
network.  The results of this engine define recall = 1.

The engine also exposes the per-(user, tag) inverted-list size accounting
that motivates the paper's argument that the centralized approach does not
scale in storage.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.models import Dataset, UserProfile
from ..data.queries import Query
from ..similarity.knn import IdealNetworkIndex
from ..p3q.scoring import partial_scores
from ..topk.exact import exact_top_k


class CentralizedTopK:
    """Exact personalized top-k over the querier's ideal personal network."""

    def __init__(
        self,
        dataset: Dataset,
        network_size: int,
        ideal: Optional[IdealNetworkIndex] = None,
    ) -> None:
        self.dataset = dataset
        self.network_size = network_size
        self.ideal = ideal or IdealNetworkIndex(dataset, size=network_size)

    def personal_network_of(self, user_id: int) -> List[int]:
        return self.ideal.neighbour_ids(user_id)

    def relevance_scores(self, query: Query) -> Dict[int, float]:
        """``Score(Q, i)`` summed over the querier's ideal personal network.

        The querier's own profile participates as well (her local partial
        result in P3Q always includes it), so the decentralized protocol and
        this reference aggregate exactly the same profile set.
        """
        neighbour_ids = self.personal_network_of(query.querier)
        profiles = [self.dataset.profile(uid) for uid in neighbour_ids]
        profiles.append(self.dataset.profile(query.querier))
        return partial_scores(profiles, query)

    def top_k(self, query: Query, k: int = 10) -> List[Tuple[int, float]]:
        return exact_top_k([self.relevance_scores(query)], k)

    def top_k_items(self, query: Query, k: int = 10) -> List[int]:
        return [item for item, _ in self.top_k(query, k)]

    def relevant_items(self, queries: Sequence[Query], k: int = 10) -> Dict[int, List[int]]:
        """query_id -> the k reference ("relevant") items for each query."""
        return {query.query_id: self.top_k_items(query, k) for query in queries}


def inverted_list_storage_estimate(dataset: Dataset, ideal: IdealNetworkIndex) -> Dict[str, int]:
    """Estimate of the centralized per-(user, tag) inverted-list storage.

    The centralized approach of the paper's reference stores, for every user
    and every tag used in her personal network, the list of (item, score)
    entries over that network.  The returned dict reports the number of
    inverted lists and the total number of entries, the quantities behind the
    "several terabytes for 100,000 users" argument in the introduction.
    """
    total_lists = 0
    total_entries = 0
    for user_id in dataset.user_ids:
        network_profiles: List[UserProfile] = [
            dataset.profile(uid) for uid in ideal.neighbour_ids(user_id)
        ]
        per_tag_items: Dict[int, set] = defaultdict(set)
        for profile in network_profiles:
            for item, tag in profile:
                per_tag_items[tag].add(item)
        total_lists += len(per_tag_items)
        total_entries += sum(len(items) for items in per_tag_items.values())
    return {"inverted_lists": total_lists, "entries": total_entries}
