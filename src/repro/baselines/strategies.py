"""Decentralized strawman strategies discussed in the paper's introduction.

P3Q is motivated against two extremes:

* **store-everything** -- every user locally replicates all the profiles of
  her personal network.  Query processing is instantaneous and exact, but
  the storage and maintenance cost grows with ``s`` full profiles per user
  (the paper: "several hundreds of profiles are needed ... seems simply
  inadequate").
* **store-nothing / on-demand polling** -- every user stores only her own
  profile and fetches neighbours' profiles one by one (or all at once) at
  query time.  Storage is minimal but each query costs one round-trip per
  neighbour (latency) or a burst of ``s`` simultaneous transfers
  (bandwidth), and offline users' profiles are simply unavailable.

Both are implemented against the same dataset/ideal-network substrate so the
benchmarks can put P3Q's numbers next to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..data.models import Dataset
from ..data.queries import Query
from ..gossip.sizes import tagging_actions_size
from ..p3q.scoring import partial_scores
from ..similarity.knn import IdealNetworkIndex
from ..topk.exact import exact_top_k


@dataclass
class StrategyCost:
    """Cost summary of answering one query under a strawman strategy."""

    #: Bytes permanently stored at the querier for her neighbours' profiles.
    storage_bytes: int
    #: Bytes transferred at query time.
    query_bytes: int
    #: Number of sequential round-trips needed before the answer is exact.
    round_trips: int
    #: Fraction of the personal network whose profiles were available.
    availability: float


class StoreEverythingStrategy:
    """Replicate the whole personal network locally (exact, storage-heavy)."""

    def __init__(self, dataset: Dataset, ideal: IdealNetworkIndex) -> None:
        self.dataset = dataset
        self.ideal = ideal

    def top_k(self, query: Query, k: int = 10) -> List[Tuple[int, float]]:
        profiles = [self.dataset.profile(uid) for uid in self.ideal.neighbour_ids(query.querier)]
        profiles.append(self.dataset.profile(query.querier))
        return exact_top_k([partial_scores(profiles, query)], k)

    def cost(self, query: Query) -> StrategyCost:
        neighbour_ids = self.ideal.neighbour_ids(query.querier)
        storage = sum(tagging_actions_size(len(self.dataset.profile(uid))) for uid in neighbour_ids)
        return StrategyCost(
            storage_bytes=storage,
            query_bytes=0,
            round_trips=0,
            availability=1.0,
        )


class OnDemandPollingStrategy:
    """Store nothing; poll every neighbour's profile at query time.

    ``offline`` lists users whose profiles cannot be fetched (churn): their
    contributions are simply missing, which is how this strategy loses recall
    under departure.
    """

    def __init__(
        self,
        dataset: Dataset,
        ideal: IdealNetworkIndex,
        offline: Optional[Set[int]] = None,
    ) -> None:
        self.dataset = dataset
        self.ideal = ideal
        self.offline = offline or set()

    def available_neighbours(self, query: Query) -> List[int]:
        return [
            uid
            for uid in self.ideal.neighbour_ids(query.querier)
            if uid not in self.offline
        ]

    def top_k(self, query: Query, k: int = 10) -> List[Tuple[int, float]]:
        profiles = [self.dataset.profile(uid) for uid in self.available_neighbours(query)]
        profiles.append(self.dataset.profile(query.querier))
        return exact_top_k([partial_scores(profiles, query)], k)

    def cost(self, query: Query, parallel: bool = False) -> StrategyCost:
        available = self.available_neighbours(query)
        total_ids = self.ideal.neighbour_ids(query.querier)
        query_bytes = sum(tagging_actions_size(len(self.dataset.profile(uid))) for uid in available)
        return StrategyCost(
            storage_bytes=0,
            query_bytes=query_bytes,
            round_trips=1 if parallel else len(available),
            availability=(len(available) / len(total_ids)) if total_ids else 1.0,
        )
