"""Bloom-filter profile digests used by the gossip protocol.

:class:`BloomFilter` is the bit-packed production filter (see
``docs/ARCHITECTURE.md`` for the design); ``repro.bloom._legacy`` keeps the
original ``hashlib``-based implementation as an equivalence/benchmark
baseline.
"""

from .bloom import (
    PAPER_DIGEST_BITS,
    BloomFilter,
    clear_hash_cache,
    hash_bases,
    optimal_num_bits,
    optimal_num_hashes,
)

__all__ = [
    "PAPER_DIGEST_BITS",
    "BloomFilter",
    "clear_hash_cache",
    "hash_bases",
    "optimal_num_bits",
    "optimal_num_hashes",
]
