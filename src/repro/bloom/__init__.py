"""Bloom-filter profile digests used by the gossip protocol."""

from .bloom import (
    PAPER_DIGEST_BITS,
    BloomFilter,
    optimal_num_bits,
    optimal_num_hashes,
)

__all__ = [
    "PAPER_DIGEST_BITS",
    "BloomFilter",
    "optimal_num_bits",
    "optimal_num_hashes",
]
