"""The original ``hashlib``-based Bloom filter, kept as a reference.

This module preserves the seed implementation of the profile digest: a
``bytearray``-backed Bloom filter whose two double-hashing bases are derived
from a fresh ``blake2b`` digest of ``repr(key)`` on *every* probe.  It is no
longer used by the protocol code -- :mod:`repro.bloom.bloom` replaced it with
a bit-packed filter and a shared hash-base cache -- but it stays in the tree
for two purposes:

* the equivalence property tests (``tests/test_bloom_equivalence.py``) assert
  that the fast filter preserves the legacy filter's observable behaviour
  (no false negatives, comparable false-positive rates, identical sizing);
* the performance harness (``benchmarks/perf``) measures the fast filter's
  speedup against this implementation, which is the baseline quoted in
  ``BENCH_p3q.json``.

Do not use this class in protocol code; import :class:`repro.bloom.BloomFilter`
instead.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Iterator, Tuple

from .bloom import PAPER_DIGEST_BITS


class LegacyBloomFilter:
    """The seed repository's Bloom filter (per-probe ``hashlib`` hashing)."""

    __slots__ = ("num_bits", "num_hashes", "_bits", "_count")

    def __init__(self, num_bits: int = PAPER_DIGEST_BITS, num_hashes: int = 14) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self._count = 0

    @classmethod
    def from_items(
        cls,
        items: Iterable[object],
        num_bits: int = PAPER_DIGEST_BITS,
        num_hashes: int = 14,
    ) -> "LegacyBloomFilter":
        bloom = cls(num_bits=num_bits, num_hashes=num_hashes)
        for item in items:
            bloom.add(item)
        return bloom

    def _base_hashes(self, key: object) -> Tuple[int, int]:
        data = repr(key).encode("utf-8")
        digest = hashlib.blake2b(data, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1  # make h2 odd -> full cycle
        return h1, h2

    def _positions(self, key: object) -> Iterator[int]:
        h1, h2 = self._base_hashes(key)
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: object) -> None:
        for pos in self._positions(key):
            self._bits[pos // 8] |= 1 << (pos % 8)
        self._count += 1

    def update(self, keys: Iterable[object]) -> None:
        for key in keys:
            self.add(key)

    def __contains__(self, key: object) -> bool:
        return all(self._bits[pos // 8] >> (pos % 8) & 1 for pos in self._positions(key))

    def intersects(self, keys: Iterable[object]) -> bool:
        return any(key in self for key in keys)

    @property
    def approximate_count(self) -> int:
        return self._count

    @property
    def size_in_bytes(self) -> int:
        return len(self._bits)

    def fill_ratio(self) -> float:
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits

    def estimated_false_positive_rate(self) -> float:
        if self._count == 0:
            return 0.0
        exponent = -self.num_hashes * self._count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes
