"""Bit-packed Bloom filter profile digests.

P3Q never ships a full profile before knowing it is worth shipping.  Each
node stores, for every neighbour in its personal network and random view, a
*digest* of that neighbour's profile: a Bloom filter over the set of items
the neighbour has tagged.  The digest answers "might this user have tagged an
item I also tagged?" which is the trigger for the heavier steps of the lazy
exchange.

The paper uses 20 Kbit filters for profiles of ~249 items on average, giving
a false-positive rate around 0.1%.  This implementation is a standard
partition-free Bloom filter with double hashing (Kirsch & Mitzenmacher), so
``k`` hash functions are derived from two base hashes.

Digest checks are the hottest operation of the whole simulator -- every
gossip cycle probes hundreds of digests against the receiver's item set -- so
the implementation is engineered for cheap probes (see
``docs/ARCHITECTURE.md`` for how this layer fits the rest of the system):

* **Bit-packed-integer storage.**  The whole bit array is one Python int.
  Inserting a key ORs in its precomputed ``k``-bit *probe mask*; a
  membership test is a single C-level ``bits & mask == mask`` -- no
  per-probe Python loop at all.
* **Integer double hashing.**  Item ids (small ints) are mixed with the
  splitmix64 finalizer -- a handful of integer multiplies -- instead of a
  ``hashlib`` digest of ``repr(key)``.  Non-integer keys keep the ``blake2b``
  path as a fallback.
* **Shared caches.**  The double-hash bases of a key are geometry-independent
  and memoized across all filters (:func:`hash_bases`); the k-bit probe masks
  they expand to are memoized per filter geometry.  Digest construction and
  membership tests touch the same item ids over and over, so after the first
  touch every operation is one dict hit plus one big-int instruction.

The original ``hashlib``-per-probe implementation is preserved as
:class:`repro.bloom._legacy.LegacyBloomFilter` for equivalence tests and as
the benchmark baseline.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, Set, Tuple

#: Sizing used in the paper's cost analysis: 20 Kbit per digest.
PAPER_DIGEST_BITS = 20_000

_MASK64 = (1 << 64) - 1

#: Shared cache of per-key double-hash bases ``(h1, h2)``.  The bases do not
#: depend on filter geometry (``num_bits``/``num_hashes``), so one cache
#: serves every filter in the process.  Bounded so adversarial key streams
#: cannot grow it without limit; in simulations the working set is the item
#: universe, which fits comfortably.
_HASH_BASES: Dict[object, Tuple[int, int]] = {}
_HASH_CACHE_LIMIT = 1 << 20

#: Per-geometry caches of probe masks: ``(num_bits, num_hashes) -> {key ->
#: k-bit int mask}``.  A mask is the OR of the key's ``k`` probe positions,
#: so insert and membership collapse to single big-int operations.  Int keys
#: are stored under the key itself; other types under ``(type, key)`` (the
#: same ``1``/``True``/``1.0`` separation as the hash-base cache).  A mask
#: costs ~``num_bits/8`` bytes of payload plus dict/key/int-object overhead,
#: so each geometry's entry cap is derived from a byte budget rather than a
#: flat count.
_MASKS: Dict[Tuple[int, int], Dict[object, int]] = {}
_MASK_CACHE_BYTES_PER_GEOMETRY = 128 << 20
#: Approximate per-entry bookkeeping cost: dict slot + key object + the
#: int header of the mask itself.
_MASK_ENTRY_OVERHEAD_BYTES = 128
_MASK_CACHE_MIN_ENTRIES = 1024


def _cache_key(key: object) -> object:
    """The dict key a cache entry for ``key`` is stored under, or ``None``.

    Int keys are stored raw; every other hashable type under ``(type, key)``
    so equal-but-distinct-type keys (``1``/``True``/``1.0``) never share an
    entry; unhashable keys return ``None`` (computed but never cached).
    Both shared caches MUST use this helper -- diverging dispatch rules
    would reintroduce the warm-up-order aliasing hazard.
    """
    if type(key) is int:
        return key
    try:
        hash(key)
    except TypeError:
        return None
    return (type(key), key)


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: a cheap, well-distributed 64-bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def hash_bases(key: object) -> Tuple[int, int]:
    """The two double-hashing bases ``(h1, h2)`` for ``key``, memoized.

    ``h2`` is forced odd so that for power-free moduli the probe sequence
    ``h1 + i*h2`` still cycles through many distinct positions.  Unsigned
    integers in the 64-bit range use splitmix64 mixing; everything else
    (negative or huge ints, tuples, strings) falls back to ``blake2b`` over
    ``repr(key)`` exactly like the legacy filter -- the fast path must not
    truncate, or ``k`` and ``k + 2**64`` would alias to identical bases
    (a deterministic false positive the legacy filter never produced).

    Cache entries are keyed through :func:`_cache_key`: Python dicts treat
    ``1``, ``1.0`` and ``True`` as the same key, and letting e.g. ``True``
    hit an entry cached for ``1`` would make the bases depend on cache
    warm-up order -- a false-negative hazard once the cache is cleared.
    """
    cache_key = _cache_key(key)
    if cache_key is not None:
        bases = _HASH_BASES.get(cache_key)
        if bases is not None:
            return bases
    if type(key) is int and 0 <= key < (1 << 64):
        h1 = _mix64(key)
        h2 = _mix64(h1) | 1
    else:
        digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
    bases = (h1, h2)
    if cache_key is not None and len(_HASH_BASES) < _HASH_CACHE_LIMIT:
        _HASH_BASES[cache_key] = bases
    return bases


#: Per-geometry caches of probe *positions*: ``(num_bits, num_hashes) ->
#: {key -> (pos_0, ..., pos_{k-1})}``.  The positions are the same bit
#: indices a probe mask ORs together, kept unpacked for set-membership
#: probing against :meth:`BloomFilter.bit_positions` -- the sparse-filter
#: fast path where a big-int AND (O(num_bits) words) would dominate.
_POSITIONS: Dict[Tuple[int, int], Dict[object, Tuple[int, ...]]] = {}
_POSITIONS_CACHE_LIMIT = 1 << 20


def probe_positions(key: object, num_bits: int, num_hashes: int) -> Tuple[int, ...]:
    """The ``k`` probe bit indices of ``key`` for a filter geometry, memoized.

    Exactly the positions :meth:`BloomFilter._probe_mask` ORs into the probe
    mask -- ``bits & mask == mask`` iff every one of these indices is set.
    """
    cache = _POSITIONS.setdefault((num_bits, num_hashes), {})
    cache_key = _cache_key(key)
    positions = cache.get(cache_key) if cache_key is not None else None
    if positions is None:
        h1, h2 = hash_bases(key)
        out = []
        for _ in range(num_hashes):
            out.append(h1 % num_bits)
            h1 += h2
        positions = tuple(out)
        if cache_key is not None and len(cache) < _POSITIONS_CACHE_LIMIT:
            cache[cache_key] = positions
    return positions


def clear_hash_cache() -> None:
    """Drop the shared hash-base, probe-mask and probe-position caches.

    Safe at any time: the caches only memoize pure functions of the key
    (and filter geometry), so clearing them changes nothing observable
    except speed.  Mask/position dicts are cleared *in place* because live
    filters hold references to them; those filters simply re-populate on use.
    """
    _HASH_BASES.clear()
    for masks in _MASKS.values():
        masks.clear()
    for positions in _POSITIONS.values():
        positions.clear()


def optimal_num_hashes(num_bits: int, expected_items: int) -> int:
    """The false-positive-minimizing number of hash functions ``k``.

    ``k = (m/n) ln 2`` rounded to the nearest integer and clamped to >= 1.
    """
    if num_bits <= 0:
        raise ValueError("num_bits must be positive")
    if expected_items <= 0:
        return 1
    k = round((num_bits / expected_items) * math.log(2))
    return max(1, int(k))


def optimal_num_bits(expected_items: int, false_positive_rate: float) -> int:
    """Bits needed for a target false-positive rate at ``expected_items``."""
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must be in (0, 1)")
    if expected_items <= 0:
        return 8
    bits = -expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)
    return max(8, int(math.ceil(bits)))


class BloomFilter:
    """A Bloom filter over integer (or otherwise hashable) keys.

    The filter guarantees *no false negatives*: every added key is reported
    as (possibly) present.  False positives occur with a probability that
    depends on the fill ratio; :meth:`estimated_false_positive_rate` reports
    the standard estimate.
    """

    __slots__ = ("num_bits", "num_hashes", "_bits", "_count", "_masks", "_mask_limit")

    def __init__(self, num_bits: int = PAPER_DIGEST_BITS, num_hashes: int = 14) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        #: The bit array, packed into one arbitrary-precision integer.
        self._bits = 0
        self._count = 0
        #: The shared probe-mask cache for this filter's geometry, capped so
        #: the cache costs at most ~_MASK_CACHE_BYTES_PER_GEOMETRY bytes.
        self._masks = _MASKS.setdefault((num_bits, num_hashes), {})
        self._mask_limit = max(
            _MASK_CACHE_MIN_ENTRIES,
            _MASK_CACHE_BYTES_PER_GEOMETRY
            // ((num_bits + 7) // 8 + _MASK_ENTRY_OVERHEAD_BYTES),
        )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def for_capacity(cls, expected_items: int, false_positive_rate: float = 0.001) -> "BloomFilter":
        """Size a filter for ``expected_items`` at the target FP rate."""
        bits = optimal_num_bits(expected_items, false_positive_rate)
        hashes = optimal_num_hashes(bits, expected_items)
        return cls(num_bits=bits, num_hashes=hashes)

    @classmethod
    def from_items(
        cls,
        items: Iterable[object],
        num_bits: int = PAPER_DIGEST_BITS,
        num_hashes: int = 14,
    ) -> "BloomFilter":
        """Build a filter containing every element of ``items``."""
        bloom = cls(num_bits=num_bits, num_hashes=num_hashes)
        bloom.update(items)
        return bloom

    # -- core operations ------------------------------------------------------

    def _probe_mask(self, key: object) -> int:
        """The OR of ``key``'s ``k`` probe bits, memoized per geometry."""
        masks = self._masks
        cache_key = _cache_key(key)
        mask = masks.get(cache_key) if cache_key is not None else None
        if mask is None:
            h1, h2 = hash_bases(key)
            num_bits = self.num_bits
            mask = 0
            for _ in range(self.num_hashes):
                mask |= 1 << (h1 % num_bits)
                h1 += h2
            if cache_key is not None and len(masks) < self._mask_limit:
                masks[cache_key] = mask
        return mask

    def add(self, key: object) -> None:
        """Insert ``key`` into the filter."""
        self._bits |= self._probe_mask(key)
        self._count += 1

    def update(self, keys: Iterable[object]) -> None:
        for key in keys:
            self.add(key)

    def __contains__(self, key: object) -> bool:
        mask = self._probe_mask(key)
        return self._bits & mask == mask

    def might_contain(self, key: object) -> bool:
        """Alias of ``key in filter`` with the probabilistic semantics spelt out."""
        return key in self

    def intersects(self, keys: Iterable[object]) -> bool:
        """True if *any* of ``keys`` might be in the filter.

        This is the digest test of P3Q's lazy mode: a random-view neighbour is
        contacted for her full profile only if her digest contains at least one
        item the local user also tagged.
        """
        return any(key in self for key in keys)

    def bit_positions(self) -> Set[int]:
        """Indices of the set bits of the bit array.

        The sparse dual of the packed representation: membership of a key is
        ``positions.issuperset(probe_positions(key, ...))``, which for the
        paper's 20 Kbit digests replaces an O(num_bits)-word big-int AND per
        probe with a few C-level set lookups (early-exiting on the first
        missing bit -- the overwhelmingly common case on a miss).
        """
        bits = self._bits
        out: Set[int] = set()
        if not bits:
            return out
        # Walk 64-bit words (one C-level shift each), then decompose each
        # non-zero word with small-int bit tricks -- O(words + set bits)
        # rather than a Python loop over every byte of the array.
        data = bits.to_bytes((bits.bit_length() + 7) // 8, "little")
        add = out.add
        for offset in range(0, len(data), 8):
            word = int.from_bytes(data[offset : offset + 8], "little")
            base = offset << 3
            while word:
                low = word & -word
                add(base + low.bit_length() - 1)
                word ^= low
        return out

    # -- state transfer -------------------------------------------------------

    @property
    def raw_bits(self) -> int:
        """The packed bit array as an int (state transfer between processes)."""
        return self._bits

    @classmethod
    def from_state(
        cls, num_bits: int, num_hashes: int, bits: int, count: int
    ) -> "BloomFilter":
        """Rebuild a filter from ``(raw_bits, approximate_count)``.

        The inverse of reading :attr:`raw_bits` / :attr:`approximate_count`:
        used to adopt filters built by shard-parallel workers, where only
        the two integers travel across the process boundary.
        """
        bloom = cls(num_bits=num_bits, num_hashes=num_hashes)
        bloom._bits = bits
        bloom._count = count
        return bloom

    @classmethod
    def from_columnar(
        cls, num_bits: int, num_hashes: int, row: bytes, count: int
    ) -> "BloomFilter":
        """Adopt a digest row of a :class:`~repro.data.columnar.DigestMatrix`.

        The row is the little-endian byte image of the packed bit array --
        by construction the OR of the same per-item probe masks ``update``
        would have ORed -- so the resulting filter is bit-identical to one
        built item by item.  ``count`` is the number of distinct items the
        row encodes.
        """
        return cls.from_state(num_bits, num_hashes, int.from_bytes(row, "little"), count)

    # -- introspection --------------------------------------------------------

    @property
    def approximate_count(self) -> int:
        """Number of ``add`` calls (duplicates counted once per call)."""
        return self._count

    @property
    def size_in_bytes(self) -> int:
        """Wire / storage size of the bit array (the cost-model quantity)."""
        return (self.num_bits + 7) // 8

    def fill_ratio(self) -> float:
        """Fraction of bits set to one."""
        return self._bits.bit_count() / self.num_bits

    def estimated_false_positive_rate(self) -> float:
        """Standard estimate ``(1 - e^{-kn/m})^k`` using the insert count."""
        if self._count == 0:
            return 0.0
        exponent = -self.num_hashes * self._count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self.num_bits == other.num_bits
            and self.num_hashes == other.num_hashes
            and self._bits == other._bits
        )

    def __repr__(self) -> str:
        return (
            f"BloomFilter(num_bits={self.num_bits}, num_hashes={self.num_hashes}, "
            f"inserted={self._count}, fill={self.fill_ratio():.3f})"
        )

    def copy(self) -> "BloomFilter":
        clone = BloomFilter(self.num_bits, self.num_hashes)
        clone._bits = self._bits  # ints are immutable: sharing is a deep copy
        clone._count = self._count
        return clone
