"""Bloom filter profile digests.

P3Q never ships a full profile before knowing it is worth shipping.  Each
node stores, for every neighbour in its personal network and random view, a
*digest* of that neighbour's profile: a Bloom filter over the set of items
the neighbour has tagged.  The digest answers "might this user have tagged an
item I also tagged?" which is the trigger for the heavier steps of the lazy
exchange.

The paper uses 20 Kbit filters for profiles of ~249 items on average, giving
a false-positive rate around 0.1%.  This implementation is a standard
partition-free Bloom filter with double hashing (Kirsch & Mitzenmacher), so
``k`` hash functions are derived from two base hashes.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Iterator, Tuple

#: Sizing used in the paper's cost analysis: 20 Kbit per digest.
PAPER_DIGEST_BITS = 20_000


def optimal_num_hashes(num_bits: int, expected_items: int) -> int:
    """The false-positive-minimizing number of hash functions ``k``.

    ``k = (m/n) ln 2`` rounded to the nearest integer and clamped to >= 1.
    """
    if num_bits <= 0:
        raise ValueError("num_bits must be positive")
    if expected_items <= 0:
        return 1
    k = round((num_bits / expected_items) * math.log(2))
    return max(1, int(k))


def optimal_num_bits(expected_items: int, false_positive_rate: float) -> int:
    """Bits needed for a target false-positive rate at ``expected_items``."""
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must be in (0, 1)")
    if expected_items <= 0:
        return 8
    bits = -expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)
    return max(8, int(math.ceil(bits)))


class BloomFilter:
    """A Bloom filter over integer (or otherwise hashable) keys.

    The filter guarantees *no false negatives*: every added key is reported
    as (possibly) present.  False positives occur with a probability that
    depends on the fill ratio; :meth:`estimated_false_positive_rate` reports
    the standard estimate.
    """

    __slots__ = ("num_bits", "num_hashes", "_bits", "_count")

    def __init__(self, num_bits: int = PAPER_DIGEST_BITS, num_hashes: int = 14) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self._count = 0

    # -- constructors ---------------------------------------------------------

    @classmethod
    def for_capacity(cls, expected_items: int, false_positive_rate: float = 0.001) -> "BloomFilter":
        """Size a filter for ``expected_items`` at the target FP rate."""
        bits = optimal_num_bits(expected_items, false_positive_rate)
        hashes = optimal_num_hashes(bits, expected_items)
        return cls(num_bits=bits, num_hashes=hashes)

    @classmethod
    def from_items(
        cls,
        items: Iterable[object],
        num_bits: int = PAPER_DIGEST_BITS,
        num_hashes: int = 14,
    ) -> "BloomFilter":
        """Build a filter containing every element of ``items``."""
        bloom = cls(num_bits=num_bits, num_hashes=num_hashes)
        for item in items:
            bloom.add(item)
        return bloom

    # -- hashing --------------------------------------------------------------

    def _base_hashes(self, key: object) -> Tuple[int, int]:
        data = repr(key).encode("utf-8")
        digest = hashlib.blake2b(data, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1  # make h2 odd -> full cycle
        return h1, h2

    def _positions(self, key: object) -> Iterator[int]:
        h1, h2 = self._base_hashes(key)
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    # -- core operations ------------------------------------------------------

    def add(self, key: object) -> None:
        """Insert ``key`` into the filter."""
        for pos in self._positions(key):
            self._bits[pos // 8] |= 1 << (pos % 8)
        self._count += 1

    def update(self, keys: Iterable[object]) -> None:
        for key in keys:
            self.add(key)

    def __contains__(self, key: object) -> bool:
        return all(self._bits[pos // 8] >> (pos % 8) & 1 for pos in self._positions(key))

    def might_contain(self, key: object) -> bool:
        """Alias of ``key in filter`` with the probabilistic semantics spelt out."""
        return key in self

    def intersects(self, keys: Iterable[object]) -> bool:
        """True if *any* of ``keys`` might be in the filter.

        This is the digest test of P3Q's lazy mode: a random-view neighbour is
        contacted for her full profile only if her digest contains at least one
        item the local user also tagged.
        """
        return any(key in self for key in keys)

    # -- introspection --------------------------------------------------------

    @property
    def approximate_count(self) -> int:
        """Number of ``add`` calls (duplicates counted once per call)."""
        return self._count

    @property
    def size_in_bytes(self) -> int:
        """Wire / storage size of the bit array (the cost-model quantity)."""
        return len(self._bits)

    def fill_ratio(self) -> float:
        """Fraction of bits set to one."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits

    def estimated_false_positive_rate(self) -> float:
        """Standard estimate ``(1 - e^{-kn/m})^k`` using the insert count."""
        if self._count == 0:
            return 0.0
        exponent = -self.num_hashes * self._count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self.num_bits == other.num_bits
            and self.num_hashes == other.num_hashes
            and self._bits == other._bits
        )

    def __repr__(self) -> str:
        return (
            f"BloomFilter(num_bits={self.num_bits}, num_hashes={self.num_hashes}, "
            f"inserted={self._count}, fill={self.fill_ratio():.3f})"
        )

    def copy(self) -> "BloomFilter":
        clone = BloomFilter(self.num_bits, self.num_hashes)
        clone._bits = bytearray(self._bits)
        clone._count = self._count
        return clone
