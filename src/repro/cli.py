"""``python -m repro``: the single front door to every runnable tool.

The repository grew five entry points -- the figure experiments, the
simulation fuzzer, the performance harness, the query-serving driver and
the asyncio service runtime.  This module unifies them as subcommands::

    python -m repro experiments --list
    python -m repro simtest --seeds 50
    python -m repro perf --quick
    python -m repro serving --workload mixed
    python -m repro service --demo

Each subcommand delegates to the tool's own ``main(argv)`` with the
remaining arguments, so every tool keeps its established flags;
:func:`add_common_options` is the one definition of the shared
``--seed`` / ``--workers`` / ``--transport`` trio the newer tools attach
to their parsers.  The legacy module invocations (``python -m
repro.simtest``, ``python -m repro.experiments.cli``, ``python -m
benchmarks.perf``, ``python -m repro.service``) keep working as thin
shims that raise a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple


def add_common_options(
    parser: argparse.ArgumentParser,
    *,
    seed: bool = True,
    seed_default: Optional[int] = 42,
    workers: bool = True,
    transport_choices: Optional[Sequence[str]] = None,
) -> argparse.ArgumentParser:
    """Attach the shared ``--seed`` / ``--workers`` / ``--transport`` options.

    One definition instead of five drifting copies: subcommand parsers call
    this with the pieces they honor (``workers=False`` for single-process
    tools, ``transport_choices`` naming the wire/transport flavours the
    tool accepts).
    """
    if seed:
        parser.add_argument(
            "--seed",
            type=int,
            default=seed_default,
            metavar="S",
            help="master random seed"
            + ("" if seed_default is None else f" (default: {seed_default})"),
        )
    if workers:
        parser.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="parallel worker processes (default: 1)",
        )
    if transport_choices is not None:
        parser.add_argument(
            "--transport",
            choices=list(transport_choices),
            default=list(transport_choices)[0],
            help=f"message transport (default: {list(transport_choices)[0]})",
        )
    return parser


# --------------------------------------------------------------- subcommands


def _run_experiments(argv: List[str]) -> int:
    from .experiments.cli import main

    return main(argv)


def _run_simtest(argv: List[str]) -> int:
    from .simtest.cli import main

    return main(argv)


def _run_perf(argv: List[str]) -> int:
    try:
        from benchmarks.perf.harness import main
    except ImportError:
        print(
            "the perf harness needs the repository root on the import path "
            "(run from the repo root, where benchmarks/ lives)",
            file=sys.stderr,
        )
        return 2
    return main(argv)


def _run_serving(argv: List[str]) -> int:
    from .serving.cli import main

    return main(argv)


def _run_service(argv: List[str]) -> int:
    from .service.cli import main

    return main(argv)


#: subcommand -> (one-line description, handler taking the remaining argv).
SUBCOMMANDS: Dict[str, Tuple[str, Callable[[List[str]], int]]] = {
    "experiments": (
        "regenerate the paper's tables and figures (repro.experiments)",
        _run_experiments,
    ),
    "simtest": (
        "deterministic simulation fuzzing with invariant checking (repro.simtest)",
        _run_simtest,
    ),
    "perf": (
        "performance-tracking benchmark harness (benchmarks.perf)",
        _run_perf,
    ),
    "serving": (
        "one query-serving run over a converged simulation (repro.serving)",
        _run_serving,
    ),
    "service": (
        "live asyncio deployment speaking serialized frames (repro.service)",
        _run_service,
    ),
}


def _usage() -> str:
    lines = [
        "usage: python -m repro <subcommand> [options]",
        "",
        "subcommands:",
    ]
    for name, (description, _handler) in SUBCOMMANDS.items():
        lines.append(f"  {name:<12} {description}")
    lines.append("")
    lines.append("run 'python -m repro <subcommand> --help' for that tool's options")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv:
        print(_usage(), file=sys.stderr)
        return 2
    if argv[0] in ("-h", "--help"):
        print(_usage())
        return 0
    name, rest = argv[0], argv[1:]
    entry = SUBCOMMANDS.get(name)
    if entry is None:
        print(f"unknown subcommand {name!r}\n\n{_usage()}", file=sys.stderr)
        return 2
    _description, handler = entry
    return handler(rest)


if __name__ == "__main__":  # pragma: no cover - exercised via repro.__main__
    sys.exit(main())
