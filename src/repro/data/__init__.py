"""Data substrate: tagging-trace model, synthetic generator, dynamics, queries."""

from .models import (
    ChangeDay,
    Dataset,
    DatasetStats,
    ProfileChange,
    TaggingAction,
    UserProfile,
)
from .interning import GLOBAL_INTERNER, ActionInterner, action_of, intern_action
from .synthetic import (
    SyntheticConfig,
    SyntheticTraceGenerator,
    generate_dataset,
    paper_scale_config,
)
from .dynamics import (
    ChurnEvent,
    DynamicsConfig,
    ProfileDynamicsGenerator,
    apply_change_day,
    massive_departure,
)
from .queries import Query, QueryWorkloadGenerator
from .columnar import ColumnarDataset, ColumnarStore, DigestMatrix
from .loader import (
    DatasetFormatError,
    load_dataset,
    load_or_generate_columnar,
    load_or_generate_synthetic,
    save_dataset,
    synthetic_cache_key,
)
from .importers import (
    ImportResult,
    TraceImportError,
    import_tagging_trace,
    iter_tagging_rows,
)

__all__ = [
    "ActionInterner",
    "GLOBAL_INTERNER",
    "action_of",
    "intern_action",
    "ChangeDay",
    "ChurnEvent",
    "ColumnarDataset",
    "ColumnarStore",
    "Dataset",
    "DatasetFormatError",
    "DatasetStats",
    "DigestMatrix",
    "DynamicsConfig",
    "ImportResult",
    "ProfileChange",
    "ProfileDynamicsGenerator",
    "Query",
    "QueryWorkloadGenerator",
    "SyntheticConfig",
    "SyntheticTraceGenerator",
    "TaggingAction",
    "TraceImportError",
    "UserProfile",
    "apply_change_day",
    "generate_dataset",
    "import_tagging_trace",
    "iter_tagging_rows",
    "load_dataset",
    "load_or_generate_columnar",
    "load_or_generate_synthetic",
    "massive_departure",
    "paper_scale_config",
    "save_dataset",
    "synthetic_cache_key",
]
