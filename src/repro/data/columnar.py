"""Columnar node state: flat arrays behind the object-level data model.

At N=1,000,000 the per-user Python objects of the setup pipeline -- one
action list, one :class:`~repro.data.models.UserProfile` with four index
containers, one 20 Kbit Bloom-filter integer -- dominate both memory and
setup time.  This module stores the same information *columnarly*:

* **Action columns.**  All tagging actions of all users live in two flat
  ``int32`` arrays (``items``, ``tags``) with a per-user ``offsets`` table,
  exactly the layout of the binary dataset disk cache
  (:mod:`repro.data.loader`) -- a cache hit IS a columnar load.  A third
  column pair (``item_offsets`` / ``item_values``) holds each user's
  *distinct* items in first-seen order: the content of her digest and the
  left-hand side of every digest probe.
* **Digest rows.**  :class:`DigestMatrix` stores every user's Bloom digest
  as a fixed-width little-endian byte row, optionally in one
  ``multiprocessing.shared_memory`` block so persistent shard workers map
  the digests once and see the parent's per-cycle row updates without any
  re-fork or pickling.  ``row_bits_int`` round-trips a row into the
  bit-packed integer of :class:`~repro.bloom.BloomFilter` -- the two
  representations are the same bits by construction (the row is the OR of
  the items' probe-mask bytes; the integer is the OR of the same masks).
* **Object API compatibility.**  :meth:`ColumnarDataset.profile`
  materializes a :class:`~repro.data.models.UserProfile` from the columns
  through ``UserProfile.from_columnar`` on first access -- same sets, same
  insertion order, same version counter as the object pipeline, pinned by
  the dataset fingerprint tests -- so everything downstream of a dataset
  keeps working unchanged at small N while large-N setup stays columnar
  until a profile is actually needed.

The store's contract is the disk cache's contract: each user's action list
is **distinct** (the generator emits ``list(set)``; object datasets iterate
a set), so the number of actions in a row equals the profile version that
:meth:`UserProfile.from_distinct_actions` would produce.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..bloom.bloom import probe_positions
from .models import Dataset, TaggingAction, UserProfile

#: Per-geometry caches of probe-mask *integers*: the OR of a key's probe
#: bits, identical to :meth:`BloomFilter._probe_mask` output.  Kept here
#: (not on a filter instance) because digest-row construction and the shard
#: workers' pair pricing probe the same item universe over and over.
_MASK_INTS: Dict[Tuple[int, int], Dict[int, int]] = {}
_MASK_INT_LIMIT = 1 << 20


def geometry_mask_cache(num_bits: int, num_hashes: int) -> Dict[int, int]:
    """The ``item -> probe-mask int`` cache of one geometry.

    Hot loops (shard-worker pricing, the probe micro-benchmark) hoist this
    dict once and hit it directly; :func:`mask_int` is the filling reader.
    """
    return _MASK_INTS.setdefault((num_bits, num_hashes), {})


def mask_int(item: int, num_bits: int, num_hashes: int) -> int:
    """The probe mask of ``item`` as a big int, memoized per geometry.

    Bit-identical to ``BloomFilter._probe_mask(item)``: the OR of the same
    :func:`~repro.bloom.bloom.probe_positions` sequence.
    """
    cache = _MASK_INTS.setdefault((num_bits, num_hashes), {})
    mask = cache.get(item)
    if mask is None:
        mask = 0
        for position in probe_positions(item, num_bits, num_hashes):
            mask |= 1 << position
        if len(cache) < _MASK_INT_LIMIT:
            cache[item] = mask
    return mask


class ColumnarStore:
    """Flat-array storage of every user's tagging actions.

    Rows are indexed 0..N-1 in the order users were appended (ascending user
    id on every construction path used by the pipeline); ``row_of`` maps an
    arbitrary user id back to its row.
    """

    __slots__ = (
        "uids",
        "offsets",
        "items",
        "tags",
        "item_offsets",
        "item_values",
        "versions",
        "_row_of",
        "_max_item",
    )

    def __init__(self) -> None:
        self.uids = array("q")
        self.offsets = array("q", [0])
        self.items = array("i")
        self.tags = array("i")
        self.item_offsets = array("q", [0])
        self.item_values = array("i")
        #: Per-row profile version (== the distinct-action count on the
        #: generation path; the live ``profile.version`` when built from an
        #: object dataset that already saw dynamics).
        self.versions = array("q")
        self._row_of: Optional[Dict[int, int]] = None
        self._max_item = -1

    # -- construction ---------------------------------------------------------

    def append_user(
        self,
        user_id: int,
        actions: Sequence[TaggingAction],
        version: Optional[int] = None,
    ) -> int:
        """Append one user's (distinct) action list; returns the row index."""
        row = len(self.uids)
        self.uids.append(user_id)
        items = self.items
        tags = self.tags
        item_values = self.item_values
        seen: set = set()
        seen_add = seen.add
        max_item = self._max_item
        for item, tag in actions:
            items.append(item)
            tags.append(tag)
            if item not in seen:
                seen_add(item)
                item_values.append(item)
                if item > max_item:
                    max_item = item
        self._max_item = max_item
        self.offsets.append(len(items))
        self.item_offsets.append(len(item_values))
        self.versions.append(len(actions) if version is None else version)
        if self._row_of is not None:
            self._row_of[user_id] = row
        elif user_id != row:
            # Ids stopped being dense 0..N-1: switch to explicit mapping.
            self._row_of = {uid: index for index, uid in enumerate(self.uids)}
        return row

    @classmethod
    def from_action_stream(
        cls, stream: Iterable[Tuple[int, Sequence[TaggingAction]]]
    ) -> "ColumnarStore":
        """Build a store from ``(user_id, distinct action list)`` records."""
        store = cls()
        for user_id, actions in stream:
            store.append_user(user_id, actions)
        return store

    @classmethod
    def from_cache_arrays(
        cls,
        uids: Sequence[int],
        counts: Sequence[int],
        items: Sequence[int],
        tags: Sequence[int],
    ) -> "ColumnarStore":
        """Adopt the four arrays of a binary trace-cache file directly.

        The cache layout is already columnar; this constructor only builds
        the offset tables and the distinct-item column -- no per-user list
        slicing, no tuple materialization.
        """
        store = cls()
        store.items = array("i", items) if not isinstance(items, array) else items
        store.tags = array("i", tags) if not isinstance(tags, array) else tags
        offsets = store.offsets
        item_values = store.item_values
        item_offsets = store.item_offsets
        versions = store.versions
        store_items = store.items
        max_item = -1
        position = 0
        for uid, count in zip(uids, counts):
            row = len(store.uids)
            store.uids.append(uid)
            end = position + count
            seen: set = set()
            seen_add = seen.add
            for index in range(position, end):
                item = store_items[index]
                if item not in seen:
                    seen_add(item)
                    item_values.append(item)
                    if item > max_item:
                        max_item = item
            position = end
            offsets.append(end)
            item_offsets.append(len(item_values))
            versions.append(count)
            if store._row_of is not None:
                store._row_of[uid] = row
            elif uid != row:
                store._row_of = {u: i for i, u in enumerate(store.uids)}
        store._max_item = max_item
        return store

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "ColumnarStore":
        """Snapshot an object dataset's current profiles into columns.

        Used to back the persistent worker pool when the simulation was
        built from an object dataset: row content and versions mirror the
        live profiles at snapshot time (later profile changes travel to the
        workers as per-cycle deltas, not through this store).
        """
        store = cls()
        for profile in dataset.profiles():
            store.append_user(
                profile.user_id, list(profile), version=profile.version
            )
        return store

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.uids)

    @property
    def num_actions(self) -> int:
        return len(self.items)

    @property
    def max_item(self) -> int:
        """Largest item id present (``-1`` when the store is empty)."""
        return self._max_item

    def row_of(self, user_id: int) -> Optional[int]:
        if self._row_of is not None:
            return self._row_of.get(user_id)
        return user_id if 0 <= user_id < len(self.uids) else None

    def user_ids(self) -> List[int]:
        return list(self.uids)

    def version_of_row(self, row: int) -> int:
        return self.versions[row]

    def actions_of_row(self, row: int) -> List[TaggingAction]:
        """The user's action list in stored (generation) order."""
        start, end = self.offsets[row], self.offsets[row + 1]
        return list(zip(self.items[start:end], self.tags[start:end]))

    def distinct_items_of_row(self, row: int) -> Sequence[int]:
        start, end = self.item_offsets[row], self.item_offsets[row + 1]
        return self.item_values[start:end]

    def iter_rows(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(row, user_id)`` in row order."""
        return enumerate(self.uids)


class DigestMatrix:
    """Fixed-width Bloom-digest byte rows for every user of a store.

    Row ``i`` holds the little-endian bytes of user ``i``'s digest bit
    array in the given geometry, plus a version slot (``-1`` = row not
    built).  With ``shared=True`` both live in one
    ``multiprocessing.shared_memory`` block: forked shard workers map the
    block once at startup and observe every parent-side row update --
    the per-cycle delta protocol never ships digest bytes.
    """

    def __init__(
        self,
        num_rows: int,
        num_bits: int,
        num_hashes: int,
        shared: bool = False,
    ) -> None:
        if num_rows < 0:
            raise ValueError("num_rows must be non-negative")
        if num_bits <= 0 or num_hashes <= 0:
            raise ValueError("digest geometry must be positive")
        self.num_rows = num_rows
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.row_bytes = (num_bits + 7) // 8
        payload = num_rows * self.row_bytes
        version_bytes = num_rows * 8
        self.shared = shared
        self._shm = None
        self._finalizer = None
        if shared:
            from multiprocessing import shared_memory
            import weakref

            self._shm = shared_memory.SharedMemory(
                create=True, size=max(1, payload + version_bytes)
            )
            buffer = self._shm.buf
        else:
            buffer = memoryview(bytearray(max(1, payload + version_bytes)))
        self._rows = buffer[:payload]
        self._versions = buffer[payload : payload + version_bytes].cast("q")
        if shared:
            # The creator owns the block: release the exported views, then
            # close+unlink, when the matrix dies (or close() is called).
            self._views = [self._rows, self._versions]
            self._finalizer = weakref.finalize(
                self, _release_shared_block, self._shm, self._views, os.getpid()
            )
        for row in range(num_rows):
            self._versions[row] = -1

    # -- row access -----------------------------------------------------------

    def row_version(self, row: int) -> int:
        return self._versions[row]

    def row_bytes_of(self, row: int) -> bytes:
        start = row * self.row_bytes
        return bytes(self._rows[start : start + self.row_bytes])

    def row_bits_int(self, row: int) -> int:
        """The row as the bit-packed integer a :class:`BloomFilter` holds."""
        start = row * self.row_bytes
        return int.from_bytes(self._rows[start : start + self.row_bytes], "little")

    def set_row_from_items(self, row: int, items: Iterable[int], version: int) -> None:
        """(Re)build one digest row from an item set: OR of the probe masks."""
        bits = 0
        num_bits, num_hashes = self.num_bits, self.num_hashes
        for item in items:
            bits |= mask_int(item, num_bits, num_hashes)
        start = row * self.row_bytes
        self._rows[start : start + self.row_bytes] = bits.to_bytes(
            self.row_bytes, "little"
        )
        self._versions[row] = version

    def built_count(self) -> int:
        return sum(1 for row in range(self.num_rows) if self._versions[row] >= 0)

    # -- bulk build -----------------------------------------------------------

    def build_rows(self, store: ColumnarStore, rows: Optional[Sequence[int]] = None) -> int:
        """Build digest rows for ``rows`` (default: all) from the store.

        Per row: OR the memoized probe masks of the row's distinct items and
        write the packed bytes straight into the (possibly shared) buffer.
        The big-int OR runs over 64-bit limbs in C with the row accumulator
        and the per-geometry mask cache staying cache-resident -- measured
        faster than a vectorized gather/``reduceat`` build, whose scratch
        matrix of gathered mask rows (``num_actions x row_bytes``) busts
        every cache level.  Returns the number of rows built.
        """
        if rows is None:
            rows = range(self.num_rows)
        num_bits, num_hashes = self.num_bits, self.num_hashes
        row_bytes = self.row_bytes
        mask_cache = geometry_mask_cache(num_bits, num_hashes)
        mask_cache_get = mask_cache.get
        buffer = self._rows
        versions = store.versions
        built = 0
        for row in rows:
            bits = 0
            for item in store.distinct_items_of_row(row):
                mask = mask_cache_get(item)
                if mask is None:
                    mask = mask_int(item, num_bits, num_hashes)
                bits |= mask
            start = row * row_bytes
            buffer[start : start + row_bytes] = bits.to_bytes(row_bytes, "little")
            self._versions[row] = versions[row]
            built += 1
        return built

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the shared block (creator side: also unlinks it)."""
        if self._shm is not None:
            self._rows = None
            self._versions = None
            self._finalizer()
            self._shm = None


def _release_shared_block(shm, views, owner_pid) -> None:
    # Forked shard workers inherit the finalizer together with the matrix;
    # only the creating process may tear the block down (a child running
    # this at exit would unlink the segment under the parent).
    if os.getpid() != owner_pid:
        return
    for view in views:
        try:
            view.release()
        except (BufferError, ValueError):  # pragma: no cover - defensive
            pass
    views.clear()
    try:
        shm.close()
    except (BufferError, OSError):  # pragma: no cover - defensive
        pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


class ColumnarDataset(Dataset):
    """A :class:`Dataset` backed by a :class:`ColumnarStore`.

    Profiles are materialized lazily through
    :meth:`UserProfile.from_columnar` -- bit-identical to the object
    pipeline's ``from_distinct_actions`` (same action order, same set
    layout, same version) -- so holding the dataset costs four flat arrays
    until a consumer actually touches a profile.
    """

    def __init__(self, store: ColumnarStore) -> None:
        super().__init__({})
        self.store = store

    # -- lazy materialization --------------------------------------------------

    def profile(self, user_id: int) -> UserProfile:
        profile = self._profiles.get(user_id)
        if profile is None:
            row = self.store.row_of(user_id)
            if row is None:
                raise KeyError(user_id)
            profile = UserProfile.from_columnar(self.store, user_id)
            self._profiles[user_id] = profile
        return profile

    def profiles(self) -> Iterator[UserProfile]:
        for user_id in self.user_ids:
            yield self.profile(user_id)

    @property
    def user_ids(self) -> List[int]:
        return sorted(self.store.uids)

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, user_id: int) -> bool:
        return self.store.row_of(user_id) is not None

    def copy(self) -> "ColumnarDataset":
        """A fresh lazy view over the same store.

        Profiles already materialized are carried over as copy-on-write
        snapshots (they may have diverged from the store through dynamics);
        everything else stays columnar until touched.
        """
        clone = ColumnarDataset(self.store)
        clone._profiles = {uid: p.copy() for uid, p in self._profiles.items()}
        return clone

    # -- whole-dataset views ---------------------------------------------------

    def _materialize_all(self) -> None:
        for _ in self.profiles():
            pass

    def items(self):
        self._materialize_all()
        return super().items()

    def tags(self):
        self._materialize_all()
        return super().tags()

    def item_popularity(self):
        self._materialize_all()
        return super().item_popularity()

    def tag_popularity(self):
        self._materialize_all()
        return super().tag_popularity()

    def stats(self):
        self._materialize_all()
        return super().stats()

    def filter_rare(self, min_item_users: int = 10, min_tag_users: int = 10):
        self._materialize_all()
        return super().filter_rare(min_item_users, min_tag_users)

    def sample_users(self, user_ids):
        self._materialize_all()
        return super().sample_users(user_ids)
