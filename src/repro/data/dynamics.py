"""Profile dynamics and churn traces.

Section 3.4 of the paper evaluates two forms of dynamism:

* **profile dynamism** -- users keep tagging new items.  The paper analyses
  the 2008 delicious history, picks the week with the largest variation
  (2008-11-11 to 2008-11-18) and replays one day of it: 1,540 users changed
  their profiles with on average 8 new tagging actions (max 268), and the
  changes caused 1,719 users to replace on average 2 neighbours (max 148)
  in their personal networks.
* **churn** -- a fraction ``p`` of users leaves the system simultaneously.

This module generates equivalent synthetic change traces against any
:class:`~repro.data.models.Dataset`, with the same long-tailed "few users
change a lot" shape, plus helpers for churn schedules.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .models import ChangeDay, Dataset, ProfileChange, TaggingAction


@dataclass(frozen=True)
class DynamicsConfig:
    """Parameters of the synthetic profile-change trace."""

    #: Fraction of users that change their profile on a given day.
    #: Paper: 1,540 / 10,000 = 15.4% on the busiest day of the busiest week.
    change_fraction: float = 0.154
    #: Mean number of new tagging actions per changing user (paper: 8).
    mean_new_actions: int = 8
    #: Maximum number of new actions one user may add in a day (paper: 268).
    max_new_actions: int = 268
    #: How many simulated days to generate.
    num_days: int = 1
    #: Probability that a new action reuses an item already in the profile
    #: (re-tagging) rather than a fresh item.
    retag_probability: float = 0.3
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 <= self.change_fraction <= 1.0:
            raise ValueError("change_fraction must be in [0, 1]")
        if self.mean_new_actions < 1:
            raise ValueError("mean_new_actions must be >= 1")
        if self.num_days < 1:
            raise ValueError("num_days must be >= 1")


def _new_action_count(rng: random.Random, mean: int, cap: int) -> int:
    """Heavy-tailed number of new actions, capped (paper max: 268)."""
    sigma = 1.0
    mu = math.log(max(mean, 1)) - sigma ** 2 / 2
    value = int(round(rng.lognormvariate(mu, sigma)))
    return max(1, min(cap, value))


class ProfileDynamicsGenerator:
    """Generate per-day batches of new tagging actions for a dataset."""

    def __init__(self, dataset: Dataset, config: DynamicsConfig | None = None) -> None:
        self.dataset = dataset
        self.config = config or DynamicsConfig()
        self._rng = random.Random(self.config.seed)
        # Precompute global item/tag pools once so new actions can introduce
        # items the user has never tagged (new interests).
        self._all_items: List[int] = sorted(dataset.items())
        self._all_tags: List[int] = sorted(dataset.tags())
        if not self._all_items or not self._all_tags:
            raise ValueError("dataset must contain at least one item and one tag")

    def generate(self) -> List[ChangeDay]:
        """Generate ``num_days`` days of profile changes."""
        return [self._generate_day(day) for day in range(self.config.num_days)]

    def generate_day(self, day: int = 0) -> ChangeDay:
        """Generate a single day of changes (the paper replays one day)."""
        return self._generate_day(day)

    # -- internals ------------------------------------------------------------

    def _generate_day(self, day: int) -> ChangeDay:
        rng = self._rng
        user_ids = self.dataset.user_ids
        num_changing = max(1, int(round(len(user_ids) * self.config.change_fraction)))
        changing = rng.sample(user_ids, k=min(num_changing, len(user_ids)))
        changes: List[ProfileChange] = []
        for user_id in changing:
            actions = self._new_actions_for(user_id)
            if actions:
                changes.append(ProfileChange(user_id=user_id, new_actions=tuple(actions)))
        return ChangeDay(day=day, changes=tuple(changes))

    def _new_actions_for(self, user_id: int) -> List[TaggingAction]:
        rng = self._rng
        profile = self.dataset.profile(user_id)
        existing = set(profile.actions)
        own_items = sorted(profile.items)
        count = _new_action_count(rng, self.config.mean_new_actions, self.config.max_new_actions)
        actions: List[TaggingAction] = []
        attempts = 0
        while len(actions) < count and attempts < count * 10:
            attempts += 1
            if own_items and rng.random() < self.config.retag_probability:
                item = rng.choice(own_items)
            else:
                item = rng.choice(self._all_items)
            tag = rng.choice(self._all_tags)
            action = (item, tag)
            if action in existing:
                continue
            existing.add(action)
            actions.append(action)
        return actions


def apply_change_day(dataset: Dataset, change_day: ChangeDay) -> Dict[int, int]:
    """Apply a day of changes in place; returns ``user_id -> #new actions``.

    The paper assumes all users change their profiles simultaneously at one
    instant of the simulation; this helper performs exactly that mutation on
    the live dataset (the profiles referenced by the nodes).
    """
    applied: Dict[int, int] = {}
    for change in change_day.changes:
        profile = dataset.profile(change.user_id)
        applied[change.user_id] = profile.add_all(change.new_actions)
    return applied


@dataclass(frozen=True)
class ChurnEvent:
    """A simultaneous departure of a set of users at a given cycle."""

    cycle: int
    departing_users: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.departing_users)


def massive_departure(
    dataset: Dataset,
    fraction: float,
    cycle: int = 0,
    seed: int = 11,
    protect: Sequence[int] = (),
) -> ChurnEvent:
    """Pick ``fraction`` of users (uniformly at random) to leave at ``cycle``.

    ``protect`` lists users that must stay online (e.g. the queriers under
    observation -- the paper measures the recall *obtained by* queriers, so a
    departed querier would be meaningless).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = random.Random(seed)
    protected = set(protect)
    candidates = [uid for uid in dataset.user_ids if uid not in protected]
    count = int(round(fraction * len(dataset.user_ids)))
    count = min(count, len(candidates))
    departing = tuple(sorted(rng.sample(candidates, k=count)))
    return ChurnEvent(cycle=cycle, departing_users=departing)
