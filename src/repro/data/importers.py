"""Importers for external tagging traces.

The paper's evaluation runs on a crawl of delicious.  Such crawls are
usually distributed as delimited text with one tagging action per line
(``user <sep> item <sep> tag``, e.g. the DAI-Labor delicious dumps or the
tagging-data releases accompanying later papers).  This module converts that
format into a :class:`~repro.data.models.Dataset`, applying the same
cleaning the paper describes (keep items/tags used by at least ``min_users``
distinct users, optionally sample a fixed number of users), so that anyone
holding a real trace can run every experiment at paper scale.

Identifiers in the input may be arbitrary strings; they are mapped to dense
integers and the mapping is returned for traceability.
"""

from __future__ import annotations

import csv
import gzip
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from .models import Dataset, UserProfile


@dataclass
class ImportResult:
    """A converted dataset plus the string-to-integer identifier mappings."""

    dataset: Dataset
    user_ids: Dict[str, int] = field(default_factory=dict)
    item_ids: Dict[str, int] = field(default_factory=dict)
    tag_ids: Dict[str, int] = field(default_factory=dict)

    @property
    def num_actions(self) -> int:
        return self.dataset.stats().num_actions


class TraceImportError(ValueError):
    """Raised when an input file cannot be parsed as a tagging trace."""


def _open_text(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8", errors="replace")
    return open(path, "r", encoding="utf-8", errors="replace")


def iter_tagging_rows(
    path: Union[str, Path],
    delimiter: str = "\t",
    user_column: int = 0,
    item_column: int = 1,
    tag_column: int = 2,
    skip_header: bool = False,
) -> Iterator[Tuple[str, str, str]]:
    """Yield ``(user, item, tag)`` string triples from a delimited file."""
    path = Path(path)
    max_column = max(user_column, item_column, tag_column)
    with _open_text(path) as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for line_number, row in enumerate(reader):
            if skip_header and line_number == 0:
                continue
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) <= max_column:
                raise TraceImportError(
                    f"{path}:{line_number + 1}: expected at least {max_column + 1} "
                    f"columns, got {len(row)}"
                )
            yield (
                row[user_column].strip(),
                row[item_column].strip(),
                row[tag_column].strip(),
            )


def import_tagging_trace(
    path: Union[str, Path],
    delimiter: str = "\t",
    user_column: int = 0,
    item_column: int = 1,
    tag_column: int = 2,
    skip_header: bool = False,
    min_users_per_item: int = 10,
    min_users_per_tag: int = 10,
    sample_users: Optional[int] = None,
    seed: int = 0,
) -> ImportResult:
    """Convert a ``user/item/tag`` text trace into a cleaned :class:`Dataset`.

    The cleaning mirrors Section 3.1.1 of the paper: optionally sample
    ``sample_users`` users uniformly at random (the paper keeps 10,000 of
    13,521), then rebuild profiles from the items and tags used by at least
    ``min_users_per_item`` / ``min_users_per_tag`` distinct users.
    """
    user_ids: Dict[str, int] = {}
    item_ids: Dict[str, int] = {}
    tag_ids: Dict[str, int] = {}
    actions: Dict[int, set] = {}

    def intern(table: Dict[str, int], key: str) -> int:
        if key not in table:
            table[key] = len(table)
        return table[key]

    for user, item, tag in iter_tagging_rows(
        path,
        delimiter=delimiter,
        user_column=user_column,
        item_column=item_column,
        tag_column=tag_column,
        skip_header=skip_header,
    ):
        if not user or not item or not tag:
            continue
        uid = intern(user_ids, user)
        iid = intern(item_ids, item)
        tid = intern(tag_ids, tag)
        actions.setdefault(uid, set()).add((iid, tid))

    if not actions:
        raise TraceImportError(f"{path}: no tagging actions found")

    dataset = Dataset({uid: UserProfile(uid, acts) for uid, acts in actions.items()})

    if sample_users is not None and sample_users < len(dataset):
        rng = random.Random(seed)
        kept = rng.sample(dataset.user_ids, k=sample_users)
        dataset = dataset.sample_users(kept)

    if min_users_per_item > 1 or min_users_per_tag > 1:
        dataset = dataset.filter_rare(
            min_item_users=min_users_per_item, min_tag_users=min_users_per_tag
        )

    return ImportResult(
        dataset=dataset, user_ids=user_ids, item_ids=item_ids, tag_ids=tag_ids
    )
