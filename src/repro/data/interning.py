"""Global interning of tagging actions to dense integer ids.

Every similarity computation in P3Q is a set intersection over tagging
actions, i.e. ``(item, tag)`` pairs.  Hashing a tuple costs a tuple-hash per
probe and every profile comparison used to rebuild tuple sets from scratch.
Interning maps each distinct action to a *small dense int* exactly once, so

* profiles can maintain a parallel ``frozenset[int]`` of action ids
  incrementally (one dict hit per ``add``);
* similarity scores become C-level intersections of int sets
  (:mod:`repro.similarity.metrics`);
* the offline k-NN index buckets users by action id instead of tuple
  (:mod:`repro.similarity.knn`).

The interner is a process-wide singleton: ids are only comparable when they
come from the same table, and P3Q's whole point is comparing profiles across
users.  Ids are stable for the lifetime of the process; the table grows with
the number of *distinct* actions in all datasets touched, which is bounded by
the item x tag universe of the traces.  See ``docs/ARCHITECTURE.md`` for how
interning threads through the gossip and query layers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: A tagging action, duplicated from ``models`` to avoid a circular import.
_Action = Tuple[int, int]


class ActionInterner:
    """A bijective ``(item, tag) <-> dense int`` table."""

    __slots__ = ("_ids", "_actions")

    def __init__(self) -> None:
        self._ids: Dict[_Action, int] = {}
        self._actions: List[_Action] = []

    def intern(self, item: int, tag: int) -> int:
        """The id of action ``(item, tag)``, allocating it on first sight."""
        action = (item, tag)
        action_id = self._ids.get(action)
        if action_id is None:
            action_id = len(self._actions)
            self._ids[action] = action_id
            self._actions.append(action)
        return action_id

    def action_of(self, action_id: int) -> _Action:
        """The ``(item, tag)`` pair an id stands for."""
        return self._actions[action_id]

    def id_of(self, item: int, tag: int) -> int | None:
        """The id of an action if it was ever interned, else ``None``."""
        return self._ids.get((item, tag))

    def __len__(self) -> int:
        return len(self._actions)


#: The process-wide interner.  All :class:`repro.data.models.UserProfile`
#: instances share it; never swap it out while profiles are alive, their
#: cached ids would dangle.
GLOBAL_INTERNER = ActionInterner()

intern_action = GLOBAL_INTERNER.intern
action_of = GLOBAL_INTERNER.action_of
