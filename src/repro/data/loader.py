"""Dataset persistence.

Datasets (synthetic or externally converted traces) are stored as JSON with
one record per user:

.. code-block:: json

    {
      "format": "repro-tagging-trace",
      "version": 1,
      "users": {"0": [[item, tag], ...], "1": [...]}
    }

JSON keeps the trace human-inspectable and diff-able; for the scales this
repository targets (10^4 users, 10^7 actions at most) it is also fast enough.

Next to the portable JSON format this module hosts the **synthetic dataset
disk cache** used by the setup pipeline: :func:`load_or_generate_synthetic`
keys a binary trace file on the SHA-256 of the
:class:`~repro.data.synthetic.SyntheticConfig` *and* the generator
fingerprint, so a benchmark or CI job pays the O(N) generation cost once
per spec and every later run streams the identical trace back in a few
C-level array reads.  The cached file preserves the exact insertion order
of every action list, and profiles are rebuilt through
:meth:`~repro.data.models.UserProfile.from_distinct_actions` -- a cache hit
is bit-identical to regeneration, down to set iteration order.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
import os
import tempfile
from array import array
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .models import Dataset, TaggingAction, UserProfile
from .synthetic import (
    GENERATOR_FINGERPRINT,
    SyntheticConfig,
    SyntheticTraceGenerator,
)

FORMAT_NAME = "repro-tagging-trace"
FORMAT_VERSION = 1

#: Binary cache format written by :func:`save_trace_cache`.
CACHE_FORMAT = "repro-trace-cache"
CACHE_VERSION = 1


class DatasetFormatError(ValueError):
    """Raised when a trace file does not match the expected format."""


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> None:
    """Serialize a dataset to ``path`` (``.json`` or ``.json.gz``)."""
    path = Path(path)
    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "users": {
            str(profile.user_id): sorted(list(action) for action in profile.actions)
            for profile in dataset.profiles()
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with _open(path, "w") as handle:
        json.dump(payload, handle)


def load_dataset(path: Union[str, Path]) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    with _open(path, "r") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("format") != FORMAT_NAME:
        raise DatasetFormatError(f"{path} is not a {FORMAT_NAME} file")
    if payload.get("version") != FORMAT_VERSION:
        raise DatasetFormatError(
            f"unsupported trace version {payload.get('version')!r} in {path}"
        )
    users = payload.get("users")
    if not isinstance(users, dict):
        raise DatasetFormatError(f"malformed 'users' section in {path}")
    profiles: Dict[int, UserProfile] = {}
    for key, raw_actions in users.items():
        try:
            user_id = int(key)
        except (TypeError, ValueError) as exc:
            raise DatasetFormatError(f"non-integer user id {key!r} in {path}") from exc
        actions: List[TaggingAction] = []
        for entry in raw_actions:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise DatasetFormatError(f"malformed action {entry!r} for user {key} in {path}")
            actions.append((int(entry[0]), int(entry[1])))
        profiles[user_id] = UserProfile(user_id, actions)
    return Dataset(profiles)


# ----------------------------------------------------- synthetic dataset cache


def synthetic_cache_key(config: SyntheticConfig) -> str:
    """Stable content key of the trace a config generates.

    SHA-256 over every config field plus the generator fingerprint: any
    change to either produces a different key, so stale cache files are
    simply never *looked up* (and can be garbage-collected by age).
    """
    payload = {
        "fingerprint": GENERATOR_FINGERPRINT,
        "config": dataclasses.asdict(config),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()


def synthetic_cache_path(config: SyntheticConfig, cache_dir: Union[str, Path]) -> Path:
    """Where the cached trace of ``config`` lives under ``cache_dir``."""
    return Path(cache_dir) / f"{synthetic_cache_key(config)}.trace"


def save_trace_cache(
    records: Iterable[Tuple[int, List[TaggingAction]]],
    key: str,
    path: Union[str, Path],
) -> None:
    """Write ``(user_id, actions)`` records as a flat binary trace.

    Layout: one JSON header line, then four little-endian ``int32`` arrays
    (user ids, per-user action counts, items, tags).  ``records`` must carry
    the action lists in the exact order the generator handed them to
    :meth:`UserProfile.from_distinct_actions`: replaying the stored lists
    through the same constructor is what makes a cache load reproduce the
    generated profiles bit for bit, down to set layout.
    """
    path = Path(path)
    uids = array("i")
    counts = array("i")
    items = array("i")
    tags = array("i")
    for user_id, actions in records:
        uids.append(user_id)
        counts.append(len(actions))
        for item, tag in actions:
            items.append(item)
            tags.append(tag)
    header = {
        "format": CACHE_FORMAT,
        "version": CACHE_VERSION,
        "key": key,
        "num_users": len(uids),
        "num_actions": len(items),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    # Writer-private temp name: two jobs missing the cache for the same key
    # concurrently must not share a temp inode, or one's rename could
    # publish the other's half-written file.
    fd, tmp_name = tempfile.mkstemp(prefix=path.name + ".", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(json.dumps(header, sort_keys=True).encode("utf-8") + b"\n")
            for blob in (uids, counts, items, tags):
                handle.write(blob.tobytes())
        os.replace(tmp_name, path)  # atomic publish
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_trace_cache(path: Union[str, Path], expected_key: Optional[str] = None) -> Dataset:
    """Load a binary trace written by :func:`save_trace_cache`."""
    path = Path(path)
    with open(path, "rb") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise DatasetFormatError(f"{path}: unreadable cache header") from exc
        if header.get("format") != CACHE_FORMAT or header.get("version") != CACHE_VERSION:
            raise DatasetFormatError(f"{path} is not a {CACHE_FORMAT} v{CACHE_VERSION} file")
        if expected_key is not None and header.get("key") != expected_key:
            raise DatasetFormatError(f"{path}: cache key mismatch")
        num_users = int(header["num_users"])
        num_actions = int(header["num_actions"])
        uids = array("i")
        counts = array("i")
        items = array("i")
        tags = array("i")
        uids.frombytes(handle.read(4 * num_users))
        counts.frombytes(handle.read(4 * num_users))
        items.frombytes(handle.read(4 * num_actions))
        tags.frombytes(handle.read(4 * num_actions))
    if (
        len(uids) != num_users
        or len(counts) != num_users
        or len(items) != num_actions
        or len(tags) != num_actions
    ):
        raise DatasetFormatError(f"{path}: truncated cache file")
    pairs = list(zip(items, tags))
    profiles: Dict[int, UserProfile] = {}
    offset = 0
    for uid, count in zip(uids, counts):
        profiles[uid] = UserProfile.from_distinct_actions(uid, pairs[offset:offset + count])
        offset += count
    if offset != num_actions:
        raise DatasetFormatError(f"{path}: action counts disagree with payload")
    return Dataset(profiles)


def _read_cache_arrays(
    path: Path, expected_key: Optional[str] = None
) -> Tuple[array, array, array, array]:
    """The four raw arrays of a binary trace cache (uids, counts, items, tags)."""
    path = Path(path)
    with open(path, "rb") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise DatasetFormatError(f"{path}: unreadable cache header") from exc
        if header.get("format") != CACHE_FORMAT or header.get("version") != CACHE_VERSION:
            raise DatasetFormatError(f"{path} is not a {CACHE_FORMAT} v{CACHE_VERSION} file")
        if expected_key is not None and header.get("key") != expected_key:
            raise DatasetFormatError(f"{path}: cache key mismatch")
        num_users = int(header["num_users"])
        num_actions = int(header["num_actions"])
        uids = array("i")
        counts = array("i")
        items = array("i")
        tags = array("i")
        uids.frombytes(handle.read(4 * num_users))
        counts.frombytes(handle.read(4 * num_users))
        items.frombytes(handle.read(4 * num_actions))
        tags.frombytes(handle.read(4 * num_actions))
    if (
        len(uids) != num_users
        or len(counts) != num_users
        or len(items) != num_actions
        or len(tags) != num_actions
    ):
        raise DatasetFormatError(f"{path}: truncated cache file")
    if sum(counts) != num_actions:
        raise DatasetFormatError(f"{path}: action counts disagree with payload")
    return uids, counts, items, tags


def load_or_generate_columnar(
    config: SyntheticConfig,
    cache_dir: Optional[Union[str, Path]] = None,
    refresh: bool = False,
):
    """Columnar twin of :func:`load_or_generate_synthetic`.

    Returns ``(ColumnarDataset, status)``.  The trace streams straight into
    a :class:`~repro.data.columnar.ColumnarStore` -- no per-user action
    lists or profile objects are built at load time -- and a cache hit
    adopts the cache file's arrays directly (the binary cache layout IS the
    columnar layout).  Materializing any profile of the returned dataset
    reproduces the object pipeline's profile bit for bit, so the two load
    paths have equal dataset fingerprints (pinned by tests).
    """
    from .columnar import ColumnarDataset, ColumnarStore

    if cache_dir is None:
        generator = SyntheticTraceGenerator(config)
        store = ColumnarStore.from_action_stream(generator.iter_user_actions())
        return ColumnarDataset(store), "off"
    key = synthetic_cache_key(config)
    path = Path(cache_dir) / f"{key}.trace"
    if not refresh and path.exists():
        try:
            store = ColumnarStore.from_cache_arrays(*_read_cache_arrays(path, key))
            return ColumnarDataset(store), "hit"
        except (OSError, DatasetFormatError, ValueError):
            pass  # fall through to regeneration
    generator = SyntheticTraceGenerator(config)
    store = ColumnarStore.from_action_stream(generator.iter_user_actions())
    try:
        _save_store_cache(store, key, path)
    except OSError:
        pass  # read-only cache dir: generation still succeeded
    return ColumnarDataset(store), "miss"


def _save_store_cache(store, key: str, path: Union[str, Path]) -> None:
    """Write a columnar store as a binary trace cache (same file format).

    Byte-identical to :func:`save_trace_cache` over the equivalent
    ``(user_id, actions)`` records: the store's flat columns are exactly
    the cache arrays.
    """
    path = Path(path)
    uids = array("i", store.uids)
    counts = array(
        "i",
        (
            store.offsets[row + 1] - store.offsets[row]
            for row in range(len(store))
        ),
    )
    header = {
        "format": CACHE_FORMAT,
        "version": CACHE_VERSION,
        "key": key,
        "num_users": len(uids),
        "num_actions": store.num_actions,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(prefix=path.name + ".", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(json.dumps(header, sort_keys=True).encode("utf-8") + b"\n")
            for blob in (uids, counts, store.items, store.tags):
                handle.write(blob.tobytes())
        os.replace(tmp_name, path)  # atomic publish
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_or_generate_synthetic(
    config: SyntheticConfig,
    cache_dir: Optional[Union[str, Path]] = None,
    refresh: bool = False,
) -> Tuple[Dataset, str]:
    """The dataset of ``config``, served from the disk cache when possible.

    Returns ``(dataset, status)`` with status ``"off"`` (no cache dir),
    ``"hit"`` (loaded from disk) or ``"miss"`` (generated, then written back
    for the next run).  A corrupt or mismatched cache file falls back to
    generation -- the cache can accelerate setup, never change it.
    """
    if cache_dir is None:
        return SyntheticTraceGenerator(config).generate(), "off"
    key = synthetic_cache_key(config)
    path = Path(cache_dir) / f"{key}.trace"
    if not refresh and path.exists():
        try:
            return load_trace_cache(path, expected_key=key), "hit"
        except (OSError, DatasetFormatError, ValueError):
            pass  # fall through to regeneration
    # One streaming pass builds the profiles AND captures the generation-order
    # action lists the cache file must preserve.
    records: List[Tuple[int, List[TaggingAction]]] = []
    profiles: Dict[int, UserProfile] = {}
    for user_id, actions in SyntheticTraceGenerator(config).iter_user_actions():
        records.append((user_id, actions))
        profiles[user_id] = UserProfile.from_distinct_actions(user_id, actions)
    dataset = Dataset(profiles)
    try:
        save_trace_cache(records, key, path)
    except OSError:
        pass  # read-only cache dir: generation still succeeded
    return dataset, "miss"
