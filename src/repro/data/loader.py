"""Dataset persistence.

Datasets (synthetic or externally converted traces) are stored as JSON with
one record per user:

.. code-block:: json

    {
      "format": "repro-tagging-trace",
      "version": 1,
      "users": {"0": [[item, tag], ...], "1": [...]}
    }

JSON keeps the trace human-inspectable and diff-able; for the scales this
repository targets (10^4 users, 10^7 actions at most) it is also fast enough.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, List, Union

from .models import Dataset, TaggingAction, UserProfile

FORMAT_NAME = "repro-tagging-trace"
FORMAT_VERSION = 1


class DatasetFormatError(ValueError):
    """Raised when a trace file does not match the expected format."""


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> None:
    """Serialize a dataset to ``path`` (``.json`` or ``.json.gz``)."""
    path = Path(path)
    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "users": {
            str(profile.user_id): sorted(list(action) for action in profile.actions)
            for profile in dataset.profiles()
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with _open(path, "w") as handle:
        json.dump(payload, handle)


def load_dataset(path: Union[str, Path]) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    with _open(path, "r") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("format") != FORMAT_NAME:
        raise DatasetFormatError(f"{path} is not a {FORMAT_NAME} file")
    if payload.get("version") != FORMAT_VERSION:
        raise DatasetFormatError(
            f"unsupported trace version {payload.get('version')!r} in {path}"
        )
    users = payload.get("users")
    if not isinstance(users, dict):
        raise DatasetFormatError(f"malformed 'users' section in {path}")
    profiles: Dict[int, UserProfile] = {}
    for key, raw_actions in users.items():
        try:
            user_id = int(key)
        except (TypeError, ValueError) as exc:
            raise DatasetFormatError(f"non-integer user id {key!r} in {path}") from exc
        actions: List[TaggingAction] = []
        for entry in raw_actions:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise DatasetFormatError(f"malformed action {entry!r} for user {key} in {path}")
            actions.append((int(entry[0]), int(entry[1])))
        profiles[user_id] = UserProfile(user_id, actions)
    return Dataset(profiles)
