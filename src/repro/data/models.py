"""Core data model for collaborative tagging systems.

The information space of the paper is a triple (U, I, T): users, items and
tags.  The atomic fact is a *tagging action* ``Tagged_u(i, t)`` -- user ``u``
annotated item ``i`` with tag ``t``.  A user's *profile* is the set of her
tagging actions, and all similarity / relevance computations in P3Q are
defined on these sets.

Users, items and tags are identified by small integers.  Keeping identifiers
numeric keeps profiles hashable and cheap to intersect, and matches the
paper's cost model (4-byte user ids, 16-byte hashed items / tags).

Profiles are *interned*: next to the raw ``(item, tag)`` tuple set each
profile incrementally maintains a parallel set of dense integer action ids
(:mod:`repro.data.interning`) plus per-version cached frozen views.  The
similarity layer intersects the id sets instead of rebuilding tuple sets per
comparison -- see ``docs/ARCHITECTURE.md`` for the full design and its
invariants.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple

from .interning import intern_action

#: A tagging action is the pair (item, tag).  The user is implied by the
#: profile that contains the action.
TaggingAction = Tuple[int, int]

_EMPTY_FROZENSET: FrozenSet[int] = frozenset()

#: Per-profile-version cap on the whole-reply memos of
#: :meth:`UserProfile.actions_for_items` / ``action_ids_for_items``.  The
#: memo exists for *repeat* requests (popular subjects advertised to many
#: receivers); past the cap, one-shot request sets are computed without
#: being remembered, bounding the memo's memory at large N.
_REPLY_MEMO_LIMIT = 512


class UserProfile:
    """The set of tagging actions of a single user.

    A profile supports the three views P3Q needs:

    * the raw set of ``(item, tag)`` actions (similarity scores are
      intersection sizes over this set);
    * the set of distinct items (this is what the Bloom-filter digest
      encodes);
    * an item -> tags index (used to answer queries and to transfer only the
      tags of *common* items during the lazy 3-step exchange).

    All indexes -- including the interned action-id set, a tag -> items index
    for query scoring, and the frozen views handed out by the read-access
    properties -- are maintained incrementally on ``add`` or cached per
    profile version, so the hot paths (similarity scoring, digest building,
    query evaluation) never rebuild them per call.
    """

    __slots__ = (
        "user_id",
        "_actions",
        "_action_ids",
        "_item_tags",
        "_tag_items",
        "_version",
        "_cache",
        "_shared",
    )

    def __init__(self, user_id: int, actions: Iterable[TaggingAction] = ()) -> None:
        self.user_id = user_id
        self._actions: Set[TaggingAction] = set()
        self._action_ids: Set[int] = set()
        self._item_tags: Dict[int, Set[int]] = defaultdict(set)
        self._tag_items: Dict[int, Set[int]] = defaultdict(set)
        self._version = 0
        #: Per-version cache of frozen views; cleared whenever the stored
        #: version key no longer matches :attr:`version`.
        self._cache: Dict[object, object] = {"version": -1}
        #: True while this profile's index containers are shared with a
        #: copy-on-write snapshot; any mutation materializes private ones.
        self._shared = False
        for item, tag in actions:
            self.add(item, tag)

    # -- mutation -----------------------------------------------------------

    def add(self, item: int, tag: int) -> bool:
        """Record that this user tagged ``item`` with ``tag``.

        Returns ``True`` if the action is new, ``False`` if it was already in
        the profile.  Every new action bumps the profile version so that
        replicas (stored copies on other nodes) can detect staleness.
        """
        action = (item, tag)
        if action in self._actions:
            return False
        if self._shared:
            self._materialize()
        self._actions.add(action)
        self._action_ids.add(intern_action(item, tag))
        self._item_tags[item].add(tag)
        self._tag_items[tag].add(item)
        self._version += 1
        return True

    def add_all(self, actions: Iterable[TaggingAction]) -> int:
        """Add many actions; returns how many were actually new."""
        return sum(1 for item, tag in actions if self.add(item, tag))

    @classmethod
    def from_distinct_actions(
        cls, user_id: int, actions: Sequence[TaggingAction]
    ) -> "UserProfile":
        """Build a profile from an action list in one direct pass.

        State-identical to ``UserProfile(user_id, actions)`` -- same sets
        with the same insertion order, same version counter (the number of
        distinct actions) -- but every index is constructed exactly once at
        C speed instead of through per-action ``add`` calls.  This is the
        bulk-load path of the setup pipeline (synthetic generation and the
        dataset disk cache); duplicate entries in ``actions`` are tolerated
        and counted once, exactly as ``add`` would.
        """
        profile = cls.__new__(cls)
        profile.user_id = user_id
        action_set = set(actions)
        profile._actions = action_set
        profile._action_ids = {intern_action(item, tag) for item, tag in actions}
        item_tags: Dict[int, Set[int]] = defaultdict(set)
        tag_items: Dict[int, Set[int]] = defaultdict(set)
        for item, tag in actions:
            item_tags[item].add(tag)
            tag_items[tag].add(item)
        profile._item_tags = item_tags
        profile._tag_items = tag_items
        profile._version = len(action_set)
        profile._cache = {"version": -1}
        profile._shared = False
        return profile

    @classmethod
    def from_state(
        cls, user_id: int, actions: Iterable[TaggingAction], version: int
    ) -> "UserProfile":
        """Rebuild a profile from transferred state: actions + version.

        The wire codecs ship a profile as its action set plus its *live*
        version counter -- which counts every mutation since birth, not
        just the actions currently present, and replica-freshness tracking
        needs it intact across a codec round-trip.  This is the one
        sanctioned way to restore a foreign version counter; everything
        else about the profile matches :meth:`from_distinct_actions`.
        """
        if version < 0:
            raise ValueError(f"profile version must be non-negative, got {version!r}")
        profile = cls.from_distinct_actions(user_id, list(actions))
        profile._version = version
        return profile

    @classmethod
    def from_columnar(cls, store, user_id: int) -> "UserProfile":
        """Materialize a profile from a :class:`~repro.data.columnar.ColumnarStore` row.

        State-identical to feeding the row's action list (stored in the
        exact order the generator emitted it) through
        :meth:`from_distinct_actions`: same sets with the same insertion
        order, same version.  The columnar pipeline keeps users as flat
        array rows until a consumer needs the object API; this is the
        crossing point.
        """
        row = store.row_of(user_id)
        if row is None:
            raise KeyError(f"user {user_id} not in columnar store")
        profile = cls.from_distinct_actions(user_id, store.actions_of_row(row))
        profile._version = store.versions[row]
        return profile

    def _materialize(self) -> None:
        """Replace shared index containers with private copies (COW write).

        Every holder of the shared containers checks ``_shared`` before its
        own first mutation, so it never observes this writer's changes; the
        other holders keep sharing the (now frozen-in-practice) originals --
        including the warm view cache, which the writer leaves behind for a
        private one (its version is about to diverge).
        """
        self._actions = set(self._actions)
        self._action_ids = set(self._action_ids)
        self._item_tags = defaultdict(set, {i: set(t) for i, t in self._item_tags.items()})
        self._tag_items = defaultdict(set, {t: set(i) for t, i in self._tag_items.items()})
        self._cache = {"version": -1}
        self._shared = False

    # -- read access --------------------------------------------------------

    def _frozen(self, key: object, source: Iterable) -> FrozenSet:
        """A frozen view of ``source``, cached until the next profile change."""
        cache = self._cache
        if cache["version"] != self._version:
            cache.clear()
            cache["version"] = self._version
        value = cache.get(key)
        if value is None:
            value = cache[key] = frozenset(source)
        return value  # type: ignore[return-value]

    @property
    def version(self) -> int:
        """Monotonic counter incremented on every profile change."""
        return self._version

    @property
    def actions(self) -> FrozenSet[TaggingAction]:
        """The (immutable view of the) set of tagging actions."""
        return self._frozen("actions", self._actions)

    @property
    def action_ids(self) -> FrozenSet[int]:
        """Interned action ids (see :mod:`repro.data.interning`).

        ``a.action_ids & b.action_ids`` has the same cardinality as the
        intersection of the tuple-action sets; the similarity metrics score
        on this view.
        """
        return self._frozen("action_ids", self._action_ids)

    @property
    def items(self) -> FrozenSet[int]:
        """Distinct items this user has tagged (content of the digest)."""
        return self._frozen("items", self._item_tags)

    def tags_for(self, item: int) -> FrozenSet[int]:
        """Tags this user attached to ``item`` (empty if never tagged)."""
        return frozenset(self._item_tags.get(item, ()))

    def items_for_tag(self, tag: int) -> FrozenSet[int]:
        """Items this user annotated with ``tag`` (empty if never used).

        Query scoring iterates the (few) query tags and walks this index,
        instead of scanning every action of the profile.  Absent tags share
        one empty frozenset rather than caching an entry per queried tag --
        long-lived replicas would otherwise grow with the query-tag universe.
        """
        items = self._tag_items.get(tag)
        if not items:
            return _EMPTY_FROZENSET
        return self._frozen(("tag", tag), items)

    def actions_for_items(self, items: Iterable[int]) -> AbstractSet[TaggingAction]:
        """Tagging actions restricted to a set of items.

        This is the payload of step 2 of the lazy exchange: only the actions
        on *common* items are shipped so the peer can compute the exact
        similarity score without receiving the whole profile.  The returned
        set must be treated as immutable: frozenset-typed requests are
        served a shared cached frozenset (see below), other request types a
        fresh set.

        Two levels of version-keyed caching serve the hot path:

        * per-item ``(item, tag)`` tuples -- the same popular items are
          requested over and over by different exchange partners, and a hit
          turns the inner loop into one C-level set update;
        * whole replies keyed by the request's frozenset -- the digest
          cache hands every exchange of the same (receiver, subject) pair
          at the same versions the *same* common-items frozenset, so a
          repeat request returns one shared frozen reply without touching
          the indexes at all.  Replicas share this memo through the
          copy-on-write view cache: any holder of the subject's profile
          at the same version serves the warm entry.
        """
        cache = self._cache
        if cache["version"] != self._version:
            cache.clear()
            cache["version"] = self._version
        if type(items) is frozenset:
            replies = cache.get("afi")
            if replies is None:
                replies = cache["afi"] = {}
            reply = replies.get(items)
            if reply is None:
                reply = frozenset(self._collect_actions(items, cache))
                if len(replies) < _REPLY_MEMO_LIMIT:
                    replies[items] = reply
            return reply
        if not isinstance(items, (set, frozenset)):
            items = set(items)
        return self._collect_actions(items, cache)

    def action_ids_for_items(self, items: Iterable[int]) -> FrozenSet[int]:
        """Interned ids of the tagging actions restricted to ``items``.

        The id-level sibling of :meth:`actions_for_items`: by bijectivity of
        the interner the returned set has exactly the cardinality of the
        tuple-level result, and ``len(receiver.action_ids & ids)`` is
        exactly the overlap score -- so step 2 of the lazy exchange can
        price, ship and score replies as C-level small-int sets without ever
        materializing tuple sets.  Cached like the tuple form: per-item id
        tuples plus a whole-reply memo keyed by the request frozenset, both
        in the copy-on-write version cache shared by all replicas of this
        profile at this version.
        """
        cache = self._cache
        if cache["version"] != self._version:
            cache.clear()
            cache["version"] = self._version
        hashable = type(items) is frozenset
        if hashable:
            replies = cache.get("afi_ids")
            if replies is None:
                replies = cache["afi_ids"] = {}
            reply = replies.get(items)
            if reply is not None:
                return reply
        item_tags = self._item_tags
        pairs_by_item = cache.get("pairs_ids")
        if pairs_by_item is None:
            pairs_by_item = cache["pairs_ids"] = {}
        ids: Set[int] = set()
        update = ids.update
        for item in items:
            pairs = pairs_by_item.get(item)
            if pairs is None:
                tags = item_tags.get(item)
                if not tags:
                    continue
                pairs = pairs_by_item[item] = tuple(
                    intern_action(item, tag) for tag in tags
                )
            update(pairs)
        reply = frozenset(ids)
        if hashable and len(replies) < _REPLY_MEMO_LIMIT:
            replies[items] = reply
        return reply

    def _collect_actions(self, items: Iterable[int], cache: Dict[object, object]) -> Set[TaggingAction]:
        """The uncached single pass behind :meth:`actions_for_items`."""
        item_tags = self._item_tags
        pairs_by_item = cache.get("pairs")
        if pairs_by_item is None:
            pairs_by_item = cache["pairs"] = {}
        actions: Set[TaggingAction] = set()
        update = actions.update
        for item in items:
            pairs = pairs_by_item.get(item)
            if pairs is None:
                tags = item_tags.get(item)
                if not tags:
                    continue
                pairs = pairs_by_item[item] = tuple((item, tag) for tag in tags)
            update(pairs)
        return actions

    def has_item(self, item: int) -> bool:
        return item in self._item_tags

    def __len__(self) -> int:
        return len(self._actions)

    def __contains__(self, action: TaggingAction) -> bool:
        return action in self._actions

    def __iter__(self) -> Iterator[TaggingAction]:
        return iter(self._actions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UserProfile):
            return NotImplemented
        return self.user_id == other.user_id and self._actions == other._actions

    def __hash__(self) -> int:  # pragma: no cover - identity-style hashing
        return hash((self.user_id, len(self._actions)))

    def __repr__(self) -> str:
        return f"UserProfile(user_id={self.user_id}, actions={len(self._actions)})"

    def copy(self) -> "UserProfile":
        """A logically deep snapshot of this profile (replicas on peers).

        The snapshot is copy-on-write: both profiles share the index
        containers until either side mutates, at which point the writer
        materializes private copies first (:meth:`_materialize`).  Replica
        stores happen on every gossip exchange while replica *mutation*
        never happens (replicas are replaced wholesale), so sharing makes
        the common case O(1) instead of O(profile length).

        The version-keyed view cache is shared as well: every replica of a
        subject then reuses one warm set of frozen views and per-item pair
        tuples, and each read re-validates the cache against its own
        version, so a sharer that mutated (and took a private cache with a
        bumped version) can never poison the others.
        """
        self._shared = True
        clone = UserProfile.__new__(UserProfile)
        clone.user_id = self.user_id
        clone._actions = self._actions
        clone._action_ids = self._action_ids
        clone._item_tags = self._item_tags
        clone._tag_items = self._tag_items
        clone._version = self._version
        clone._cache = self._cache
        clone._shared = True
        return clone

    def restore(self, snapshot: "UserProfile") -> None:
        """Reset this profile *in place* to an earlier :meth:`copy` snapshot.

        This is the crash-recovery path: a node that crashed and restarts
        comes back with the state it had persisted before the crash, losing
        whatever happened in between.  Restoring in place (rather than
        swapping in the snapshot object) matters because the node, the
        dataset and any number of replicas may all alias this very object;
        after the restore they all observe the pre-crash state.  The
        containers are adopted copy-on-write, exactly like :meth:`copy` --
        the snapshot stays valid and either side materializes on its next
        mutation.  The version moves *backwards*; that is safe because every
        staleness check in the stack (`DigestCache`, replica freshness)
        compares versions for inequality, never for ordering.
        """
        if snapshot.user_id != self.user_id:
            raise ValueError(
                f"cannot restore profile {self.user_id} from a snapshot of "
                f"profile {snapshot.user_id}"
            )
        snapshot._shared = True
        self._actions = snapshot._actions
        self._action_ids = snapshot._action_ids
        self._item_tags = snapshot._item_tags
        self._tag_items = snapshot._tag_items
        self._version = snapshot._version
        self._cache = snapshot._cache
        self._shared = True


@dataclass
class DatasetStats:
    """Aggregate statistics of a tagging dataset (mirrors Section 3.1.1)."""

    num_users: int
    num_items: int
    num_tags: int
    num_actions: int
    mean_profile_length: float
    max_profile_length: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_users": self.num_users,
            "num_items": self.num_items,
            "num_tags": self.num_tags,
            "num_actions": self.num_actions,
            "mean_profile_length": self.mean_profile_length,
            "max_profile_length": self.max_profile_length,
        }


class Dataset:
    """An immutable-ish collection of user profiles.

    The dataset is the offline view of the collaborative tagging system: it
    knows every user's profile and can compute global statistics, but the
    P3Q nodes themselves only ever see the profiles they store or receive
    through gossip.
    """

    def __init__(self, profiles: Mapping[int, UserProfile]) -> None:
        self._profiles: Dict[int, UserProfile] = dict(profiles)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_actions(cls, actions: Mapping[int, Iterable[TaggingAction]]) -> "Dataset":
        """Build a dataset from a ``user_id -> iterable of (item, tag)`` map."""
        return cls(
            {uid: UserProfile(uid, acts) for uid, acts in actions.items()}
        )

    # -- accessors ------------------------------------------------------------

    @property
    def user_ids(self) -> List[int]:
        return sorted(self._profiles)

    def profile(self, user_id: int) -> UserProfile:
        return self._profiles[user_id]

    def profiles(self) -> Iterator[UserProfile]:
        for uid in self.user_ids:
            yield self._profiles[uid]

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._profiles

    # -- statistics -----------------------------------------------------------

    def items(self) -> Set[int]:
        """All distinct items tagged by at least one user."""
        out: Set[int] = set()
        for profile in self._profiles.values():
            out |= profile.items
        return out

    def tags(self) -> Set[int]:
        """All distinct tags used by at least one user."""
        return {tag for p in self._profiles.values() for _, tag in p}

    def item_popularity(self) -> Counter:
        """item -> number of distinct users who tagged it."""
        counts: Counter = Counter()
        for profile in self._profiles.values():
            counts.update(profile.items)
        return counts

    def tag_popularity(self) -> Counter:
        """tag -> number of distinct users who used it."""
        counts: Counter = Counter()
        for profile in self._profiles.values():
            counts.update({tag for _, tag in profile})
        return counts

    def stats(self) -> DatasetStats:
        lengths = [len(p) for p in self._profiles.values()]
        total = sum(lengths)
        return DatasetStats(
            num_users=len(self._profiles),
            num_items=len(self.items()),
            num_tags=len(self.tags()),
            num_actions=total,
            mean_profile_length=total / len(lengths) if lengths else 0.0,
            max_profile_length=max(lengths) if lengths else 0,
        )

    # -- transformations ------------------------------------------------------

    def filter_rare(self, min_item_users: int = 10, min_tag_users: int = 10) -> "Dataset":
        """Drop actions on items/tags used by too few distinct users.

        Mirrors the paper's dataset cleaning: profiles are rebuilt with the
        items and tags "used by at least 10 distinct users".  Items at the
        tail of the candidate lists are hardly ever in a top-k result, so the
        filtering does not change the experiments' conclusions while keeping
        the trace small.
        """
        item_pop = self.item_popularity()
        tag_pop = self.tag_popularity()
        keep_items = {i for i, n in item_pop.items() if n >= min_item_users}
        keep_tags = {t for t, n in tag_pop.items() if n >= min_tag_users}
        filtered: Dict[int, UserProfile] = {}
        for uid, profile in self._profiles.items():
            actions = [
                (item, tag)
                for item, tag in profile
                if item in keep_items and tag in keep_tags
            ]
            filtered[uid] = UserProfile(uid, actions)
        return Dataset(filtered)

    def sample_users(self, user_ids: Iterable[int]) -> "Dataset":
        """Restrict the dataset to the given users (paper: 10,000 of 13,521)."""
        wanted = set(user_ids)
        return Dataset(
            {uid: p.copy() for uid, p in self._profiles.items() if uid in wanted}
        )

    def copy(self) -> "Dataset":
        return Dataset({uid: p.copy() for uid, p in self._profiles.items()})


@dataclass(frozen=True)
class ProfileChange:
    """A batch of new tagging actions applied to one user's profile.

    Profile dynamics in the paper are expressed as per-day batches of new
    tagging actions (Section 3.4.1).  A change never removes actions -- in a
    tagging system an opinion, once expressed, stays meaningful.
    """

    user_id: int
    new_actions: Tuple[TaggingAction, ...]

    def __len__(self) -> int:
        return len(self.new_actions)


@dataclass(frozen=True)
class ChangeDay:
    """All profile changes happening on one (simulated) day."""

    day: int
    changes: Tuple[ProfileChange, ...] = field(default_factory=tuple)

    @property
    def changed_users(self) -> FrozenSet[int]:
        return frozenset(change.user_id for change in self.changes)

    def __len__(self) -> int:
        return len(self.changes)
