"""Query generation from tagging profiles.

The paper's workload (Section 3.1.1): each user processes exactly one query.
One item is picked at random from the user's profile, and the query is the
set of tags that user used to annotate that item -- under the assumption that
the tags a user attached to an item are precisely those she would use to
search for it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .models import Dataset


@dataclass(frozen=True)
class Query:
    """A personalized top-k query: ``Q = {u_i, t_1, ..., t_n}``."""

    query_id: int
    querier: int
    tags: Tuple[int, ...]
    #: The item the tags were drawn from; kept for analysis only (the
    #: protocol never sees it).
    source_item: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.tags:
            raise ValueError("a query must contain at least one tag")

    def __len__(self) -> int:
        return len(self.tags)


class QueryWorkloadGenerator:
    """Generate the paper's one-query-per-user workload."""

    def __init__(self, dataset: Dataset, seed: int = 13) -> None:
        self.dataset = dataset
        self._rng = random.Random(seed)

    def query_for(self, user_id: int, query_id: Optional[int] = None) -> Optional[Query]:
        """Generate a query for one user, or ``None`` for an empty profile."""
        profile = self.dataset.profile(user_id)
        items = sorted(profile.items)
        if not items:
            return None
        item = self._rng.choice(items)
        tags = tuple(sorted(profile.tags_for(item)))
        return Query(
            query_id=user_id if query_id is None else query_id,
            querier=user_id,
            tags=tags,
            source_item=item,
        )

    def generate(self, user_ids: Optional[Sequence[int]] = None) -> List[Query]:
        """One query per user (users with empty profiles are skipped)."""
        ids = list(user_ids) if user_ids is not None else self.dataset.user_ids
        queries: List[Query] = []
        for user_id in ids:
            query = self.query_for(user_id, query_id=len(queries))
            if query is not None:
                queries.append(query)
        return queries

    def generate_map(self, user_ids: Optional[Sequence[int]] = None) -> Dict[int, Query]:
        """Same as :meth:`generate` but keyed by querier id."""
        return {q.querier: q for q in self.generate(user_ids)}
