"""Synthetic delicious-like tagging trace generator.

The paper evaluates P3Q on a trace crawled from delicious in January 2009
(13,521 users, 31.8M tagging actions) reduced to 10,000 users and the items /
tags used by at least 10 distinct users.  That crawl is not redistributable,
so this module generates a synthetic trace with the statistical properties
the protocol actually depends on:

* **long-tail popularity** -- item and tag usage follows a Zipf-like
  distribution ("most items and tags are used by few users");
* **skewed user activity** -- a few very active users, many light users
  (the paper reports a mean of 249 items per user with 99% under 2,000);
* **community structure** -- users cluster around topical interests, so that
  users sharing a community share many ``(item, tag)`` pairs.  This is the
  property that makes similarity-biased gossip converge faster than random
  search and that gives personalized top-k results their meaning.

The generator is fully deterministic given a seed, and the generation path
is a *streaming single pass*: :meth:`SyntheticTraceGenerator.iter_profiles`
yields one finished, fully-indexed :class:`~repro.data.models.UserProfile`
at a time (built through the direct interned constructor, so indexes are
populated exactly once), and :meth:`~SyntheticTraceGenerator.generate`
merely collects that stream into a :class:`~repro.data.models.Dataset`.
Consumers that persist or shard the trace (the dataset disk cache in
:mod:`repro.data.loader`, the shard-parallel bootstrap) ride the stream
without ever holding a second copy of the actions.

Per-community popularity distributions are materialized once as cumulative
weight tables; the per-action draws then run ``random.choices`` with
``cum_weights=``, which consumes exactly the same single ``random()`` call
and bisects over exactly the same floats as the previous per-call
``weights=`` form -- traces are bit-identical to those generated before the
streaming rewrite (pinned by the dataset fingerprint test).
"""

from __future__ import annotations

import math
import random
from bisect import bisect
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Dict, Iterator, List, Sequence

from .models import Dataset, TaggingAction, UserProfile

#: Bump when the generation algorithm changes its draws: the dataset disk
#: cache (:mod:`repro.data.loader`) keys cached traces on the config *and*
#: this fingerprint, so a stale cache can never shadow a new generator.
GENERATOR_FINGERPRINT = "synthetic-trace-v1"


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic trace.

    The defaults produce a small trace (hundreds of users) suitable for unit
    tests and quick experiments; the paper-scale values are given in the
    comments.  All distributions are relative, so scaling ``num_users`` up
    preserves the trace's shape.
    """

    num_users: int = 300            # paper: 10,000
    num_items: int = 2_000          # paper: 101,144
    num_tags: int = 400             # paper: 31,899
    num_communities: int = 12
    #: Mean number of tagging actions per user (long-tailed around this).
    mean_actions_per_user: int = 60  # paper: ~950 actions (249 items)
    #: Zipf skew of item popularity inside a community.
    item_zipf_exponent: float = 1.1
    #: Zipf skew of tag popularity inside a community.
    tag_zipf_exponent: float = 1.05
    #: Fraction of a user's actions drawn from her communities (vs global noise).
    community_affinity: float = 0.85
    #: Each item receives between 1 and this many tags from one user.
    max_tags_per_item: int = 4
    #: How many communities a user belongs to (1..this).
    max_communities_per_user: int = 3
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_users <= 0:
            raise ValueError("num_users must be positive")
        if self.num_communities <= 0:
            raise ValueError("num_communities must be positive")
        if not 0.0 <= self.community_affinity <= 1.0:
            raise ValueError("community_affinity must be in [0, 1]")
        if self.max_tags_per_item < 1:
            raise ValueError("max_tags_per_item must be >= 1")


@dataclass
class Community:
    """A topical community: a pool of items and tags with Zipf popularity.

    ``item_cum`` / ``tag_cum`` are the cumulative-weight tables fed to
    ``random.choices(..., cum_weights=...)``: precomputing them turns every
    weighted draw from O(pool) into O(log pool) while consuming the exact
    same floats (``accumulate`` is what ``choices`` runs internally).
    """

    community_id: int
    items: List[int]
    tags: List[int]
    item_weights: List[float] = field(default_factory=list)
    tag_weights: List[float] = field(default_factory=list)
    item_cum: List[float] = field(default_factory=list)
    tag_cum: List[float] = field(default_factory=list)
    #: ``cum[-1] + 0.0`` exactly as ``random.choices`` computes its total.
    item_total: float = 0.0
    tag_total: float = 0.0


def _zipf_weights(n: int, exponent: float) -> List[float]:
    """Unnormalised Zipf weights ``1/rank**exponent`` for ranks 1..n."""
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


def _heavy_tailed_count(rng: random.Random, mean: int) -> int:
    """Draw a per-user activity level with a heavy right tail.

    A log-normal with median below the mean gives the "few hyper-active
    users, many light users" shape observed in delicious.
    """
    if mean <= 1:
        return max(1, mean)
    sigma = 0.9
    mu = math.log(mean) - sigma ** 2 / 2
    value = int(round(rng.lognormvariate(mu, sigma)))
    return max(3, value)


class SyntheticTraceGenerator:
    """Generate a :class:`~repro.data.models.Dataset` from a config."""

    def __init__(self, config: SyntheticConfig | None = None) -> None:
        self.config = config or SyntheticConfig()
        self._rng = random.Random(self.config.seed)
        self._communities = self._build_communities()
        self._memberships: Dict[int, List[int]] = {}
        self._dataset: Dataset | None = None
        #: Index of the next user the streaming pass will emit.
        self._next_user = 0

    # -- public API -----------------------------------------------------------

    def generate(self) -> Dataset:
        """Generate the full dataset (cached: repeated calls return the same trace)."""
        if self._dataset is not None:
            return self._dataset
        self._dataset = Dataset({p.user_id: p for p in self.iter_profiles()})
        return self._dataset

    def iter_user_actions(self) -> Iterator[tuple[int, List[TaggingAction]]]:
        """Stream ``(user_id, actions)`` pairs, one user per step (single pass).

        The yielded list is exactly what
        :meth:`UserProfile.from_distinct_actions` receives on the generation
        path -- persisting it and replaying it through the same constructor
        reproduces the profile bit for bit, including set layout.  The
        stream shares the generator's single RNG, so it can only run
        forward once.
        """
        if self._next_user != 0 or self._dataset is not None:
            raise RuntimeError("the generation stream was already consumed")
        for user_id in range(self.config.num_users):
            self._next_user = user_id + 1
            memberships = self._pick_communities(user_id)
            self._memberships[user_id] = memberships
            yield user_id, self._generate_actions(memberships)

    def iter_profiles(self) -> Iterator[UserProfile]:
        """Stream the trace one finished profile at a time (single pass).

        Profiles come out fully indexed through
        :meth:`UserProfile.from_distinct_actions` -- the interned action-id
        set, the item/tag indexes and the version counter are built exactly
        once, directly from the generated action list.  Use :meth:`generate`
        for the collected (and cached) dataset.
        """
        if self._dataset is not None:
            yield from self._dataset.profiles()
            return
        for user_id, actions in self.iter_user_actions():
            yield UserProfile.from_distinct_actions(user_id, actions)

    def community_memberships(self) -> Dict[int, List[int]]:
        """user_id -> community ids used while generating each profile.

        Useful for experiments that want to reason about ground-truth
        communities (e.g. checking that personal networks are dominated by
        same-community users).  Triggers generation if it has not happened yet.
        """
        if self._dataset is None:
            self.generate()
        return {user_id: list(ids) for user_id, ids in self._memberships.items()}

    # -- internals ------------------------------------------------------------

    def _build_communities(self) -> List[Community]:
        cfg = self.config
        communities: List[Community] = []
        items = list(range(cfg.num_items))
        tags = list(range(cfg.num_tags))
        self._rng.shuffle(items)
        self._rng.shuffle(tags)
        items_per_comm = max(10, cfg.num_items // cfg.num_communities)
        tags_per_comm = max(5, cfg.num_tags // cfg.num_communities)
        for cid in range(cfg.num_communities):
            # Communities overlap a little: each draws from a sliding window
            # over the shuffled global pools plus a random sample.
            start_i = (cid * items_per_comm) % max(1, cfg.num_items - items_per_comm)
            start_t = (cid * tags_per_comm) % max(1, cfg.num_tags - tags_per_comm)
            comm_items = items[start_i:start_i + items_per_comm]
            comm_tags = tags[start_t:start_t + tags_per_comm]
            extra_items = self._rng.sample(items, k=min(len(items), items_per_comm // 5))
            extra_tags = self._rng.sample(tags, k=min(len(tags), tags_per_comm // 5))
            comm_items = list(dict.fromkeys(comm_items + extra_items))
            comm_tags = list(dict.fromkeys(comm_tags + extra_tags))
            item_weights = _zipf_weights(len(comm_items), cfg.item_zipf_exponent)
            tag_weights = _zipf_weights(len(comm_tags), cfg.tag_zipf_exponent)
            item_cum = list(accumulate(item_weights))
            tag_cum = list(accumulate(tag_weights))
            communities.append(
                Community(
                    community_id=cid,
                    items=comm_items,
                    tags=comm_tags,
                    item_weights=item_weights,
                    tag_weights=tag_weights,
                    item_cum=item_cum,
                    tag_cum=tag_cum,
                    item_total=item_cum[-1] + 0.0,
                    tag_total=tag_cum[-1] + 0.0,
                )
            )
        return communities

    def _pick_communities(self, user_id: int) -> List[int]:
        cfg = self.config
        count = self._rng.randint(1, cfg.max_communities_per_user)
        return self._rng.sample(range(cfg.num_communities), k=min(count, cfg.num_communities))

    def _generate_actions(self, memberships: Sequence[int]) -> List[TaggingAction]:
        cfg = self.config
        rng = self._rng
        rand = rng.random
        randint = rng.randint
        randrange = rng.randrange
        choice = rng.choice
        communities = self._communities
        affinity = cfg.community_affinity
        num_items = cfg.num_items
        num_tags_universe = cfg.num_tags
        max_tags = cfg.max_tags_per_item
        target = _heavy_tailed_count(rng, cfg.mean_actions_per_user)
        actions: set[TaggingAction] = set()
        add = actions.add
        attempts = 0
        max_attempts = target * 10
        # The weighted draws inline ``random.choices(pool, cum_weights=cum,
        # k=1)``: one ``random()`` call bisected over the precomputed table
        # with the identical ``hi = len(pool) - 1`` bound and the identical
        # ``cum[-1] + 0.0`` total, so the consumed stream (and therefore the
        # trace) is bit-identical to the pre-streaming generator.
        while len(actions) < target and attempts < max_attempts:
            attempts += 1
            if rand() < affinity:
                community = communities[choice(memberships)]
                pool = community.items
                item = pool[bisect(community.item_cum, rand() * community.item_total, 0, len(pool) - 1)]
                tag_pool = community.tags
                tag_cum = community.tag_cum
                tag_total = community.tag_total
            else:
                item = randrange(num_items)
                tag_pool = None
            num_tags = randint(1, max_tags)
            for _ in range(num_tags):
                if tag_pool is not None:
                    tag = tag_pool[bisect(tag_cum, rand() * tag_total, 0, len(tag_pool) - 1)]
                else:
                    tag = randrange(num_tags_universe)
                add((item, tag))
        return list(actions)


def generate_dataset(config: SyntheticConfig | None = None) -> Dataset:
    """Convenience wrapper: build a generator and produce the dataset."""
    return SyntheticTraceGenerator(config).generate()


def paper_scale_config(seed: int = 42) -> SyntheticConfig:
    """A configuration matching the scale of the paper's cleaned trace.

    10,000 users, ~100k items, ~32k tags, ~950 actions per user on average.
    Running lazy-mode convergence at this scale in pure Python takes hours;
    this config exists so that the experiments are parameterized to paper
    scale, not hard-coded to the test scale.
    """
    return SyntheticConfig(
        num_users=10_000,
        num_items=100_000,
        num_tags=32_000,
        num_communities=120,
        mean_actions_per_user=950,
        seed=seed,
    )
