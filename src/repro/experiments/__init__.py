"""Experiment runners: one module per table / figure of the paper."""

from .scenarios import (
    PAPER_STORAGE_LEVELS,
    ExperimentScale,
    poisson_storage_distribution,
    storage_level_fractions,
    storage_level_probabilities,
    uniform_storage_distribution,
)
from .runner import (
    ExperimentRun,
    PreparedWorkload,
    build_config,
    converged_simulation,
    prepare_workload,
    run_experiment_by_name,
    run_experiments_parallel,
)
from .report import format_series, format_table
from .table1_distribution import Table1Result, run_table1
from .fig2_convergence import ConvergenceResult, run_convergence
from .fig3_alpha import PAPER_ALPHAS, AlphaRecallResult, run_alpha_recall
from .fig4_storage_recall import StorageRecallResult, run_storage_recall
from .fig5_space import SpaceResult, run_space_requirements
from .fig6_bandwidth import BandwidthResult, run_query_bandwidth
from .table2_profile_changes import Table2Result, run_table2
from .fig7_aur_lazy import AurLazyResult, run_aur_lazy
from .fig8_reach import ReachResult, run_users_reached
from .fig9_aur_eager import AurEagerResult, run_aur_eager
from .fig10_network_update import NetworkUpdateResult, run_network_update
from .fig11_churn import PAPER_DEPARTURES, ChurnResult, run_churn
from .fig_loss import DEFAULT_LOSS_RATES, LossSweepResult, run_loss_sweep
from .fig_serving import (
    DEFAULT_COVERAGE_CUTOFFS,
    ServingTradeoffResult,
    run_serving_tradeoff,
)
from .fig_service import ServiceModeResult, run_service_mode
from .fig_adversarial import (
    DEFAULT_FREE_RIDER_FRACTIONS,
    FreeRiderSweepResult,
    PartitionHealResult,
    run_free_rider_sweep,
    run_partition_heal,
)
from .analysis_alpha import AlphaAnalysisResult, run_alpha_analysis
from .ablations import (
    ExchangeAblationResult,
    RandomViewAblationResult,
    SelectionAblationResult,
    run_exchange_ablation,
    run_random_view_ablation,
    run_selection_ablation,
)

__all__ = [
    "AlphaAnalysisResult",
    "AlphaRecallResult",
    "AurEagerResult",
    "AurLazyResult",
    "BandwidthResult",
    "ChurnResult",
    "ConvergenceResult",
    "DEFAULT_FREE_RIDER_FRACTIONS",
    "DEFAULT_LOSS_RATES",
    "ExchangeAblationResult",
    "FreeRiderSweepResult",
    "ExperimentRun",
    "ExperimentScale",
    "LossSweepResult",
    "NetworkUpdateResult",
    "PAPER_ALPHAS",
    "PAPER_DEPARTURES",
    "PAPER_STORAGE_LEVELS",
    "PartitionHealResult",
    "PreparedWorkload",
    "RandomViewAblationResult",
    "ReachResult",
    "SelectionAblationResult",
    "SpaceResult",
    "StorageRecallResult",
    "Table1Result",
    "Table2Result",
    "build_config",
    "converged_simulation",
    "format_series",
    "format_table",
    "poisson_storage_distribution",
    "prepare_workload",
    "run_alpha_analysis",
    "run_alpha_recall",
    "run_aur_eager",
    "run_aur_lazy",
    "run_churn",
    "run_convergence",
    "run_exchange_ablation",
    "run_experiment_by_name",
    "run_experiments_parallel",
    "run_free_rider_sweep",
    "run_loss_sweep",
    "DEFAULT_COVERAGE_CUTOFFS",
    "ServingTradeoffResult",
    "run_serving_tradeoff",
    "ServiceModeResult",
    "run_service_mode",
    "run_partition_heal",
    "run_network_update",
    "run_query_bandwidth",
    "run_random_view_ablation",
    "run_selection_ablation",
    "run_space_requirements",
    "run_storage_recall",
    "run_table1",
    "run_table2",
    "run_users_reached",
    "storage_level_fractions",
    "storage_level_probabilities",
    "uniform_storage_distribution",
]
