"""Ablations of P3Q design choices (beyond the paper's own figures).

DESIGN.md calls out three protocol-level design choices worth isolating:

* the **3-step exchange** (digests, then common items, then full profiles)
  versus shipping full profiles for every advertised user;
* the **random-view layer** versus relying on personal networks alone for
  neighbour discovery;
* the **oldest-timestamp partner selection** versus picking gossip partners
  uniformly at random.

Each ablation runs the same small workload with the design choice toggled
and reports the metric that choice is supposed to improve (bandwidth for the
exchange, convergence for the other two).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..metrics.bandwidth import MAINTENANCE_KINDS
from ..metrics.convergence import average_success_ratio
from ..p3q.protocol import P3QSimulation
from ..similarity.knn import IdealNetworkIndex
from .report import format_table
from .runner import build_config
from .scenarios import ExperimentScale


@dataclass
class ExchangeAblationResult:
    """Bandwidth of the 3-step exchange vs the naive full-profile exchange.

    Digest traffic is identical in both variants (both advertise the same
    digests), so the comparison that isolates the design choice is the
    *profile payload*: the bytes spent on common-item actions plus full
    profiles.  The totals including digests are reported as well.
    """

    three_step_total_bytes: int
    full_profile_total_bytes: int
    three_step_payload_bytes: int
    full_profile_payload_bytes: int
    cycles: int

    @property
    def payload_savings_factor(self) -> float:
        if self.three_step_payload_bytes == 0:
            return float("inf")
        return self.full_profile_payload_bytes / self.three_step_payload_bytes

    @property
    def total_savings_factor(self) -> float:
        if self.three_step_total_bytes == 0:
            return float("inf")
        return self.full_profile_total_bytes / self.three_step_total_bytes

    def render(self) -> str:
        rows = [
            [
                "3-step exchange",
                round(self.three_step_payload_bytes / 1024.0, 1),
                round(self.three_step_total_bytes / 1024.0, 1),
            ],
            [
                "full-profile exchange",
                round(self.full_profile_payload_bytes / 1024.0, 1),
                round(self.full_profile_total_bytes / 1024.0, 1),
            ],
            [
                "savings factor",
                round(self.payload_savings_factor, 2),
                round(self.total_savings_factor, 2),
            ],
        ]
        return format_table(
            ["variant", f"profile payload KB ({self.cycles} cycles)", "total maintenance KB"],
            rows,
            title="Ablation: 3-step exchange vs naive profile exchange",
        )


def run_exchange_ablation(
    scale: Optional[ExperimentScale] = None,
    storage: Optional[int] = None,
    cycles: int = 10,
) -> ExchangeAblationResult:
    """Compare lazy-mode maintenance traffic with and without the 3-step exchange."""
    scale = scale or ExperimentScale.tiny()
    storage = storage if storage is not None else scale.storage_levels[1]
    dataset = scale.build_dataset()

    totals: Dict[bool, int] = {}
    payloads: Dict[bool, int] = {}
    payload_kinds = ("common_item_actions", "full_profiles")
    for three_step in (True, False):
        config = build_config(scale, storage, three_step_exchange=three_step)
        simulation = P3QSimulation(dataset.copy(), config)
        simulation.bootstrap_random_views()
        simulation.run_lazy(cycles)
        kinds = simulation.stats.bytes_by_kind()
        totals[three_step] = sum(kinds.get(kind, 0) for kind in MAINTENANCE_KINDS)
        payloads[three_step] = sum(kinds.get(kind, 0) for kind in payload_kinds)
    return ExchangeAblationResult(
        three_step_total_bytes=totals[True],
        full_profile_total_bytes=totals[False],
        three_step_payload_bytes=payloads[True],
        full_profile_payload_bytes=payloads[False],
        cycles=cycles,
    )


@dataclass
class RandomViewAblationResult:
    """Convergence with and without the random-view (peer sampling) layer."""

    with_random_view: List[float]
    without_random_view: List[float]
    cycles: List[int]

    def final_gap(self) -> float:
        return self.with_random_view[-1] - self.without_random_view[-1]

    def render(self) -> str:
        rows = [
            [cycle, self.with_random_view[i], self.without_random_view[i]]
            for i, cycle in enumerate(self.cycles)
        ]
        return format_table(
            ["cycle", "with random view", "without random view"],
            rows,
            title="Ablation: random-view layer contribution to convergence",
        )


def run_random_view_ablation(
    scale: Optional[ExperimentScale] = None,
    storage: Optional[int] = None,
    cycles: int = 20,
    sample_every: int = 5,
) -> RandomViewAblationResult:
    """Measure convergence with the peer-sampling layer enabled vs disabled.

    "Disabled" keeps the bootstrap contacts but never runs the bottom layer
    nor scores random-view members, so discovery only flows through personal
    network gossip (friends-of-friends).
    """
    scale = scale or ExperimentScale.tiny()
    storage = storage if storage is not None else scale.storage_levels[2]
    dataset = scale.build_dataset()
    ideal = IdealNetworkIndex(dataset, size=scale.network_size)
    points = sorted({0, *range(sample_every, cycles + 1, sample_every), cycles})

    series: Dict[bool, List[float]] = {}
    for enabled in (True, False):
        config = build_config(scale, storage, account_traffic=False)
        simulation = P3QSimulation(dataset.copy(), config)
        simulation.bootstrap_random_views()
        if not enabled:
            # Disable both peer-sampling exchanges and random-view scoring by
            # stubbing the sans-io cores (the engine and the service runtime
            # both go through the effect generators).
            def _no_sampling(*_args, **_kwargs):
                return None
                yield  # pragma: no cover - makes this a generator function

            def _no_refresh(*_args, **_kwargs):
                return []
                yield  # pragma: no cover - makes this a generator function

            simulation.peer_sampling.run_cycle_effects = _no_sampling  # type: ignore[assignment]
            simulation.lazy.refresh_from_random_view_effects = _no_refresh  # type: ignore[assignment]
        values: List[float] = []
        values.append(average_success_ratio(ideal, simulation.discovered_networks()))
        done = 0
        for point in points[1:]:
            simulation.run_lazy(point - done)
            done = point
            values.append(average_success_ratio(ideal, simulation.discovered_networks()))
        series[enabled] = values
    return RandomViewAblationResult(
        with_random_view=series[True],
        without_random_view=series[False],
        cycles=points,
    )


@dataclass
class SelectionAblationResult:
    """Oldest-timestamp partner selection vs uniformly random selection."""

    oldest_timestamp: List[float]
    uniform_random: List[float]
    cycles: List[int]

    def render(self) -> str:
        rows = [
            [cycle, self.oldest_timestamp[i], self.uniform_random[i]]
            for i, cycle in enumerate(self.cycles)
        ]
        return format_table(
            ["cycle", "oldest timestamp", "uniform random"],
            rows,
            title="Ablation: gossip partner selection policy",
        )


def run_selection_ablation(
    scale: Optional[ExperimentScale] = None,
    storage: Optional[int] = None,
    cycles: int = 20,
    sample_every: int = 5,
) -> SelectionAblationResult:
    """Compare convergence under the two partner-selection policies."""
    scale = scale or ExperimentScale.tiny()
    storage = storage if storage is not None else scale.storage_levels[2]
    dataset = scale.build_dataset()
    ideal = IdealNetworkIndex(dataset, size=scale.network_size)
    points = sorted({0, *range(sample_every, cycles + 1, sample_every), cycles})

    series: Dict[str, List[float]] = {}
    for policy in ("oldest", "random"):
        config = build_config(scale, storage, account_traffic=False)
        simulation = P3QSimulation(dataset.copy(), config)
        simulation.bootstrap_random_views()
        if policy == "random":
            rng = random.Random(scale.seed)
            for node in simulation.nodes.values():
                network = node.personal_network
                original = network.select_oldest

                def random_select(restrict_to=None, _network=network, _rng=rng):
                    candidates = _network.member_ids()
                    if restrict_to is not None:
                        allowed = set(restrict_to)
                        candidates = [uid for uid in candidates if uid in allowed]
                    if not candidates:
                        return None
                    return _rng.choice(candidates)

                network.select_oldest = random_select  # type: ignore[assignment]
        values: List[float] = []
        values.append(average_success_ratio(ideal, simulation.discovered_networks()))
        done = 0
        for point in points[1:]:
            simulation.run_lazy(point - done)
            done = point
            values.append(average_success_ratio(ideal, simulation.discovered_networks()))
        series[policy] = values
    return SelectionAblationResult(
        oldest_timestamp=series["oldest"],
        uniform_random=series["random"],
        cycles=points,
    )
