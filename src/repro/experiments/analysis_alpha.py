"""Section 2.4 analysis: R(α), its optimum, and the involvement bounds.

The experiment compares the closed-form number of cycles ``R(α)`` (Theorem
2.1) with a mechanistic replay of the remaining-list splitting recurrence,
verifies that α = 0.5 minimizes it (Theorem 2.2), and reports the bounds on
users involved and messages exchanged (Theorems 2.3 and 2.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..p3q.analysis import (
    cycles_to_complete,
    max_partial_results,
    max_remaining_list_messages,
    max_users_involved,
    simulate_remaining_list_drain,
)
from .report import format_table


@dataclass
class AlphaAnalysisResult:
    """Closed-form vs simulated drain for each α."""

    length: int
    found_per_hop: int
    rows: List[Tuple[float, float, int, int, int, int]]

    def closed_form(self, alpha: float) -> float:
        for row in self.rows:
            if row[0] == alpha:
                return row[1]
        raise KeyError(alpha)

    def simulated(self, alpha: float) -> int:
        for row in self.rows:
            if row[0] == alpha:
                return row[2]
        raise KeyError(alpha)

    def best_alpha(self) -> float:
        return min(self.rows, key=lambda row: row[1])[0]

    def render(self) -> str:
        table_rows = [
            [
                f"{alpha:g}",
                round(closed, 2),
                simulated,
                users_bound,
                partials_bound,
                messages_bound,
            ]
            for alpha, closed, simulated, users_bound, partials_bound, messages_bound in self.rows
        ]
        return format_table(
            [
                "alpha",
                "R(alpha) closed form",
                "simulated cycles",
                "user bound 2^R",
                "partial results bound",
                "gossip message bound",
            ],
            table_rows,
            title=(
                "Section 2.4 analysis"
                f" (L={self.length}, X={self.found_per_hop})"
            ),
        )


def run_alpha_analysis(
    length: int = 990,
    found_per_hop: int = 10,
    alphas: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
) -> AlphaAnalysisResult:
    """Evaluate the analytical model for the paper's canonical L and X.

    The defaults mirror the paper's running configuration: a personal network
    of s = 1000 with c = 10 stored profiles gives a remaining list of
    L = 990, and X = c = 10 profiles found per hop.
    """
    rows: List[Tuple[float, float, int, int, int, int]] = []
    for alpha in alphas:
        closed = cycles_to_complete(length, found_per_hop, alpha)
        trace = simulate_remaining_list_drain(length, found_per_hop, alpha)
        cycles_ceiling = math.ceil(closed)
        rows.append(
            (
                alpha,
                closed,
                trace.cycles,
                max_users_involved(closed),
                max_partial_results(closed),
                max_remaining_list_messages(closed),
            )
        )
    return AlphaAnalysisResult(length=length, found_per_hop=found_per_hop, rows=rows)
