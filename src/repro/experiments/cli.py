"""Command-line entry point: regenerate any table / figure of the paper.

Examples::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli fig2 fig4
    python -m repro.experiments.cli table1 --scale tiny
    python -m repro.experiments.cli all --scale small --output results/
    python -m repro.experiments.cli all --workers 4
    python -m repro.experiments.cli fig-loss

Each experiment prints its rows/series as an aligned text table and, with
``--output``, also writes it to ``<output>/<experiment>.txt``.  With
``--workers N`` independent experiments fan out over N processes (each
worker rebuilds its seeded workload, so the reports are byte-identical to a
serial run).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, Optional

from .scenarios import ExperimentScale
from .runner import PreparedWorkload, prepare_workload, run_experiments_parallel
from . import (
    run_alpha_analysis,
    run_alpha_recall,
    run_aur_eager,
    run_aur_lazy,
    run_churn,
    run_convergence,
    run_exchange_ablation,
    run_free_rider_sweep,
    run_loss_sweep,
    run_partition_heal,
    run_network_update,
    run_serving_tradeoff,
    run_service_mode,
    run_query_bandwidth,
    run_random_view_ablation,
    run_selection_ablation,
    run_space_requirements,
    run_storage_recall,
    run_table1,
    run_table2,
    run_users_reached,
)

#: experiment name -> (description, needs_workload, runner)
#: Runners take (scale, workload_or_None) and return an object with .render().
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (
        "Table 1: Poisson distribution of the storage budget c",
        False,
        lambda scale, _w: run_table1(num_users=max(1_000, scale.num_users)),
    ),
    "fig2": (
        "Figure 2: personal-network convergence in lazy mode",
        False,
        lambda scale, _w: run_convergence(scale, cycles=30, sample_every=5),
    ),
    "fig3": (
        "Figure 3: recall vs cycles for different alpha",
        True,
        lambda scale, w: run_alpha_recall(scale, cycles=20, workload=w),
    ),
    "fig4": (
        "Figure 4: recall vs cycles for different storage budgets",
        True,
        lambda scale, w: run_storage_recall(scale, cycles=10, workload=w),
    ),
    "fig5": (
        "Figure 5: per-user storage requirement",
        True,
        lambda scale, w: run_space_requirements(scale, workload=w),
    ),
    "fig6": (
        "Figure 6 / Section 3.5: query bandwidth",
        True,
        lambda scale, w: run_query_bandwidth(scale, cycles=12, workload=w),
    ),
    "table2": (
        "Table 2: influence of profile changes",
        True,
        lambda scale, w: run_table2(scale, workload=w),
    ),
    "fig7": (
        "Figure 7: average update rate in lazy mode",
        True,
        lambda scale, w: run_aur_lazy(scale, cycles=20, sample_every=5, workload=w),
    ),
    "fig8": (
        "Figure 8: users reached per query",
        True,
        lambda scale, w: run_users_reached(scale, cycles=12, workload=w),
    ),
    "fig9": (
        "Figure 9: average update rate in eager mode",
        True,
        lambda scale, w: run_aur_eager(scale, workload=w),
    ),
    "fig10": (
        "Figure 10: discovery of new ideal neighbours",
        True,
        lambda scale, w: run_network_update(scale, cycles=30, sample_every=5, workload=w),
    ),
    "fig11": (
        "Figure 11: impact of churn on recall",
        True,
        lambda scale, w: run_churn(scale, cycles=10, workload=w),
    ),
    "fig-loss": (
        "Loss sweep: recall and bandwidth under per-message packet loss",
        True,
        lambda scale, w: run_loss_sweep(scale, cycles=12, workload=w),
    ),
    "fig-serving": (
        "Serving tradeoff: latency and recall at coverage cutoffs",
        True,
        lambda scale, w: run_serving_tradeoff(scale, cycles=12, workload=w),
    ),
    "fig-service": (
        "Service mode: live asyncio runtime, recall and invariant audit",
        False,
        lambda scale, _w: run_service_mode(scale),
    ),
    "fig-partition": (
        "Partition and heal: recall and bandwidth across a network split",
        True,
        lambda scale, w: run_partition_heal(scale, cycles=12, workload=w),
    ),
    "fig-free-riders": (
        "Free-rider sweep: recall and bandwidth vs fraction of non-serving nodes",
        True,
        lambda scale, w: run_free_rider_sweep(scale, cycles=12, workload=w),
    ),
    "analysis": (
        "Section 2.4: R(alpha) closed form and bounds",
        False,
        lambda scale, _w: run_alpha_analysis(),
    ),
    "ablation-exchange": (
        "Ablation: 3-step exchange vs naive profile exchange",
        False,
        lambda scale, _w: run_exchange_ablation(scale),
    ),
    "ablation-random-view": (
        "Ablation: random-view layer contribution",
        False,
        lambda scale, _w: run_random_view_ablation(scale),
    ),
    "ablation-selection": (
        "Ablation: gossip partner selection policy",
        False,
        lambda scale, _w: run_selection_ablation(scale),
    ),
}


def resolve_scale(name: str) -> ExperimentScale:
    if name == "tiny":
        return ExperimentScale.tiny()
    if name == "paper":
        return ExperimentScale.paper()
    return ExperimentScale.small()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Gossiping Personalized Queries'.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see --list); 'all' runs every one of them",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--scale",
        choices=["tiny", "small", "paper"],
        default="small",
        help="experiment scale (default: small)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory where each experiment's report is also written",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="run independent experiments in N parallel processes (default: 1)",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name, (description, _needs, _runner) in EXPERIMENTS.items():
            print(f"{name:<22} {description}")
        return 0

    names = list(args.experiments)
    if not names:
        parser.error("no experiment given (use --list to see the available ones)")
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    if args.workers < 1:
        parser.error("--workers must be positive")

    if args.workers > 1:
        runs = run_experiments_parallel(names, scale_name=args.scale, workers=args.workers)
        for run in runs:
            _emit(run.description, run.elapsed_seconds, run.report, run.name, args.output)
        return 0

    scale = resolve_scale(args.scale)
    workload: Optional[PreparedWorkload] = None
    if any(EXPERIMENTS[name][1] for name in names):
        workload = prepare_workload(scale)

    for name in names:
        description, needs_workload, runner = EXPERIMENTS[name]
        start = time.time()
        result = runner(scale, workload if needs_workload else None)
        elapsed = time.time() - start
        _emit(description, elapsed, result.render(), name, args.output)
    return 0


def _emit(description: str, elapsed: float, report: str, name: str, output: Optional[Path]) -> None:
    print(f"\n# {description}  [{elapsed:.1f}s]")
    print(report)
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"{name}.txt").write_text(report + "\n", encoding="utf-8")


if __name__ == "__main__":  # pragma: no cover - exercised through main() in tests
    import warnings

    warnings.warn(
        "'python -m repro.experiments.cli' is deprecated; "
        "use 'python -m repro experiments'",
        DeprecationWarning,
    )
    sys.exit(main())
