"""Figure 10: discovery of the *new* neighbours caused by profile changes.

Profile changes do not only stale replicas -- they also change which users
*should* be in a personal network.  Starting from converged networks, one day
of changes is applied, the new ideal networks are computed offline, and the
experiment tracks per lazy cycle the fraction of affected users that have
discovered **all** of their new ideal neighbours (a deliberately strict
metric).  Paper shape: ~50% of affected users are complete after 30 cycles,
~80% after 100, with λ=1 and λ=4 close to each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..data.dynamics import DynamicsConfig, ProfileDynamicsGenerator
from ..metrics.convergence import (
    fraction_with_complete_new_network,
    users_with_changed_networks,
)
from ..similarity.knn import IdealNetworkIndex
from .report import format_series
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale, poisson_storage_distribution


@dataclass
class NetworkUpdateResult:
    """Fraction of affected users with a completed new network, per cycle."""

    cycles: List[int]
    series: Dict[float, List[float]]
    affected_users: Dict[float, int]

    def final_fraction(self, lam: float) -> float:
        return self.series[lam][-1] if self.series[lam] else 1.0

    def render(self) -> str:
        named = [
            (f"lambda={lam:g} (affected={self.affected_users[lam]})", values)
            for lam, values in sorted(self.series.items())
        ]
        return format_series(
            "cycle",
            self.cycles,
            named,
            title="Figure 10: personal network evolution in lazy mode",
        )


def run_network_update(
    scale: Optional[ExperimentScale] = None,
    lambdas: Sequence[float] = (1.0, 4.0),
    cycles: int = 30,
    sample_every: int = 5,
    dynamics: Optional[DynamicsConfig] = None,
    workload: Optional[PreparedWorkload] = None,
) -> NetworkUpdateResult:
    """Track how fast the lazy mode integrates the new ideal neighbours."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale, num_queries=0)
    # The paper's change day (15% of users, ~8 new actions) barely moves the
    # ideal networks of a few-hundred-user population, so the default here is
    # a heavier day: enough users change enough actions for new ideal
    # neighbours to actually appear at small scale.
    dynamics = dynamics or DynamicsConfig(
        change_fraction=0.5,
        mean_new_actions=25,
        retag_probability=0.1,
        seed=scale.seed,
    )
    points = sorted({0, *range(sample_every, cycles + 1, sample_every), cycles})

    series: Dict[float, List[float]] = {}
    affected: Dict[float, int] = {}
    for lam in lambdas:
        storage = poisson_storage_distribution(
            workload.dataset.user_ids, lam, levels=scale.storage_levels, seed=scale.seed
        )
        simulation = converged_simulation(workload, storage=storage, account_traffic=False)
        generator = ProfileDynamicsGenerator(simulation.dataset, dynamics)
        change_day = generator.generate_day()
        simulation.apply_profile_changes(change_day)
        new_ideal = IdealNetworkIndex(simulation.dataset, size=scale.network_size)
        required = users_with_changed_networks(workload.ideal, new_ideal)
        affected[lam] = len(required)

        values: List[float] = []

        def measure() -> None:
            values.append(
                fraction_with_complete_new_network(
                    required, simulation.discovered_networks()
                )
            )

        measure()
        done = 0
        for point in points[1:]:
            simulation.run_lazy(point - done)
            done = point
            measure()
        series[lam] = values
    return NetworkUpdateResult(cycles=points, series=series, affected_users=affected)
