"""Figure 11: impact of massive user departures on top-k processing.

A fraction p of users leaves the system simultaneously, then the (still
online) queriers issue their queries.  Departed users cannot be gossiped
with, but their profiles survive as replicas on online users, so recall
degrades gracefully: the paper reports ~8/10 relevant items at p = 90%
(λ=1) after 10 cycles, better results at λ=4 (more replicas), and a small
fraction of queries that can never reach recall 1 because some profiles no
longer exist anywhere online (Figure 11c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..data.dynamics import massive_departure
from ..metrics.recall import fraction_below_full_recall, recall_per_cycle
from .report import format_series, format_table
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale, poisson_storage_distribution

#: Departure fractions plotted in the paper.
PAPER_DEPARTURES = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9)


@dataclass
class ChurnResult:
    """Recall series per departure fraction, per λ, plus Figure 11c."""

    cycles: List[int]
    #: lam -> departure fraction -> recall per cycle.
    recall_series: Dict[float, Dict[float, List[float]]]
    #: lam -> departure fraction -> fraction of queries below recall 1.
    incomplete_queries: Dict[float, Dict[float, float]]

    def final_recall(self, lam: float, departure: float) -> float:
        return self.recall_series[lam][departure][-1]

    def render(self) -> str:
        parts: List[str] = []
        for lam in sorted(self.recall_series):
            named = [
                (f"p={int(p * 100)}%", values)
                for p, values in sorted(self.recall_series[lam].items())
            ]
            parts.append(
                format_series(
                    "cycle",
                    self.cycles,
                    named,
                    title=f"Figure 11: average recall under churn (lambda={lam:g})",
                )
            )
        rows = []
        for lam in sorted(self.incomplete_queries):
            for p, fraction in sorted(self.incomplete_queries[lam].items()):
                rows.append([f"lambda={lam:g}", f"{int(p * 100)}%", f"{fraction * 100:.1f}%"])
        parts.append(
            format_table(
                ["scenario", "departures", "% queries unable to reach R10=1"],
                rows,
                title="Figure 11c: queries unable to reach full recall",
            )
        )
        return "\n\n".join(parts)


def run_churn(
    scale: Optional[ExperimentScale] = None,
    lambdas: Sequence[float] = (1.0, 4.0),
    departures: Sequence[float] = PAPER_DEPARTURES,
    cycles: int = 10,
    workload: Optional[PreparedWorkload] = None,
) -> ChurnResult:
    """Run the churn experiment for each (λ, departure fraction) pair."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale)
    queriers = [query.querier for query in workload.queries]

    recall_series: Dict[float, Dict[float, List[float]]] = {}
    incomplete: Dict[float, Dict[float, float]] = {}
    for lam in lambdas:
        storage = poisson_storage_distribution(
            workload.dataset.user_ids, lam, levels=scale.storage_levels, seed=scale.seed
        )
        recall_series[lam] = {}
        incomplete[lam] = {}
        for departure in departures:
            simulation = converged_simulation(workload, storage=storage, account_traffic=False)
            if departure > 0:
                event = massive_departure(
                    simulation.dataset,
                    fraction=departure,
                    seed=scale.seed + int(departure * 100),
                    protect=queriers,
                )
                simulation.depart_users(event.departing_users)
            sessions = simulation.issue_queries(workload.queries)
            simulation.run_eager(cycles, stop_when_idle=False)
            snapshots = {qid: s.snapshots for qid, s in sessions.items()}
            recall_series[lam][departure] = recall_per_cycle(
                snapshots, workload.references, cycles
            )
            final_results = {
                qid: (s.snapshots[-1].items if s.snapshots else [])
                for qid, s in sessions.items()
            }
            incomplete[lam][departure] = fraction_below_full_recall(
                final_results, workload.references
            )
    return ChurnResult(
        cycles=list(range(cycles + 1)),
        recall_series=recall_series,
        incomplete_queries=incomplete,
    )
