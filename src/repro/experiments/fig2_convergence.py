"""Figure 2: personal-network convergence speed in lazy mode.

Starting from cold personal networks (only random-view contacts), the lazy
gossip gradually discovers the ideal neighbours.  The experiment reports the
average success ratio -- fraction of the ideal personal network already
discovered, averaged over users -- per lazy cycle, for several uniform
storage budgets ``c``.  The paper's shape: larger ``c`` converges faster,
and even ``c = 10`` reaches ~68% of the ideal network by cycle 200.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..metrics.convergence import average_success_ratio
from ..p3q.protocol import P3QSimulation
from ..similarity.knn import IdealNetworkIndex
from .report import format_series
from .runner import build_config
from .scenarios import ExperimentScale


@dataclass
class ConvergenceResult:
    """Success-ratio series per storage budget."""

    cycles: List[int]
    series: Dict[int, List[float]]

    def final_ratio(self, storage: int) -> float:
        return self.series[storage][-1] if self.series[storage] else 0.0

    def render(self) -> str:
        named = [(f"c={c}", values) for c, values in sorted(self.series.items())]
        return format_series(
            "cycle", self.cycles, named, title="Figure 2: personal network convergence"
        )


def run_convergence(
    scale: Optional[ExperimentScale] = None,
    storages: Optional[Sequence[int]] = None,
    cycles: int = 30,
    sample_every: int = 5,
) -> ConvergenceResult:
    """Run the lazy-mode convergence experiment.

    ``sample_every`` controls how often (in cycles) the success ratio is
    measured; measuring is O(users x s) so sampling keeps the experiment
    cheap at larger scales.
    """
    scale = scale or ExperimentScale.small()
    storages = list(storages) if storages is not None else list(scale.storage_levels[:4])
    dataset = scale.build_dataset()
    ideal = IdealNetworkIndex(dataset, size=scale.network_size)

    sample_points = sorted({0, *range(sample_every, cycles + 1, sample_every), cycles})
    series: Dict[int, List[float]] = {}
    for storage in storages:
        config = build_config(scale, storage, account_traffic=False)
        simulation = P3QSimulation(dataset.copy(), config)
        simulation.bootstrap_random_views()
        ratios: List[float] = []

        def measure() -> None:
            ratios.append(
                average_success_ratio(ideal, simulation.discovered_networks())
            )

        measure()  # cycle 0: only random contacts known
        next_points = [p for p in sample_points if p > 0]
        done = 0
        for point in next_points:
            simulation.run_lazy(point - done)
            done = point
            measure()
        series[storage] = ratios
    return ConvergenceResult(cycles=sample_points, series=series)
