"""Figure 3: average recall per eager cycle for different split parameters α.

With small storage (the paper uses c = 10 profiles), the querier must collect
most contributions through eager gossip.  The split parameter α decides how
much of the remaining list the destination hands back to the initiator:
α = 0 forwards the query along a single path, α = 1 polls the querier's
neighbours one by one, and α = 0.5 balances both and converges fastest
(matching Theorem 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..metrics.recall import recall_per_cycle
from .report import format_series
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale

#: The α values plotted in Figure 3.
PAPER_ALPHAS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


@dataclass
class AlphaRecallResult:
    """Average recall per cycle for each α."""

    cycles: List[int]
    series: Dict[float, List[float]]
    storage: int

    def cycles_to_reach(self, alpha: float, threshold: float) -> Optional[int]:
        """First cycle at which the recall of ``alpha`` reaches ``threshold``."""
        for cycle, value in zip(self.cycles, self.series[alpha]):
            if value >= threshold:
                return cycle
        return None

    def render(self) -> str:
        named = [(f"a={alpha:g}", values) for alpha, values in sorted(self.series.items())]
        return format_series(
            "cycle",
            self.cycles,
            named,
            title=f"Figure 3: average recall vs cycles per alpha (c={self.storage})",
        )


def run_alpha_recall(
    scale: Optional[ExperimentScale] = None,
    alphas: Sequence[float] = PAPER_ALPHAS,
    storage: Optional[int] = None,
    cycles: int = 20,
    workload: Optional[PreparedWorkload] = None,
) -> AlphaRecallResult:
    """Run the α sweep on converged personal networks."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale)
    storage = storage if storage is not None else scale.storage_levels[0]

    series: Dict[float, List[float]] = {}
    for alpha in alphas:
        simulation = converged_simulation(
            workload, storage=storage, alpha=alpha, account_traffic=False
        )
        sessions = simulation.issue_queries(workload.queries)
        simulation.run_eager(cycles)
        snapshots = {qid: session.snapshots for qid, session in sessions.items()}
        series[alpha] = recall_per_cycle(snapshots, workload.references, cycles)
    return AlphaRecallResult(
        cycles=list(range(cycles + 1)), series=series, storage=storage
    )
