"""Figure 4: average recall per eager cycle for different storage budgets c.

With α fixed at its optimum (0.5), the storage budget decides how much of
the answer is available locally at cycle 0 and how many gossip cycles the
rest takes.  The paper's shape: every budget reaches recall 1 by cycle 10,
the first cycle brings the largest improvement, and larger budgets start
higher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..metrics.recall import recall_per_cycle
from .report import format_series
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale


@dataclass
class StorageRecallResult:
    """Average recall per cycle for each storage budget."""

    cycles: List[int]
    series: Dict[int, List[float]]
    alpha: float

    def recall_at(self, storage: int, cycle: int) -> float:
        return self.series[storage][cycle]

    def final_recall(self, storage: int) -> float:
        return self.series[storage][-1]

    def render(self) -> str:
        named = [(f"c={storage}", values) for storage, values in sorted(self.series.items())]
        return format_series(
            "cycle",
            self.cycles,
            named,
            title=f"Figure 4: average recall vs cycles per storage (alpha={self.alpha})",
        )


def run_storage_recall(
    scale: Optional[ExperimentScale] = None,
    storages: Optional[Sequence[int]] = None,
    alpha: float = 0.5,
    cycles: int = 10,
    workload: Optional[PreparedWorkload] = None,
) -> StorageRecallResult:
    """Run the storage sweep on converged personal networks."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale)
    storages = (
        list(storages) if storages is not None else list(scale.storage_levels[:6])
    )
    series: Dict[int, List[float]] = {}
    for storage in storages:
        simulation = converged_simulation(
            workload, storage=storage, alpha=alpha, account_traffic=False
        )
        sessions = simulation.issue_queries(workload.queries)
        simulation.run_eager(cycles)
        snapshots = {qid: session.snapshots for qid, session in sessions.items()}
        series[storage] = recall_per_cycle(snapshots, workload.references, cycles)
    return StorageRecallResult(
        cycles=list(range(cycles + 1)), series=series, alpha=alpha
    )
