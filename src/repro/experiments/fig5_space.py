"""Figure 5: per-user storage requirement for each storage budget c.

The storage requirement of a user is the total length (number of tagging
actions) of the neighbour profiles she stores.  The paper plots users ranked
by ascending requirement, one curve per c, and notes that storing 10 profiles
needs only ~6.8% of the space required to store the whole personal network
while 500 profiles already need ~73.6%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..gossip.sizes import DIGEST_BYTES, profile_storage_bytes
from ..metrics.bandwidth import StorageRequirement, storage_requirements
from .report import format_table
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale


@dataclass
class SpaceResult:
    """Per-storage-budget storage statistics."""

    #: storage budget -> per-user requirements ranked ascending (the curve).
    curves: Dict[int, List[StorageRequirement]]
    #: storage budget -> total stored profile length over all users.
    totals: Dict[int, int]
    #: total profile length when storing the *whole* personal network.
    full_network_total: int
    #: constant digest storage per user in bytes.
    digest_bytes_per_user: int

    def fraction_of_full(self, storage: int) -> float:
        """Fraction of the store-everything footprint used by this budget."""
        if self.full_network_total == 0:
            return 0.0
        return self.totals[storage] / self.full_network_total

    def rows(self) -> List[List[object]]:
        rows = []
        for storage in sorted(self.curves):
            lengths = [r.stored_profile_length for r in self.curves[storage]]
            mean_len = sum(lengths) / len(lengths) if lengths else 0.0
            max_len = max(lengths) if lengths else 0
            rows.append(
                [
                    storage,
                    round(mean_len, 1),
                    max_len,
                    round(profile_storage_bytes(int(mean_len)) / 1024.0, 1),
                    f"{self.fraction_of_full(storage) * 100:.1f}%",
                ]
            )
        return rows

    def render(self) -> str:
        return format_table(
            ["c", "mean profile length stored", "max", "mean KB/user", "% of full network"],
            self.rows(),
            title="Figure 5: space requirement per stored-profile budget",
        )


def run_space_requirements(
    scale: Optional[ExperimentScale] = None,
    storages: Optional[Sequence[int]] = None,
    workload: Optional[PreparedWorkload] = None,
) -> SpaceResult:
    """Measure storage requirements on converged personal networks."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale, num_queries=0)
    storages = list(storages) if storages is not None else list(scale.storage_levels)

    profile_lengths = {
        profile.user_id: len(profile) for profile in workload.dataset.profiles()
    }
    full_total = 0
    for user_id in workload.dataset.user_ids:
        full_total += sum(
            profile_lengths[uid] for uid in workload.ideal.neighbour_ids(user_id)
        )

    curves: Dict[int, List[StorageRequirement]] = {}
    totals: Dict[int, int] = {}
    for storage in storages:
        simulation = converged_simulation(workload, storage=storage, account_traffic=False)
        stored_lengths = {
            uid: network.stored_profile_length()
            for uid, network in simulation.personal_networks().items()
        }
        stored_counts = {
            uid: len(network.stored_ids())
            for uid, network in simulation.personal_networks().items()
        }
        curves[storage] = storage_requirements(stored_lengths, stored_counts)
        totals[storage] = sum(stored_lengths.values())
    return SpaceResult(
        curves=curves,
        totals=totals,
        full_network_total=full_total,
        digest_bytes_per_user=(scale.network_size + scale.random_view_size) * DIGEST_BYTES,
    )
