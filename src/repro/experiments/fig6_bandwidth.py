"""Figure 6 and the Section 3.5 bandwidth summary.

When a query is gossiped, three kinds of information travel: the forwarded
remaining lists, the returned remaining lists (both piggybacked on gossip
messages) and the partial result lists sent straight to the querier (one
message each, dominating the volume).  Figure 6 plots the per-query byte
breakdown in the λ=1 heterogeneous scenario; Section 3.5 summarizes the
average per-query volume (573 KB at λ=1 vs 360 KB at λ=4), the number of
partial-result messages (228 vs 70) and the per-user bandwidth in Kbps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..metrics.bandwidth import (
    QueryTraffic,
    average_partial_result_messages,
    average_query_bytes,
    maintenance_bandwidth_bps,
    query_bandwidth_bps,
    query_traffic_breakdown,
)
from .report import format_table
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale, poisson_storage_distribution


@dataclass
class BandwidthResult:
    """Per-λ traffic breakdown for query processing."""

    rows_by_lambda: Dict[float, List[QueryTraffic]]
    average_bytes: Dict[float, float]
    average_messages: Dict[float, float]
    query_bandwidth_bps: Dict[float, float]
    maintenance_bandwidth_bps: Dict[float, float]

    def render(self) -> str:
        rows = []
        for lam in sorted(self.rows_by_lambda):
            rows.append(
                [
                    f"lambda={lam:g}",
                    round(self.average_bytes[lam] / 1024.0, 1),
                    round(self.average_messages[lam], 1),
                    round(self.query_bandwidth_bps[lam] / 1000.0, 1),
                    round(self.maintenance_bandwidth_bps[lam] / 1000.0, 1),
                ]
            )
        return format_table(
            [
                "scenario",
                "avg KB per query",
                "avg partial-result msgs",
                "query Kbps/user",
                "maintenance Kbps/user",
            ],
            rows,
            title="Figure 6 / Section 3.5: bandwidth for query processing",
        )


def run_query_bandwidth(
    scale: Optional[ExperimentScale] = None,
    lambdas: Optional[List[float]] = None,
    cycles: int = 12,
    lazy_cycles: int = 3,
    workload: Optional[PreparedWorkload] = None,
) -> BandwidthResult:
    """Measure per-query traffic in the heterogeneous storage scenarios."""
    scale = scale or ExperimentScale.small()
    lambdas = lambdas if lambdas is not None else [1.0, 4.0]
    workload = workload or prepare_workload(scale)

    rows_by_lambda: Dict[float, List[QueryTraffic]] = {}
    average_bytes: Dict[float, float] = {}
    average_messages: Dict[float, float] = {}
    query_bps: Dict[float, float] = {}
    maintenance_bps: Dict[float, float] = {}
    for lam in lambdas:
        storage = poisson_storage_distribution(
            workload.dataset.user_ids,
            lam,
            levels=scale.storage_levels,
            seed=scale.seed,
        )
        simulation = converged_simulation(workload, storage=storage)
        # A few lazy cycles first so maintenance traffic is measurable too.
        simulation.run_lazy(lazy_cycles)
        simulation.issue_queries(workload.queries)
        simulation.run_eager(cycles)
        rows = query_traffic_breakdown(simulation.stats)
        rows_by_lambda[lam] = rows
        average_bytes[lam] = average_query_bytes(rows)
        average_messages[lam] = average_partial_result_messages(rows)
        config = simulation.config
        query_bps[lam] = query_bandwidth_bps(
            simulation.stats,
            seconds_per_cycle=config.eager_cycle_seconds,
            num_nodes=max(1, len(workload.queries)),
        )
        maintenance_bps[lam] = maintenance_bandwidth_bps(
            simulation.stats,
            seconds_per_cycle=config.lazy_cycle_seconds,
            num_nodes=len(workload.dataset),
        )
    return BandwidthResult(
        rows_by_lambda=rows_by_lambda,
        average_bytes=average_bytes,
        average_messages=average_messages,
        query_bandwidth_bps=query_bps,
        maintenance_bandwidth_bps=maintenance_bps,
    )
