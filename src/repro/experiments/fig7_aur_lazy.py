"""Figure 7: average update rate (AUR) under lazy gossip after profile changes.

All changing users update their profiles simultaneously; the lazy gossip then
propagates the new versions to the replicas stored in personal networks.  The
AUR is measured per lazy cycle, (a) for uniform storage budgets and (b) for
the heterogeneous Poisson scenarios.  The paper's shape: small budgets are
refreshed quickly (>95% within 30 cycles for c = 10/20), large budgets lag
(≈40% after 100 cycles for c = 500/1000), and λ=1 beats λ=4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..data.dynamics import DynamicsConfig, ProfileDynamicsGenerator
from ..metrics.freshness import average_update_rate
from .report import format_series
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale, poisson_storage_distribution

ScenarioSpec = Union[int, float]  # uniform budget (int) or Poisson λ (float label)


@dataclass
class AurLazyResult:
    """AUR per lazy cycle, one series per scenario."""

    cycles: List[int]
    uniform_series: Dict[int, List[float]]
    poisson_series: Dict[float, List[float]]

    def final_aur(self, storage: int) -> float:
        return self.uniform_series[storage][-1]

    def render(self) -> str:
        named = [(f"c={c}", v) for c, v in sorted(self.uniform_series.items())]
        named += [(f"lambda={lam:g}", v) for lam, v in sorted(self.poisson_series.items())]
        return format_series(
            "cycle", self.cycles, named, title="Figure 7: AUR evolution in lazy mode"
        )


def _measure_aur_over_cycles(
    simulation,
    changed_users,
    cycles: int,
    sample_every: int,
) -> List[float]:
    points = sorted({0, *range(sample_every, cycles + 1, sample_every), cycles})
    values: List[float] = []

    def measure() -> None:
        values.append(
            average_update_rate(
                simulation.stored_replica_versions(),
                simulation.current_profile_versions(),
                set(changed_users),
            )
        )

    measure()
    done = 0
    for point in points[1:]:
        simulation.run_lazy(point - done)
        done = point
        measure()
    return values


def run_aur_lazy(
    scale: Optional[ExperimentScale] = None,
    storages: Optional[Sequence[int]] = None,
    lambdas: Sequence[float] = (1.0, 4.0),
    cycles: int = 20,
    sample_every: int = 5,
    dynamics: Optional[DynamicsConfig] = None,
    workload: Optional[PreparedWorkload] = None,
) -> AurLazyResult:
    """Run the lazy-mode freshness experiment (Figures 7a and 7b)."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale, num_queries=0)
    storages = list(storages) if storages is not None else list(scale.storage_levels[:4])
    dynamics = dynamics or DynamicsConfig(seed=scale.seed)
    points = sorted({0, *range(sample_every, cycles + 1, sample_every), cycles})

    uniform_series: Dict[int, List[float]] = {}
    for storage in storages:
        simulation = converged_simulation(workload, storage=storage, account_traffic=False)
        generator = ProfileDynamicsGenerator(simulation.dataset, dynamics)
        change_day = generator.generate_day()
        simulation.apply_profile_changes(change_day)
        uniform_series[storage] = _measure_aur_over_cycles(
            simulation, change_day.changed_users, cycles, sample_every
        )

    poisson_series: Dict[float, List[float]] = {}
    for lam in lambdas:
        storage_map = poisson_storage_distribution(
            workload.dataset.user_ids, lam, levels=scale.storage_levels, seed=scale.seed
        )
        simulation = converged_simulation(workload, storage=storage_map, account_traffic=False)
        generator = ProfileDynamicsGenerator(simulation.dataset, dynamics)
        change_day = generator.generate_day()
        simulation.apply_profile_changes(change_day)
        poisson_series[lam] = _measure_aur_over_cycles(
            simulation, change_day.changed_users, cycles, sample_every
        )

    return AurLazyResult(
        cycles=points,
        uniform_series=uniform_series,
        poisson_series=poisson_series,
    )
