"""Figure 8: number of users reached by a query.

In the heterogeneous scenarios the eager gossip of one query touches a
limited portion of the network: the paper measures on average 256 users per
query at λ=1 (most users store little, so many hops are needed) and 75 at
λ=4.  This experiment runs the query workload and counts, per query, how
many distinct users received the query gossip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .report import format_table
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale, poisson_storage_distribution


@dataclass
class ReachResult:
    """Per-λ distribution of users reached per query."""

    reached_by_lambda: Dict[float, List[int]]

    def average(self, lam: float) -> float:
        values = self.reached_by_lambda[lam]
        return sum(values) / len(values) if values else 0.0

    def maximum(self, lam: float) -> int:
        values = self.reached_by_lambda[lam]
        return max(values) if values else 0

    def render(self) -> str:
        rows = []
        for lam in sorted(self.reached_by_lambda):
            values = sorted(self.reached_by_lambda[lam], reverse=True)
            median = values[len(values) // 2] if values else 0
            rows.append(
                [f"lambda={lam:g}", round(self.average(lam), 1), median, self.maximum(lam)]
            )
        return format_table(
            ["scenario", "avg users reached", "median", "max"],
            rows,
            title="Figure 8: number of users reached by a query",
        )


def run_users_reached(
    scale: Optional[ExperimentScale] = None,
    lambdas: Sequence[float] = (1.0, 4.0),
    cycles: int = 12,
    workload: Optional[PreparedWorkload] = None,
) -> ReachResult:
    """Count users reached by each query in the heterogeneous scenarios."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale)
    reached: Dict[float, List[int]] = {}
    for lam in lambdas:
        storage = poisson_storage_distribution(
            workload.dataset.user_ids, lam, levels=scale.storage_levels, seed=scale.seed
        )
        simulation = converged_simulation(workload, storage=storage)
        simulation.issue_queries(workload.queries)
        simulation.run_eager(cycles)
        reached[lam] = [
            len(simulation.users_reached(query.query_id)) for query in workload.queries
        ]
    return ReachResult(reached_by_lambda=reached)
