"""Figure 9: freshness acceleration by eager gossip.

Between two lazy cycles, a user issues a series of consecutive queries; the
eager gossip those queries generate refreshes the stored replicas of every
user it reaches.  The experiment measures the AUR restricted to the users
reached by the queries, as a function of how many queries were issued.  The
paper's shape (λ=1): a single query already refreshes ~24% of the changed
replicas among reached users, ten queries push past 60%, and the curve
plateaus because changes of users never reached by queries are only
propagated by the lazy mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..data.dynamics import DynamicsConfig, ProfileDynamicsGenerator
from ..data.queries import QueryWorkloadGenerator
from ..metrics.freshness import average_update_rate
from .report import format_series
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale, poisson_storage_distribution


@dataclass
class AurEagerResult:
    """AUR of reached users after each consecutive query."""

    query_counts: List[int]
    aur_series: List[float]
    reached_counts: List[int]

    def final_aur(self) -> float:
        return self.aur_series[-1] if self.aur_series else 1.0

    def render(self) -> str:
        return format_series(
            "queries",
            self.query_counts,
            [("AUR(reached users)", self.aur_series), ("reached users", self.reached_counts)],
            title="Figure 9: AUR evolution in eager mode",
        )


def run_aur_eager(
    scale: Optional[ExperimentScale] = None,
    lam: float = 1.0,
    num_queries: int = 10,
    cycles_per_query: int = 8,
    querier: Optional[int] = None,
    dynamics: Optional[DynamicsConfig] = None,
    workload: Optional[PreparedWorkload] = None,
) -> AurEagerResult:
    """Issue consecutive queries from one user and track replica freshness."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale, num_queries=0)
    dynamics = dynamics or DynamicsConfig(seed=scale.seed)

    storage = poisson_storage_distribution(
        workload.dataset.user_ids, lam, levels=scale.storage_levels, seed=scale.seed
    )
    simulation = converged_simulation(workload, storage=storage)
    generator = ProfileDynamicsGenerator(simulation.dataset, dynamics)
    change_day = generator.generate_day()
    simulation.apply_profile_changes(change_day)
    changed = set(change_day.changed_users)

    querier_id = querier if querier is not None else workload.dataset.user_ids[0]
    query_generator = QueryWorkloadGenerator(simulation.dataset, seed=scale.seed + 1)

    reached_so_far: Set[int] = set()
    query_counts: List[int] = []
    aur_series: List[float] = []
    reached_counts: List[int] = []
    for index in range(num_queries):
        query = query_generator.query_for(querier_id, query_id=10_000 + index)
        if query is None:
            break
        simulation.issue_queries([query])
        simulation.run_eager(cycles_per_query)
        reached_so_far |= simulation.users_reached(query.query_id)
        aur = average_update_rate(
            simulation.stored_replica_versions(),
            simulation.current_profile_versions(),
            changed,
            restrict_to=reached_so_far,
        )
        query_counts.append(index + 1)
        aur_series.append(aur)
        reached_counts.append(len(reached_so_far))
    return AurEagerResult(
        query_counts=query_counts,
        aur_series=aur_series,
        reached_counts=reached_counts,
    )
