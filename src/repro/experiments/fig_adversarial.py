"""Adversarial-condition figures: partition-and-heal, free-rider sweep.

Both experiments go beyond the paper's evaluation (which assumes a
well-behaved network) and exercise the fault-injection conditions of
:mod:`repro.simulator.conditions` end to end:

* **partition-and-heal** -- the converged system answers the query workload
  while a seeded network split cuts the population into components for a
  window of eager cycles.  Messages across the cut are dropped (synchronous
  sends, charged to the sender like any loss) or held in flight until the
  heal cycle (deferred envelopes), so the figure shows recall stalling
  during the cut and recovering after the heal, alongside the per-cycle
  byte series of both runs and the number of cut-dropped messages.

* **free-rider sweep** -- a seeded fraction of the population keeps
  gossiping digests but never serves common-items requests, full-profile
  requests or query forwards (forwarded remaining lists bounce back whole).
  The sweep reports recall per eager cycle, the fraction of queries unable
  to reach full recall and the average bytes spent per query for each
  free-rider fraction.

Runs are fully deterministic: every condition draws from its own seeded RNG
stream, so a zero-width partition window or a 0.0 free-rider fraction is
bit-identical to the unconditioned system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..metrics.bandwidth import average_query_bytes, query_traffic_breakdown
from ..metrics.recall import fraction_below_full_recall, recall_per_cycle
from ..simulator.conditions import PartitionSpec
from .report import format_series, format_table
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale

#: Free-rider fractions swept by default.
DEFAULT_FREE_RIDER_FRACTIONS = (0.0, 0.1, 0.25, 0.5, 0.75)


@dataclass
class PartitionHealResult:
    """Recall and bandwidth series with and without a partition window."""

    cycles: List[int]
    #: series name -> average recall per eager cycle.
    recall_series: Dict[str, List[float]]
    #: series name -> bytes spent in each eager cycle.
    bytes_series: Dict[str, List[int]]
    partition: PartitionSpec
    #: Messages dropped at the cut (synchronous sends across components).
    cut_drops: int
    #: series name -> fraction of queries below recall 1 at the horizon.
    incomplete_queries: Dict[str, float]

    def final_recall(self, name: str) -> float:
        return self.recall_series[name][-1]

    def render(self) -> str:
        window = (
            f"{self.partition.components} components, cycles "
            f"{self.partition.split_cycle}..{self.partition.heal_cycle - 1}"
        )
        recall = format_series(
            "cycle",
            self.cycles,
            sorted(self.recall_series.items()),
            title=f"Partition and heal: average recall vs eager cycles ({window})",
        )
        bandwidth = format_series(
            "cycle",
            self.cycles[1:],
            [
                (name, [f"{value / 1024:.1f}" for value in values])
                for name, values in sorted(self.bytes_series.items())
            ],
            title="Partition and heal: KB spent per eager cycle",
        )
        rows = [
            [
                name,
                f"{self.final_recall(name):.3f}",
                f"{self.incomplete_queries[name] * 100:.1f}%",
            ]
            for name in sorted(self.recall_series)
        ]
        table = format_table(
            ["run", "final recall", "% queries below R=1"],
            rows,
            title=f"Partition and heal: end-of-horizon summary ({self.cut_drops} messages dropped at the cut)",
        )
        return recall + "\n\n" + bandwidth + "\n\n" + table


def run_partition_heal(
    scale: Optional[ExperimentScale] = None,
    cycles: int = 12,
    partition: Optional[PartitionSpec] = None,
    workload: Optional[PreparedWorkload] = None,
) -> PartitionHealResult:
    """Run the query workload with and without a partition window."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale)
    storage = scale.storage_levels[len(scale.storage_levels) // 2]
    if partition is None:
        # Split once queries are in flight, heal with cycles left to recover.
        partition = PartitionSpec(
            components=2, split_cycle=2, heal_cycle=2 + max(1, cycles // 3)
        )

    recall_series: Dict[str, List[float]] = {}
    bytes_series: Dict[str, List[int]] = {}
    incomplete: Dict[str, float] = {}
    cut_drops = 0
    variants = [
        ("healthy", {}),
        ("partitioned", {"transport": "conditioned", "partition": partition}),
    ]
    for name, overrides in variants:
        simulation = converged_simulation(
            workload, storage=storage, config_overrides=overrides
        )
        sessions = simulation.issue_queries(workload.queries)
        simulation.run_eager(cycles, stop_when_idle=False)
        snapshots = {qid: s.snapshots for qid, s in sessions.items()}
        recall_series[name] = recall_per_cycle(snapshots, workload.references, cycles)
        by_cycle = simulation.stats.bytes_by_cycle()
        bytes_series[name] = [by_cycle.get(cycle, 0) for cycle in range(cycles)]
        final_results = {
            qid: (s.snapshots[-1].items if s.snapshots else [])
            for qid, s in sessions.items()
        }
        incomplete[name] = fraction_below_full_recall(final_results, workload.references)
        if overrides:
            cut_drops = simulation.network.transport.cut_drops
    return PartitionHealResult(
        cycles=list(range(cycles + 1)),
        recall_series=recall_series,
        bytes_series=bytes_series,
        partition=partition,
        cut_drops=cut_drops,
        incomplete_queries=incomplete,
    )


@dataclass
class FreeRiderSweepResult:
    """Recall and bandwidth per free-rider fraction."""

    cycles: List[int]
    #: fraction -> average recall per eager cycle.
    recall_series: Dict[float, List[float]]
    #: fraction -> fraction of queries below recall 1 at the horizon.
    incomplete_queries: Dict[float, float]
    #: fraction -> average bytes spent per query.
    avg_query_bytes: Dict[float, float]

    def final_recall(self, fraction: float) -> float:
        return self.recall_series[fraction][-1]

    def render(self) -> str:
        named = [
            (f"riders={round(fraction * 100)}%", values)
            for fraction, values in sorted(self.recall_series.items())
        ]
        series = format_series(
            "cycle",
            self.cycles,
            named,
            title="Free-rider sweep: average recall vs eager cycles per rider fraction",
        )
        rows = []
        for fraction in sorted(self.recall_series):
            rows.append(
                [
                    f"{round(fraction * 100)}%",
                    f"{self.final_recall(fraction):.3f}",
                    f"{self.incomplete_queries[fraction] * 100:.1f}%",
                    f"{self.avg_query_bytes[fraction] / 1024:.1f}",
                ]
            )
        table = format_table(
            ["rider fraction", "final recall", "% queries below R=1", "avg KB per query"],
            rows,
            title="Free-rider sweep: end-of-horizon summary",
        )
        return series + "\n\n" + table


def run_free_rider_sweep(
    scale: Optional[ExperimentScale] = None,
    fractions: Sequence[float] = DEFAULT_FREE_RIDER_FRACTIONS,
    cycles: int = 12,
    workload: Optional[PreparedWorkload] = None,
) -> FreeRiderSweepResult:
    """Run the query workload once per free-rider fraction."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale)
    storage = scale.storage_levels[len(scale.storage_levels) // 2]

    recall_series: Dict[float, List[float]] = {}
    incomplete: Dict[float, float] = {}
    avg_bytes: Dict[float, float] = {}
    for fraction in fractions:
        simulation = converged_simulation(
            workload,
            storage=storage,
            config_overrides={"free_rider_fraction": float(fraction)},
        )
        sessions = simulation.issue_queries(workload.queries)
        simulation.run_eager(cycles, stop_when_idle=False)
        snapshots = {qid: s.snapshots for qid, s in sessions.items()}
        recall_series[fraction] = recall_per_cycle(
            snapshots, workload.references, cycles
        )
        final_results = {
            qid: (s.snapshots[-1].items if s.snapshots else [])
            for qid, s in sessions.items()
        }
        incomplete[fraction] = fraction_below_full_recall(
            final_results, workload.references
        )
        avg_bytes[fraction] = average_query_bytes(
            query_traffic_breakdown(simulation.stats)
        )
    return FreeRiderSweepResult(
        cycles=list(range(cycles + 1)),
        recall_series=recall_series,
        incomplete_queries=incomplete,
        avg_query_bytes=avg_bytes,
    )
