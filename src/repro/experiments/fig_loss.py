"""Loss sweep: query processing under per-message packet loss.

This experiment goes beyond the paper: the published evaluation assumes a
lossless network (PeerSim's direct exchanges), while the transport layer
lets the same protocol run under packet loss.  For each drop probability the
converged system answers the shared query workload over a
:class:`~repro.simulator.transport.LossyTransport`; the sweep reports

* average recall per eager cycle (how loss slows convergence to the exact
  answer -- dropped forwards are retried, dropped returns lose their
  α share for good, dropped partial results are pure recall loss);
* the fraction of queries unable to reach full recall within the horizon;
* the average bytes spent per query (bytes are accounted at *send* time, so
  lost messages still cost their sender bandwidth; lost α shares also
  *remove* future forwarding work, so heavy loss can spend fewer bytes to
  produce a worse answer).

Runs are fully deterministic: the drop stream is seeded independently of the
node RNG streams, so a 0.0 drop rate reproduces the direct-transport figures
exactly and any other rate is reproducible bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..metrics.bandwidth import average_query_bytes, query_traffic_breakdown
from ..metrics.recall import fraction_below_full_recall, recall_per_cycle
from .report import format_series, format_table
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale

#: Per-message drop probabilities swept by default.
DEFAULT_LOSS_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)


@dataclass
class LossSweepResult:
    """Recall and bandwidth series per drop probability."""

    cycles: List[int]
    #: loss rate -> average recall per eager cycle.
    recall_series: Dict[float, List[float]]
    #: loss rate -> fraction of queries below recall 1 at the horizon.
    incomplete_queries: Dict[float, float]
    #: loss rate -> average bytes spent per query (sender-side accounting).
    avg_query_bytes: Dict[float, float]

    def final_recall(self, rate: float) -> float:
        return self.recall_series[rate][-1]

    def render(self) -> str:
        named = [
            (f"loss={round(rate * 100)}%", values)
            for rate, values in sorted(self.recall_series.items())
        ]
        series = format_series(
            "cycle",
            self.cycles,
            named,
            title="Loss sweep: average recall vs eager cycles per drop probability",
        )
        rows = []
        for rate in sorted(self.recall_series):
            rows.append(
                [
                    f"{round(rate * 100)}%",
                    f"{self.final_recall(rate):.3f}",
                    f"{self.incomplete_queries[rate] * 100:.1f}%",
                    f"{self.avg_query_bytes[rate] / 1024:.1f}",
                ]
            )
        table = format_table(
            ["drop rate", "final recall", "% queries below R=1", "avg KB per query"],
            rows,
            title="Loss sweep: end-of-horizon summary",
        )
        return series + "\n\n" + table


def run_loss_sweep(
    scale: Optional[ExperimentScale] = None,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    cycles: int = 12,
    workload: Optional[PreparedWorkload] = None,
) -> LossSweepResult:
    """Run the query workload once per drop probability."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale)
    storage = scale.storage_levels[len(scale.storage_levels) // 2]

    recall_series: Dict[float, List[float]] = {}
    incomplete: Dict[float, float] = {}
    avg_bytes: Dict[float, float] = {}
    for rate in loss_rates:
        simulation = converged_simulation(
            workload,
            storage=storage,
            config_overrides={"transport": "lossy", "loss_rate": float(rate)},
        )
        sessions = simulation.issue_queries(workload.queries)
        simulation.run_eager(cycles, stop_when_idle=False)
        snapshots = {qid: s.snapshots for qid, s in sessions.items()}
        recall_series[rate] = recall_per_cycle(snapshots, workload.references, cycles)
        final_results = {
            qid: (s.snapshots[-1].items if s.snapshots else [])
            for qid, s in sessions.items()
        }
        incomplete[rate] = fraction_below_full_recall(final_results, workload.references)
        avg_bytes[rate] = average_query_bytes(query_traffic_breakdown(simulation.stats))
    return LossSweepResult(
        cycles=list(range(cycles + 1)),
        recall_series=recall_series,
        incomplete_queries=incomplete,
        avg_query_bytes=avg_bytes,
    )
