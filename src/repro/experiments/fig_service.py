"""fig-service: the live asyncio runtime answering a query workload.

Not a figure from the paper -- a structural experiment for the service
mode (ROADMAP item 2): run P3Q as real concurrent node tasks exchanging
serialized frames, audit the recorded wire trace with the simtest
invariant checkers, and report per-query recall/coverage plus bytes by
message kind.  Unlike the cycle-engine experiments the numbers depend on
wall-clock scheduling (timers race real queries), so this report is
**not** golden-pinned; what must hold on every run is the invariant audit
and that queries complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from .report import format_table
from .runner import PreparedWorkload
from .scenarios import ExperimentScale

#: Service runs are wall-clock bound: cap the deployment size so the
#: experiment stays in the seconds range at every scale.
MAX_SERVICE_NODES = 50
MAX_SERVICE_QUERIES = 8


@dataclass
class ServiceModeResult:
    """The demo report of one live service run."""

    report: Dict[str, Any]

    def render(self) -> str:
        report = self.report
        rows = []
        for row in report["queries"]:
            rows.append(
                [
                    str(row["query_id"]),
                    str(row["querier"]),
                    "yes" if row["closed"] else "no",
                    f"{row['coverage']:.2f}",
                    f"{row['recall']:.3f}",
                ]
            )
        table = format_table(
            ["query", "querier", "completed", "coverage", "recall"],
            rows,
            title=(
                f"Service mode: {report['num_users']} asyncio nodes, "
                f"{report['wire']} wire"
            ),
        )
        lines = [
            table,
            "",
            f"completed: {report['completed']}/{report['num_queries']}  "
            f"mean recall: {report['mean_recall']:.3f}  "
            f"bytes on the wire: {report['bytes_total']}",
        ]
        if report["invariant_error"] is not None:
            lines.append(f"INVARIANT VIOLATION: {report['invariant_error']}")
        else:
            lines.append("invariants passed: " + ", ".join(report["invariants"]))
        return "\n".join(lines)


def run_service_mode(
    scale: Optional[ExperimentScale] = None,
    workload: Optional[PreparedWorkload] = None,
) -> ServiceModeResult:
    """One live service run sized from the experiment scale.

    The service builds its own (small) workload: the run is wall-clock
    bound, so it uses a capped node count instead of the shared
    engine-scale workload (``workload`` is accepted for registry symmetry
    and ignored).
    """
    from ..service.demo import run_demo_sync

    scale = scale or ExperimentScale.small()
    report = run_demo_sync(
        num_users=min(scale.num_users, MAX_SERVICE_NODES),
        num_queries=min(scale.num_queries, MAX_SERVICE_QUERIES),
        seed=scale.seed,
    )
    return ServiceModeResult(report=report)
