"""Serving tradeoff: answer quality vs waiting time at the querier.

The paper lets the querier consult coverage (the fraction of her personal
network already contributing) and stop whenever the current results look
good enough.  This experiment pins what that early stop costs: for a range
of coverage cutoffs it reads, per query, the *first* per-cycle snapshot
whose coverage reached the cutoff, and reports

* the fraction of queries that reached the cutoff within the horizon;
* the latency in eager cycles from issue to that snapshot (p50 / p95 over
  the queries that met the cutoff);
* the average recall of the results displayed at that snapshot against the
  centralized reference.

Together these are the recall-vs-latency curve the serving harness's
abandonment cutoff trades along: lower cutoffs answer cycles earlier with
partial results, coverage 1 waits for the exact answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..metrics.recall import recall
from ..serving.driver import percentile
from .report import format_table
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale

#: Coverage cutoffs swept by default (1.0 is the exact-answer baseline).
DEFAULT_COVERAGE_CUTOFFS = (0.5, 0.7, 0.9, 1.0)


@dataclass
class ServingTradeoffResult:
    """Per-cutoff latency and recall of coverage-triggered early answers."""

    cutoffs: List[float]
    #: cutoff -> fraction of queries whose coverage reached it in time.
    fraction_met: Dict[float, float]
    #: cutoff -> p50 / p95 issue-to-cutoff latency in cycles (met queries).
    latency_p50: Dict[float, float]
    latency_p95: Dict[float, float]
    #: cutoff -> average recall of the snapshot displayed at the cutoff.
    avg_recall: Dict[float, float]

    def render(self) -> str:
        rows = []
        for cutoff in self.cutoffs:
            rows.append(
                [
                    f"{cutoff:.2f}",
                    f"{self.fraction_met[cutoff] * 100:.1f}%",
                    f"{self.latency_p50[cutoff]:.0f}",
                    f"{self.latency_p95[cutoff]:.0f}",
                    f"{self.avg_recall[cutoff]:.3f}",
                ]
            )
        return format_table(
            ["coverage cutoff", "% queries met", "p50 cycles", "p95 cycles", "avg recall"],
            rows,
            title="Serving tradeoff: latency and recall at coverage cutoffs",
        )


def run_serving_tradeoff(
    scale: Optional[ExperimentScale] = None,
    cutoffs: Sequence[float] = DEFAULT_COVERAGE_CUTOFFS,
    cycles: int = 12,
    workload: Optional[PreparedWorkload] = None,
) -> ServingTradeoffResult:
    """One converged run, post-processed per coverage cutoff."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale)
    storage = scale.storage_levels[len(scale.storage_levels) // 2]

    simulation = converged_simulation(workload, storage=storage)
    sessions = simulation.issue_queries(workload.queries)
    simulation.run_eager(cycles, stop_when_idle=False)

    fraction_met: Dict[float, float] = {}
    latency_p50: Dict[float, float] = {}
    latency_p95: Dict[float, float] = {}
    avg_recall: Dict[float, float] = {}
    for cutoff in cutoffs:
        latencies: List[float] = []
        recalls: List[float] = []
        for query_id, session in sessions.items():
            hit = next(
                (s for s in session.snapshots if s.coverage >= cutoff), None
            )
            if hit is None:
                continue
            latencies.append(hit.cycle - session.issued_cycle)
            recalls.append(recall(hit.items, workload.references.get(query_id, ())))
        total = len(sessions)
        fraction_met[cutoff] = len(latencies) / total if total else 0.0
        latency_p50[cutoff] = percentile(latencies, 50)
        latency_p95[cutoff] = percentile(latencies, 95)
        avg_recall[cutoff] = sum(recalls) / len(recalls) if recalls else 0.0
    return ServingTradeoffResult(
        cutoffs=list(cutoffs),
        fraction_met=fraction_met,
        latency_p50=latency_p50,
        latency_p95=latency_p95,
        avg_recall=avg_recall,
    )
