"""Plain-text rendering of experiment results.

Every experiment runner returns structured rows/series; this module turns
them into the aligned text tables that the benchmark harness prints, so that
"the same rows/series the paper reports" are visible in the bench output and
in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = "") -> str:
    """Render an aligned text table."""
    str_rows: List[List[str]] = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    label_header: str,
    x_values: Sequence[Cell],
    series: Sequence[tuple],
    title: str = "",
) -> str:
    """Render several named series over a shared x axis.

    ``series`` is a sequence of ``(name, values)`` pairs, each ``values``
    aligned with ``x_values``.
    """
    headers = [label_header] + [name for name, _ in series]
    rows = []
    for i, x in enumerate(x_values):
        row: List[Cell] = [x]
        for _, values in series:
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)
