"""Shared helpers for the per-figure experiment runners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..baselines.centralized import CentralizedTopK
from ..data.models import Dataset
from ..data.queries import Query, QueryWorkloadGenerator
from ..p3q.config import P3QConfig, StorageSpec
from ..p3q.protocol import P3QSimulation
from ..similarity.knn import IdealNetworkIndex
from .scenarios import ExperimentScale


@dataclass
class PreparedWorkload:
    """A dataset plus everything the query experiments share."""

    scale: ExperimentScale
    dataset: Dataset
    ideal: IdealNetworkIndex
    centralized: CentralizedTopK
    queries: List[Query]
    #: query_id -> reference top-k items (recall = 1 results).
    references: Dict[int, List[int]]


def build_config(
    scale: ExperimentScale,
    storage: StorageSpec,
    alpha: float = 0.5,
    seed: Optional[int] = None,
    account_traffic: bool = True,
    three_step_exchange: bool = True,
) -> P3QConfig:
    """A :class:`P3QConfig` matching an experiment scale."""
    return P3QConfig(
        network_size=scale.network_size,
        storage=storage,
        random_view_size=scale.random_view_size,
        k=scale.k,
        alpha=alpha,
        digest_bits=scale.digest_bits,
        digest_hashes=scale.digest_hashes,
        seed=scale.seed if seed is None else seed,
        account_traffic=account_traffic,
        three_step_exchange=three_step_exchange,
    )


def prepare_workload(
    scale: ExperimentScale,
    dataset: Optional[Dataset] = None,
    num_queries: Optional[int] = None,
) -> PreparedWorkload:
    """Build the dataset, the ideal index, the query workload and references."""
    dataset = dataset if dataset is not None else scale.build_dataset()
    ideal = IdealNetworkIndex(dataset, size=scale.network_size)
    centralized = CentralizedTopK(dataset, network_size=scale.network_size, ideal=ideal)
    generator = QueryWorkloadGenerator(dataset, seed=scale.seed)
    count = num_queries if num_queries is not None else scale.num_queries
    queriers = dataset.user_ids[:count]
    queries = generator.generate(queriers)
    references = centralized.relevant_items(queries, k=scale.k)
    return PreparedWorkload(
        scale=scale,
        dataset=dataset,
        ideal=ideal,
        centralized=centralized,
        queries=queries,
        references=references,
    )


def converged_simulation(
    workload: PreparedWorkload,
    storage: StorageSpec,
    alpha: float = 0.5,
    seed: Optional[int] = None,
    account_traffic: bool = True,
    three_step_exchange: bool = True,
) -> P3QSimulation:
    """A warm-started simulation (personal networks already converged).

    The dataset is copied so that experiments mutating profiles (dynamics)
    or taking nodes offline (churn) never leak state into the shared
    workload.
    """
    config = build_config(
        workload.scale,
        storage,
        alpha=alpha,
        seed=seed,
        account_traffic=account_traffic,
        three_step_exchange=three_step_exchange,
    )
    simulation = P3QSimulation(workload.dataset.copy(), config)
    simulation.warm_start(ideal=None if _dataset_mutated(workload) else workload.ideal)
    simulation.bootstrap_random_views()
    return simulation


def _dataset_mutated(workload: PreparedWorkload) -> bool:
    """Warm-starting from the shared ideal index is only valid while the
    shared dataset has not been mutated; currently experiments copy the
    dataset before mutating, so the shared index stays valid."""
    return False


def recall_series_from_snapshots(
    snapshots_by_query: Mapping[int, Sequence[object]],
    references: Mapping[int, Sequence[int]],
    cycles: int,
) -> List[float]:
    """Average recall after cycles 0..cycles (thin wrapper for experiments)."""
    from ..metrics.recall import recall_per_cycle

    return recall_per_cycle(snapshots_by_query, references, cycles)
