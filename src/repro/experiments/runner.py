"""Shared helpers for the per-figure experiment runners.

Besides the workload/simulation builders this module hosts the **parallel
scenario runner**: :func:`run_experiments_parallel` fans independent
experiments out over a pool of worker processes (``--workers`` on the CLI).
Each worker rebuilds its own workload from the scale's seed, so results are
byte-identical to a serial run while wall-clock time scales with cores.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..baselines.centralized import CentralizedTopK
from ..data.models import Dataset
from ..data.queries import Query, QueryWorkloadGenerator
from ..p3q.config import P3QConfig, StorageSpec
from ..p3q.protocol import P3QSimulation
from ..similarity.knn import IdealNetworkIndex
from .scenarios import ExperimentScale


@dataclass
class PreparedWorkload:
    """A dataset plus everything the query experiments share."""

    scale: ExperimentScale
    dataset: Dataset
    ideal: IdealNetworkIndex
    centralized: CentralizedTopK
    queries: List[Query]
    #: query_id -> reference top-k items (recall = 1 results).
    references: Dict[int, List[int]]


def build_config(
    scale: ExperimentScale,
    storage: StorageSpec,
    alpha: float = 0.5,
    seed: Optional[int] = None,
    account_traffic: bool = True,
    three_step_exchange: bool = True,
) -> P3QConfig:
    """A :class:`P3QConfig` matching an experiment scale."""
    return P3QConfig(
        network_size=scale.network_size,
        storage=storage,
        random_view_size=scale.random_view_size,
        k=scale.k,
        alpha=alpha,
        digest_bits=scale.digest_bits,
        digest_hashes=scale.digest_hashes,
        seed=scale.seed if seed is None else seed,
        account_traffic=account_traffic,
        three_step_exchange=three_step_exchange,
    )


def prepare_workload(
    scale: ExperimentScale,
    dataset: Optional[Dataset] = None,
    num_queries: Optional[int] = None,
) -> PreparedWorkload:
    """Build the dataset, the ideal index, the query workload and references."""
    dataset = dataset if dataset is not None else scale.build_dataset()
    ideal = IdealNetworkIndex(dataset, size=scale.network_size)
    centralized = CentralizedTopK(dataset, network_size=scale.network_size, ideal=ideal)
    generator = QueryWorkloadGenerator(dataset, seed=scale.seed)
    count = num_queries if num_queries is not None else scale.num_queries
    queriers = dataset.user_ids[:count]
    queries = generator.generate(queriers)
    references = centralized.relevant_items(queries, k=scale.k)
    return PreparedWorkload(
        scale=scale,
        dataset=dataset,
        ideal=ideal,
        centralized=centralized,
        queries=queries,
        references=references,
    )


def converged_simulation(
    workload: PreparedWorkload,
    storage: StorageSpec,
    alpha: float = 0.5,
    seed: Optional[int] = None,
    account_traffic: bool = True,
    three_step_exchange: bool = True,
    config_overrides: Optional[Mapping[str, object]] = None,
) -> P3QSimulation:
    """A warm-started simulation (personal networks already converged).

    The dataset is copied so that experiments mutating profiles (dynamics)
    or taking nodes offline (churn) never leak state into the shared
    workload.  ``config_overrides`` patches arbitrary :class:`P3QConfig`
    fields (e.g. ``{"transport": "lossy", "loss_rate": 0.2}`` for the loss
    sweep) on top of the scale-derived configuration.
    """
    config = build_config(
        workload.scale,
        storage,
        alpha=alpha,
        seed=seed,
        account_traffic=account_traffic,
        three_step_exchange=three_step_exchange,
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    simulation = P3QSimulation(workload.dataset.copy(), config)
    simulation.warm_start(ideal=None if _dataset_mutated(workload) else workload.ideal)
    simulation.bootstrap_random_views()
    return simulation


def _dataset_mutated(workload: PreparedWorkload) -> bool:
    """Warm-starting from the shared ideal index is only valid while the
    shared dataset has not been mutated; currently experiments copy the
    dataset before mutating, so the shared index stays valid."""
    return False


def recall_series_from_snapshots(
    snapshots_by_query: Mapping[int, Sequence[object]],
    references: Mapping[int, Sequence[int]],
    cycles: int,
) -> List[float]:
    """Average recall after cycles 0..cycles (thin wrapper for experiments)."""
    from ..metrics.recall import recall_per_cycle

    return recall_per_cycle(snapshots_by_query, references, cycles)


# ---------------------------------------------------------------- parallelism


@dataclass
class ExperimentRun:
    """Outcome of one experiment executed by the scenario runner."""

    name: str
    description: str
    report: str
    elapsed_seconds: float


def run_experiment_by_name(name: str, scale_name: str = "small") -> ExperimentRun:
    """Execute one registered experiment end to end (worker entry point).

    Registered experiments live in :data:`repro.experiments.cli.EXPERIMENTS`;
    the worker rebuilds its own workload (experiments are seeded, so every
    process derives an identical one) and renders the report text.  Module
    level and picklable by name, as ``multiprocessing`` requires.
    """
    from .cli import EXPERIMENTS, resolve_scale

    description, needs_workload, runner = EXPERIMENTS[name]
    scale = resolve_scale(scale_name)
    workload = prepare_workload(scale) if needs_workload else None
    start = time.perf_counter()
    result = runner(scale, workload)
    elapsed = time.perf_counter() - start
    return ExperimentRun(
        name=name,
        description=description,
        report=result.render(),
        elapsed_seconds=elapsed,
    )


def _run_experiment_args(args: Tuple[str, str]) -> ExperimentRun:
    return run_experiment_by_name(*args)


def run_experiments_parallel(
    names: Sequence[str],
    scale_name: str = "small",
    workers: int = 2,
) -> List[ExperimentRun]:
    """Fan experiments out over ``workers`` processes; results in input order.

    Every scenario runs in its own process (full isolation: interning tables,
    Bloom caches and RNG streams are rebuilt from the scale's seed), so the
    reports are byte-identical to a serial run.  With one worker or a single
    experiment the pool is skipped entirely.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    if workers == 1 or len(names) <= 1:
        return [run_experiment_by_name(name, scale_name) for name in names]

    import multiprocessing

    jobs = [(name, scale_name) for name in names]
    processes = min(workers, len(jobs))
    with multiprocessing.Pool(processes=processes) as pool:
        return pool.map(_run_experiment_args, jobs)
