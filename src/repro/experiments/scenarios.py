"""Experiment scenarios: dataset scales and storage distributions.

The paper evaluates P3Q under

* seven **uniform** storage scenarios (every user stores c profiles,
  c ∈ {10, 20, 50, 100, 200, 500, 1000});
* two **heterogeneous** scenarios where the storage budget follows a Poisson
  distribution over those seven levels (Table 1): λ=1 models a network of
  storage-poor devices, λ=4 a network where most users have ample storage.

This module generates those distributions for any user population, and
provides the scaled-down experiment sizes used by default so the
reproduction runs in seconds rather than hours (every runner accepts a
custom :class:`ExperimentScale` to go back to paper scale).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..data.models import Dataset
from ..data.synthetic import SyntheticConfig, generate_dataset

#: The paper's seven storage levels (Table 1 columns).
PAPER_STORAGE_LEVELS: Tuple[int, ...] = (10, 20, 50, 100, 200, 500, 1000)


def poisson_pmf(lam: float, k: int) -> float:
    """P(X = k) for a Poisson(λ) variable."""
    return math.exp(-lam) * lam ** k / math.factorial(k)


def storage_level_probabilities(lam: float, num_levels: int = 7) -> List[float]:
    """Probability of each storage level under the paper's Poisson mapping.

    Level ``i`` (0-based) gets the *truncated and renormalized* Poisson mass
    ``P(X = i) / P(X < num_levels)``.  This reproduces Table 1 exactly:
    36.79% / 36.79% / 18.39% / ... for λ=1 and 2.06% / 8.25% / ... / 11.73%
    for λ=4 (the λ=4 row only matches with renormalization, which is how the
    paper handles the truncated tail).
    """
    if lam <= 0:
        raise ValueError("lam must be positive")
    raw = [poisson_pmf(lam, k) for k in range(num_levels)]
    total = sum(raw)
    return [value / total for value in raw]


def poisson_storage_distribution(
    user_ids: Sequence[int],
    lam: float,
    levels: Sequence[int] = PAPER_STORAGE_LEVELS,
    seed: int = 0,
) -> Dict[int, int]:
    """Assign a storage level to every user following Table 1's distribution."""
    rng = random.Random(seed)
    probabilities = storage_level_probabilities(lam, num_levels=len(levels))
    assignment: Dict[int, int] = {}
    for user_id in user_ids:
        draw = rng.random()
        cumulative = 0.0
        chosen = levels[-1]
        for level, probability in zip(levels, probabilities):
            cumulative += probability
            if draw <= cumulative:
                chosen = level
                break
        assignment[user_id] = chosen
    return assignment


def uniform_storage_distribution(user_ids: Sequence[int], storage: int) -> Dict[int, int]:
    """Every user stores the same number of profiles."""
    return {user_id: storage for user_id in user_ids}


def storage_level_fractions(
    assignment: Mapping[int, int],
    levels: Sequence[int] = PAPER_STORAGE_LEVELS,
) -> Dict[int, float]:
    """Observed fraction of users at each storage level (Table 1 rows)."""
    total = len(assignment)
    if total == 0:
        return {level: 0.0 for level in levels}
    counts = {level: 0 for level in levels}
    for value in assignment.values():
        if value in counts:
            counts[value] += 1
    return {level: counts[level] / total for level in levels}


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs shared by the experiment runners.

    ``small()`` (the default) keeps every experiment in the seconds range on
    one core; ``paper()`` matches the published setup (10,000 users,
    s = 1000, c up to 1000) and is intended for long offline runs.
    """

    num_users: int = 150
    num_items: int = 1_200
    num_tags: int = 250
    num_communities: int = 10
    mean_actions_per_user: int = 50
    #: Personal-network size ``s``.
    network_size: int = 50
    #: Random-view size ``r``.
    random_view_size: int = 8
    #: Storage levels standing in for the paper's 10..1000 ladder.
    storage_levels: Tuple[int, ...] = (2, 4, 8, 12, 20, 35, 50)
    #: How many queries to evaluate (sampled queriers).
    num_queries: int = 40
    #: Top-k size.
    k: int = 10
    #: Bloom-filter sizing for digests (small filters keep tests fast).
    digest_bits: int = 4_096
    digest_hashes: int = 6
    seed: int = 42

    @classmethod
    def small(cls, seed: int = 42) -> "ExperimentScale":
        return cls(seed=seed)

    @classmethod
    def tiny(cls, seed: int = 42) -> "ExperimentScale":
        """An even smaller scale for unit tests of the experiment runners."""
        return cls(
            num_users=60,
            num_items=400,
            num_tags=120,
            num_communities=6,
            mean_actions_per_user=30,
            network_size=20,
            random_view_size=5,
            storage_levels=(2, 3, 5, 8, 10, 15, 20),
            num_queries=12,
            digest_bits=2_048,
            digest_hashes=5,
            seed=seed,
        )

    @classmethod
    def paper(cls, seed: int = 42) -> "ExperimentScale":
        return cls(
            num_users=10_000,
            num_items=100_000,
            num_tags=32_000,
            num_communities=120,
            mean_actions_per_user=950,
            network_size=1_000,
            random_view_size=10,
            storage_levels=PAPER_STORAGE_LEVELS,
            num_queries=10_000,
            k=10,
            digest_bits=20_000,
            digest_hashes=14,
            seed=seed,
        )

    def synthetic_config(self) -> SyntheticConfig:
        return SyntheticConfig(
            num_users=self.num_users,
            num_items=self.num_items,
            num_tags=self.num_tags,
            num_communities=self.num_communities,
            mean_actions_per_user=self.mean_actions_per_user,
            seed=self.seed,
        )

    def build_dataset(self) -> Dataset:
        return generate_dataset(self.synthetic_config())

    def storage_for_level_index(self, index: int) -> int:
        """The storage level standing in for the paper's i-th level."""
        return self.storage_levels[min(index, len(self.storage_levels) - 1)]
