"""Table 1: distribution of the storage budget ``c`` under Poisson λ=1 and λ=4.

The paper draws each user's stored-profile budget from a Poisson distribution
mapped onto the seven levels {10, 20, 50, 100, 200, 500, 1000}.  This
experiment regenerates both the theoretical probabilities (the numbers
printed in Table 1) and the empirical fractions observed when assigning
budgets to a concrete user population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .report import format_table
from .scenarios import (
    PAPER_STORAGE_LEVELS,
    poisson_storage_distribution,
    storage_level_fractions,
    storage_level_probabilities,
)


@dataclass
class Table1Result:
    """Theoretical and empirical storage-level fractions per λ."""

    levels: Tuple[int, ...]
    theoretical: Dict[float, List[float]]
    empirical: Dict[float, Dict[int, float]]
    num_users: int

    def rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for lam, probabilities in sorted(self.theoretical.items()):
            rows.append(
                [f"lambda={lam} (paper)"] + [f"{p * 100:.2f}%" for p in probabilities]
            )
            observed = self.empirical[lam]
            rows.append(
                [f"lambda={lam} (measured, n={self.num_users})"]
                + [f"{observed[level] * 100:.2f}%" for level in self.levels]
            )
        return rows

    def render(self) -> str:
        headers = ["scenario"] + [f"c={level}" for level in self.levels]
        return format_table(headers, self.rows(), title="Table 1: distribution of c")


def run_table1(
    num_users: int = 10_000,
    lambdas: Sequence[float] = (1.0, 4.0),
    levels: Sequence[int] = PAPER_STORAGE_LEVELS,
    seed: int = 0,
) -> Table1Result:
    """Regenerate Table 1 for the given population size."""
    user_ids = list(range(num_users))
    theoretical: Dict[float, List[float]] = {}
    empirical: Dict[float, Dict[int, float]] = {}
    for lam in lambdas:
        theoretical[lam] = storage_level_probabilities(lam, num_levels=len(levels))
        assignment = poisson_storage_distribution(user_ids, lam, levels=levels, seed=seed)
        empirical[lam] = storage_level_fractions(assignment, levels=levels)
    return Table1Result(
        levels=tuple(levels),
        theoretical=theoretical,
        empirical=empirical,
        num_users=num_users,
    )
