"""Table 2: influence of one day of profile changes per storage budget.

For each storage budget c, the table reports how many users have at least
one stored replica affected by the day's changes, and the average / maximum
number of replicas they must refresh.  The paper's shape: the percentage of
affected users grows quickly with c and saturates (~88%), while the average
and maximum number of replicas to refresh keep growing with c.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..data.dynamics import DynamicsConfig, ProfileDynamicsGenerator
from ..metrics.freshness import profiles_to_update
from .report import format_table
from .runner import PreparedWorkload, converged_simulation, prepare_workload
from .scenarios import ExperimentScale


@dataclass
class Table2Row:
    storage: int
    affected_fraction: float
    average_to_update: float
    max_to_update: int


@dataclass
class Table2Result:
    rows_by_storage: List[Table2Row]
    changed_users: int
    average_new_actions: float

    def render(self) -> str:
        rows = [
            [
                row.storage,
                f"{row.affected_fraction * 100:.1f}%",
                round(row.average_to_update, 1),
                row.max_to_update,
            ]
            for row in self.rows_by_storage
        ]
        return format_table(
            ["c", "% users having to update", "avg profiles to update", "max"],
            rows,
            title=(
                "Table 2: influence of profile changes"
                f" ({self.changed_users} users changed,"
                f" avg {self.average_new_actions:.1f} new actions)"
            ),
        )


def run_table2(
    scale: Optional[ExperimentScale] = None,
    storages: Optional[Sequence[int]] = None,
    dynamics: Optional[DynamicsConfig] = None,
    workload: Optional[PreparedWorkload] = None,
) -> Table2Result:
    """Compute the per-budget impact of one synthetic change day."""
    scale = scale or ExperimentScale.small()
    workload = workload or prepare_workload(scale, num_queries=0)
    storages = list(storages) if storages is not None else list(scale.storage_levels)
    dynamics = dynamics or DynamicsConfig(seed=scale.seed)

    generator = ProfileDynamicsGenerator(workload.dataset, dynamics)
    change_day = generator.generate_day()
    changed_users = change_day.changed_users
    total_new = sum(len(change) for change in change_day.changes)
    avg_new = total_new / len(change_day.changes) if change_day.changes else 0.0

    rows: List[Table2Row] = []
    for storage in storages:
        simulation = converged_simulation(workload, storage=storage, account_traffic=False)
        replicas = simulation.stored_replica_versions()
        to_update = profiles_to_update(replicas, set(changed_users))
        owners_with_replicas = [uid for uid, reps in replicas.items() if reps]
        affected_fraction = (
            len(to_update) / len(owners_with_replicas) if owners_with_replicas else 0.0
        )
        counts = list(to_update.values())
        rows.append(
            Table2Row(
                storage=storage,
                affected_fraction=affected_fraction,
                average_to_update=(sum(counts) / len(counts)) if counts else 0.0,
                max_to_update=max(counts) if counts else 0,
            )
        )
    return Table2Result(
        rows_by_storage=rows,
        changed_users=len(changed_users),
        average_new_actions=avg_new,
    )
