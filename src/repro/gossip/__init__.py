"""Gossip substrate: digests, views, peer sampling and the lazy exchange.

The digest and exchange modules run on the performance layer introduced with
the bit-packed Bloom filter and interned profiles; ``docs/ARCHITECTURE.md``
documents the layering (data -> bloom/similarity -> gossip -> p3q ->
experiments) and the invariants the fast paths rely on.
"""

from .digest import DigestCache, DigestProvider, ProfileDigest, make_digest
from .interfaces import GossipPeer
from .peer_sampling import PeerSamplingProtocol
from .profile_exchange import DEFAULT_EXCHANGE_SIZE, LazyExchangeProtocol
from .sizes import (
    DIGEST_BYTES,
    ITEM_ID_BYTES,
    SCORE_BYTES,
    TAG_BYTES,
    TAGGING_ACTION_BYTES,
    USER_ID_BYTES,
    digest_message_size,
    partial_result_size,
    profile_length,
    profile_storage_bytes,
    remaining_list_size,
    tagging_actions_size,
)
from .views import NeighbourEntry, PersonalNetwork, RandomView

__all__ = [
    "DEFAULT_EXCHANGE_SIZE",
    "DIGEST_BYTES",
    "DigestCache",
    "DigestProvider",
    "GossipPeer",
    "ITEM_ID_BYTES",
    "LazyExchangeProtocol",
    "NeighbourEntry",
    "PeerSamplingProtocol",
    "PersonalNetwork",
    "ProfileDigest",
    "RandomView",
    "SCORE_BYTES",
    "TAG_BYTES",
    "TAGGING_ACTION_BYTES",
    "USER_ID_BYTES",
    "digest_message_size",
    "make_digest",
    "partial_result_size",
    "profile_length",
    "profile_storage_bytes",
    "remaining_list_size",
    "tagging_actions_size",
]
