"""Profile digests: versioned Bloom filters over a profile's items.

A digest is what circulates in gossip *instead of* the full profile.  It
answers two questions cheaply:

* "does this user share at least one item with me?" -- the trigger for the
  similarity computation in the lazy exchange;
* "has this user's profile changed since I last looked?" -- via the version
  counter, which avoids re-exchanging unchanged profiles (Algorithm 1,
  lines 4-6).

Digest probes ride the bit-packed-integer :class:`repro.bloom.BloomFilter`:
membership is one C-level big-int ``AND`` against the key's cached probe
mask, with masks and hash bases memoized process-wide and shared between
digest construction and probing (see ``docs/ARCHITECTURE.md``).  ``common_items_with`` exposes
the one-pass "which of my items might she have?" probe that step 2 of the
lazy exchange is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

from ..bloom import PAPER_DIGEST_BITS, BloomFilter
from ..data.models import UserProfile
from .sizes import DIGEST_BYTES


@dataclass(frozen=True)
class ProfileDigest:
    """A snapshot digest of one user's profile."""

    user_id: int
    version: int
    bloom: BloomFilter

    def might_contain_item(self, item: int) -> bool:
        return item in self.bloom

    def shares_item_with(self, items: Iterable[int]) -> bool:
        """True if the digest (probably) contains any of ``items``."""
        return self.bloom.intersects(items)

    def common_items_with(self, items: Iterable[int]) -> Set[int]:
        """The subset of ``items`` the digest (probably) contains.

        This is the candidate common-item set of step 2 of the lazy exchange:
        a superset of the true common items (Bloom false positives included,
        false negatives impossible).
        """
        bloom = self.bloom
        return {item for item in items if item in bloom}

    @property
    def size_in_bytes(self) -> int:
        """Wire size: the paper's 20 Kbit constant, not the actual bit array.

        Keeping the accounting constant-size matches the paper's cost model
        even when tests use small filters.
        """
        return DIGEST_BYTES

    def same_version_as(self, other: "ProfileDigest") -> bool:
        return self.user_id == other.user_id and self.version == other.version


def make_digest(
    profile: UserProfile,
    num_bits: int = PAPER_DIGEST_BITS,
    num_hashes: int = 14,
) -> ProfileDigest:
    """Build the digest of a profile: a Bloom filter over its items."""
    bloom = BloomFilter.from_items(profile.items, num_bits=num_bits, num_hashes=num_hashes)
    return ProfileDigest(user_id=profile.user_id, version=profile.version, bloom=bloom)


class DigestProvider:
    """Caches a node's own digest and rebuilds it only when the profile changes.

    Rebuilding a 20 Kbit Bloom filter for every gossip message would dominate
    simulation time; since digests are immutable snapshots keyed by profile
    version, one cached copy per version is enough.
    """

    def __init__(
        self,
        profile: UserProfile,
        num_bits: int = PAPER_DIGEST_BITS,
        num_hashes: int = 14,
    ) -> None:
        self._profile = profile
        self._num_bits = num_bits
        self._num_hashes = num_hashes
        self._cached: ProfileDigest | None = None

    def current(self) -> ProfileDigest:
        """The digest matching the profile's current version."""
        if self._cached is None or self._cached.version != self._profile.version:
            self._cached = make_digest(
                self._profile, num_bits=self._num_bits, num_hashes=self._num_hashes
            )
        return self._cached
