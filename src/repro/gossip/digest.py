"""Profile digests: versioned Bloom filters over a profile's items.

A digest is what circulates in gossip *instead of* the full profile.  It
answers two questions cheaply:

* "does this user share at least one item with me?" -- the trigger for the
  similarity computation in the lazy exchange;
* "has this user's profile changed since I last looked?" -- via the version
  counter, which avoids re-exchanging unchanged profiles (Algorithm 1,
  lines 4-6).

Digest probes ride the bit-packed-integer :class:`repro.bloom.BloomFilter`:
membership is one C-level big-int ``AND`` against the key's cached probe
mask, with masks and hash bases memoized process-wide and shared between
digest construction and probing (see ``docs/ARCHITECTURE.md``).  ``common_items_with`` exposes
the one-pass "which of my items might she have?" probe that step 2 of the
lazy exchange is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..bloom import PAPER_DIGEST_BITS, BloomFilter
from ..bloom.bloom import probe_positions
from ..data.models import UserProfile
from .sizes import DIGEST_BYTES


#: Shared empty common-item set (most probes find nothing in common).
_EMPTY_ITEMS: "FrozenSet[int]" = frozenset()

#: One priced (receiver, subject) pair as recorded by a pricing worker:
#: ``(receiver_id, receiver_version, subject_id, digest_version, common)``.
PricedPair = Tuple[int, int, int, int, FrozenSet[int]]


@dataclass(frozen=True)
class ProfileDigest:
    """A snapshot digest of one user's profile."""

    user_id: int
    version: int
    bloom: BloomFilter

    def might_contain_item(self, item: int) -> bool:
        return item in self.bloom

    def shares_item_with(self, items: Iterable[int]) -> bool:
        """True if the digest (probably) contains any of ``items``."""
        return self.bloom.intersects(items)

    def common_items_with(self, items: Iterable[int]) -> Set[int]:
        """The subset of ``items`` the digest (probably) contains.

        This is the candidate common-item set of step 2 of the lazy exchange:
        a superset of the true common items (Bloom false positives included,
        false negatives impossible).
        """
        bloom = self.bloom
        return {item for item in items if item in bloom}

    @property
    def size_in_bytes(self) -> int:
        """Wire size: the paper's 20 Kbit constant, not the actual bit array.

        Keeping the accounting constant-size matches the paper's cost model
        even when tests use small filters.
        """
        return DIGEST_BYTES

    def same_version_as(self, other: "ProfileDigest") -> bool:
        return self.user_id == other.user_id and self.version == other.version


def make_digest(
    profile: UserProfile,
    num_bits: int = PAPER_DIGEST_BITS,
    num_hashes: int = 14,
) -> ProfileDigest:
    """Build the digest of a profile: a Bloom filter over its items."""
    bloom = BloomFilter.from_items(profile.items, num_bits=num_bits, num_hashes=num_hashes)
    return ProfileDigest(user_id=profile.user_id, version=profile.version, bloom=bloom)


class DigestProvider:
    """Caches a node's own digest and rebuilds it only when the profile changes.

    Rebuilding a 20 Kbit Bloom filter for every gossip message would dominate
    simulation time; since digests are immutable snapshots keyed by profile
    version, one cached copy per version is enough.
    """

    def __init__(
        self,
        profile: UserProfile,
        num_bits: int = PAPER_DIGEST_BITS,
        num_hashes: int = 14,
    ) -> None:
        self._profile = profile
        self._num_bits = num_bits
        self._num_hashes = num_hashes
        self._cached: ProfileDigest | None = None

    def current(self) -> ProfileDigest:
        """The digest matching the profile's current version."""
        if self._cached is None or self._cached.version != self._profile.version:
            self._cached = make_digest(
                self._profile, num_bits=self._num_bits, num_hashes=self._num_hashes
            )
        return self._cached


class DigestCache:
    """Simulation-wide incremental cache of digests and digest probes.

    One instance is shared by every node of a simulation (and by the lazy
    exchange and eager gossip protocols riding it).  It maintains three
    version-keyed structures, each rebuilt only when the underlying
    :class:`~repro.data.models.UserProfile` version bumps:

    * **digests** -- ``user_id -> ProfileDigest`` of that user's *current*
      profile.  Replaces per-node digest rebuilding: a node's 20 Kbit Bloom
      filter is constructed once per profile version for the whole system.
    * **probe rows** -- ``user_id -> ((item, probe_positions), ...)`` for
      the user's item set, in the cache's digest geometry.  These are the
      precomputed left-hand sides of batch membership tests: pricing one
      exchange's candidate set against a receiver is a single pass of
      early-exiting set-containment checks of each row's probe positions
      against the digest's set-bit index set
      (:meth:`BloomFilter.bit_positions`), avoiding a 20 Kbit big-int AND
      per probe.
    * **common-item memo** -- ``(receiver, subject) -> (receiver_version,
      digest_version, common_items)``.  A digest that was already probed by
      the same receiver at the same profile versions is never probed again,
      which turns steady-state view maintenance from O(N·s) Bloom probes per
      cycle into O(changes).

    Every lookup validates versions, so *stale reads are impossible by
    construction*; explicit invalidation (:meth:`evict_profiles`, driven by
    the engine's post-cycle dirty-set flush) only reclaims memory held by
    superseded entries.  The memo keeps at most one entry per (receiver,
    subject) pair, so memory is bounded by the number of pairs that actually
    gossip, not by version churn.
    """

    #: Cap on the (receiver, subject) common-item memo.  The memo exists for
    #: pairs that gossip repeatedly; at large N the stream of one-shot
    #: random-view pairs would otherwise grow it without bound.  Overflow
    #: clears the memo wholesale -- correctness is version-checked on every
    #: read, so the only effect is a transient dip in hit rate.
    MAX_COMMON_PAIRS = 1 << 19

    def __init__(
        self,
        num_bits: int = PAPER_DIGEST_BITS,
        num_hashes: int = 14,
    ) -> None:
        if num_bits <= 0 or num_hashes <= 0:
            raise ValueError("digest geometry must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._digests: Dict[int, ProfileDigest] = {}
        #: When not ``None``, every memo *miss* also appends its
        #: ``(receiver_id, receiver_version, subject_id, digest_version,
        #: common_items)`` entry here.  The sharded engine's pricing workers
        #: record the entries they compute against their snapshot so the
        #: merge barrier can install them into the live cache.
        self._recorder: Optional[List[PricedPair]] = None
        #: user_id -> (profile_version, first-position keys, first-position ->
        #: ((item, probe_positions), ...) buckets).  The first-position index
        #: lets one C-level set intersection reject almost every row of a
        #: probe batch before any per-row work happens.
        self._rows: Dict[
            int,
            Tuple[int, FrozenSet[int], Dict[int, Tuple[Tuple[int, Tuple[int, ...]], ...]]],
        ] = {}
        #: subject user_id -> (digest_version, set-bit indices of the digest).
        self._bit_positions: Dict[int, Tuple[int, Set[int]]] = {}
        self._common: Dict[Tuple[int, int], Tuple[int, int, FrozenSet[int]]] = {}
        #: Optional columnar digest backing: ``(DigestMatrix, ColumnarStore)``.
        #: When a user's matrix row matches her profile version, digest
        #: construction adopts the prebuilt byte row instead of re-ORing
        #: per-item masks (identical bits by construction).
        self._columnar = None

    # -- wiring ----------------------------------------------------------------

    def attach_columnar(self, matrix, store) -> None:
        """Adopt prebuilt digest rows from a columnar digest matrix.

        Only a matrix in this cache's exact geometry is accepted: adoption
        must be bit-identical to building the digest here.
        """
        if matrix.num_bits != self.num_bits or matrix.num_hashes != self.num_hashes:
            raise ValueError(
                f"digest matrix geometry ({matrix.num_bits}, {matrix.num_hashes}) "
                f"does not match cache geometry ({self.num_bits}, {self.num_hashes})"
            )
        self._columnar = (matrix, store)

    # -- digests --------------------------------------------------------------

    def digest_for(self, profile: UserProfile) -> ProfileDigest:
        """The digest of ``profile``'s current version, built at most once.

        Building a digest also seeds its set-bit index set (the union of the
        inserted items' probe positions -- by construction identical to
        decomposing the finished bit array), so probing a cache-built digest
        never has to walk its 20 Kbit integer.  With a columnar digest
        matrix attached, a row whose stored version matches the profile is
        adopted wholesale (the row bytes are the same OR of the same probe
        masks); the set-bit index set then comes from decomposing the row.
        """
        cached = self._digests.get(profile.user_id)
        if cached is None or cached.version != profile.version:
            if self._columnar is not None:
                adopted = self._adopt_columnar(profile)
                if adopted is not None:
                    return adopted
            cached = make_digest(
                profile, num_bits=self.num_bits, num_hashes=self.num_hashes
            )
            self._digests[profile.user_id] = cached
            positions: Set[int] = set()
            num_bits, num_hashes = self.num_bits, self.num_hashes
            for item in profile.items:
                positions.update(probe_positions(item, num_bits, num_hashes))
            self._bit_positions[profile.user_id] = (cached.version, positions)
        return cached

    def _adopt_columnar(self, profile: UserProfile) -> Optional[ProfileDigest]:
        """Adopt the profile's prebuilt digest row, if current; else ``None``."""
        matrix, store = self._columnar
        row = store.row_of(profile.user_id)
        if row is None or matrix.row_version(row) != profile.version:
            return None
        bloom = BloomFilter.from_state(
            self.num_bits,
            self.num_hashes,
            matrix.row_bits_int(row),
            len(profile.items),
        )
        digest = ProfileDigest(
            user_id=profile.user_id, version=profile.version, bloom=bloom
        )
        self._digests[profile.user_id] = digest
        self._bit_positions[profile.user_id] = (digest.version, bloom.bit_positions())
        return digest

    # -- batch probing --------------------------------------------------------

    def common_items(self, receiver: UserProfile, digest: ProfileDigest) -> FrozenSet[int]:
        """The receiver's items that ``digest`` (probably) contains, memoized.

        Semantically identical to ``digest.common_items_with(receiver.items)``
        (same Bloom filter, same probe positions) but priced incrementally:
        the receiver's probe rows and the digest's set-bit index set are
        cached per profile/digest version, and a (receiver, subject) pair is
        re-probed only when either side's version changed since the last
        probe.  A probe is ``bits.issuperset(row_positions)`` -- C-level with
        an early exit on the first missing bit.
        """
        if digest.bloom.num_bits != self.num_bits or digest.bloom.num_hashes != self.num_hashes:
            # Foreign geometry (mixed-config tests): fall back to direct probes.
            return frozenset(digest.common_items_with(receiver.items))
        key = (receiver.user_id, digest.user_id)
        memo = self._common.get(key)
        if (
            memo is not None
            and memo[0] == receiver.version
            and memo[1] == digest.version
        ):
            return memo[2]
        # Inlined row/position lookups: this is the hottest miss path of the
        # whole runtime, and every extra frame showed up in profiles.
        rows_entry = self._rows.get(receiver.user_id)
        if rows_entry is None or rows_entry[0] != receiver.version:
            num_bits, num_hashes = self.num_bits, self.num_hashes
            buckets: Dict[int, Tuple[Tuple[int, Tuple[int, ...]], ...]] = {}
            for item in receiver.items:
                positions = probe_positions(item, num_bits, num_hashes)
                first = positions[0]
                buckets[first] = buckets.get(first, ()) + ((item, positions),)
            rows_entry = (receiver.version, frozenset(buckets), buckets)
            self._rows[receiver.user_id] = rows_entry
        positions_entry = self._bit_positions.get(digest.user_id)
        if positions_entry is None or positions_entry[0] != digest.version:
            positions_entry = (digest.version, digest.bloom.bit_positions())
            self._bit_positions[digest.user_id] = positions_entry
        digest_bits = positions_entry[1]
        # One C-level intersection rejects every item whose first probe bit
        # is clear (the overwhelmingly common case); only the survivors pay
        # a full probe-position check.
        live_firsts = digest_bits.intersection(rows_entry[1])
        if not live_firsts:
            common: FrozenSet[int] = _EMPTY_ITEMS
        else:
            issuperset = digest_bits.issuperset
            buckets = rows_entry[2]
            common = frozenset(
                {
                    item
                    for first in live_firsts
                    for item, positions in buckets[first]
                    if issuperset(positions)
                }
            )
        memo_map = self._common
        if len(memo_map) >= self.MAX_COMMON_PAIRS:
            memo_map.clear()
        memo_map[key] = (receiver.version, digest.version, common)
        if self._recorder is not None:
            self._recorder.append(
                (receiver.user_id, receiver.version, digest.user_id, digest.version, common)
            )
        return common

    def common_items_batch(
        self, receiver: UserProfile, digests: Sequence[ProfileDigest]
    ) -> Dict[int, FrozenSet[int]]:
        """Price one exchange's whole candidate set in a single pass.

        Returns ``subject_id -> common items`` for every digest.  The
        receiver's probe rows are resolved once and reused across the batch.
        """
        return {digest.user_id: self.common_items(receiver, digest) for digest in digests}

    def shares_item(self, receiver: UserProfile, digest: ProfileDigest) -> bool:
        """Whether ``digest`` shares at least one item with the receiver.

        Same truth value as ``digest.shares_item_with(receiver.items)``; goes
        through the memoized common-item set so the answer is free when the
        pair was already probed (and primes the memo when it was not).
        """
        return bool(self.common_items(receiver, digest))

    def install_digest(self, user_id: int, version: int, bits: int, count: int) -> None:
        """Adopt a digest built by a shard-parallel worker.

        ``bits``/``count`` are the worker's :attr:`BloomFilter.raw_bits` /
        ``approximate_count`` for the user's profile at ``version`` -- by
        construction identical to what :meth:`digest_for` would build here.
        The set-bit index set is not shipped (it would dwarf the payload);
        the first probe decomposes the bit array lazily, yielding the same
        positions the eager seeding would have produced.
        """
        bloom = BloomFilter.from_state(self.num_bits, self.num_hashes, bits, count)
        self._digests[user_id] = ProfileDigest(user_id=user_id, version=version, bloom=bloom)

    # -- sharded-engine pricing hand-off --------------------------------------

    def record_pricing(self, sink: Optional[List["PricedPair"]]) -> None:
        """Start (or, with ``None``, stop) recording memo misses into ``sink``.

        Used inside pricing workers: the entries a worker computes against
        its snapshot are exactly the memo rows the serial apply phase would
        compute, so shipping them back and installing them warms the live
        cache without any behavioural effect.
        """
        self._recorder = sink

    def install_common_entries(self, entries: Iterable["PricedPair"]) -> int:
        """Merge-barrier install of priced (receiver, subject) pairs.

        Every read of the memo re-validates the stored versions against the
        live profile and digest, so an entry is *served only at the exact
        versions it names*: entries priced against a superseded snapshot
        are inert (at worst they waste a slot).  Callers must supply
        internally consistent entries -- value computed by the pricing
        function from the content those versions denote -- which recorded
        worker entries are by construction, since workers run the same pure
        pricing code.  Entries are installed in the order given (the engine
        feeds shards in shard-index order, so the final memo content is
        deterministic).  Returns how many entries were installed.
        """
        memo_map = self._common
        installed = 0
        for receiver_id, receiver_version, subject_id, digest_version, common in entries:
            if len(memo_map) >= self.MAX_COMMON_PAIRS:
                memo_map.clear()
            memo_map[(receiver_id, subject_id)] = (receiver_version, digest_version, common)
            installed += 1
        return installed

    # -- invalidation ---------------------------------------------------------

    def evict_profiles(self, user_ids: Iterable[int]) -> None:
        """Drop cached state of users whose profiles changed (memory hygiene).

        Correctness never depends on this -- every read re-validates versions
        -- but superseded digests and probe rows of churned-through profiles
        would otherwise linger until the next touch.  The engine flushes the
        per-cycle dirty set here at each cycle boundary.
        """
        for user_id in user_ids:
            self._digests.pop(user_id, None)
            self._rows.pop(user_id, None)
            self._bit_positions.pop(user_id, None)

    def clear(self) -> None:
        self._digests.clear()
        self._rows.clear()
        self._bit_positions.clear()
        self._common.clear()

    def stats(self) -> Dict[str, int]:
        """Cache occupancy counters (exposed for tests and diagnostics)."""
        return {
            "digests": len(self._digests),
            "rows": len(self._rows),
            "bit_positions": len(self._bit_positions),
            "common_pairs": len(self._common),
        }
