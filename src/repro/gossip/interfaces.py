"""Structural interface that gossip protocols expect from a node.

The lazy and eager protocols are written against this minimal surface so
that they can be unit-tested with lightweight fakes and reused by any node
implementation (the full :class:`~repro.p3q.node.P3QNode`, the store-all
baseline node, ...).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional, Protocol, Set, runtime_checkable

from ..data.models import TaggingAction, UserProfile
from .digest import ProfileDigest
from .views import PersonalNetwork, RandomView

if TYPE_CHECKING:  # pragma: no cover
    from ..simulator.transport import Envelope, Message


@runtime_checkable
class GossipPeer(Protocol):
    """What a node must expose to participate in P3Q gossip.

    Peers are addressable on the wire: the transport delivers every message
    to :meth:`handle_message`, and a node without that method is simply
    unreachable (the seed's ``isinstance(node, GossipPeer)`` guard, moved to
    the transport's resolution step).
    """

    node_id: int
    profile: UserProfile
    personal_network: PersonalNetwork
    random_view: RandomView

    def handle_message(self, envelope: "Envelope") -> Optional["Message"]:
        """Process one delivered transport message; return the reply, if any."""

    @property
    def rng(self) -> random.Random:
        """The node's deterministic RNG stream."""

    def own_digest(self) -> ProfileDigest:
        """Digest of the node's own (current) profile."""

    def stored_digest_sample(self, limit: int) -> List[ProfileDigest]:
        """Digests advertised in a lazy gossip message.

        A random subset (at most ``limit``) of the digests of locally stored
        neighbour profiles, always including the node's own digest.
        """

    def actions_for_items_of(self, subject_id: int, items: Set[int]) -> Optional[Set[TaggingAction]]:
        """Tagging actions of ``subject_id`` restricted to ``items``.

        Served from the node's own profile or a stored replica; ``None`` when
        the node does not hold that profile (any more).
        """

    def full_profile_of(self, subject_id: int) -> Optional[UserProfile]:
        """A copy of ``subject_id``'s profile if stored locally, else ``None``."""
