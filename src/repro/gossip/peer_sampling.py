"""Random peer sampling: the bottom layer of the lazy gossip.

Each cycle, a node picks one member of its random view uniformly at random,
the two exchange their views (r digests each, plus their own descriptor so
fresh information keeps entering the system), and each keeps a uniformly
random subset of size r of the union.  This is the classical gossip-based
peer-sampling service of Jelasity et al., which keeps the overlay connected
even when personal networks would otherwise partition into disjoint interest
groups, and continuously supplies candidate neighbours that the similarity
layer has not discovered yet.
"""

from __future__ import annotations

from typing import Optional

from ..simulator.network import Network
from .interfaces import GossipPeer
from .sizes import digest_message_size
from ..simulator.stats import KIND_RANDOM_VIEW


class PeerSamplingProtocol:
    """One-cycle behaviour of the random peer-sampling layer."""

    def __init__(self, account_traffic: bool = True) -> None:
        self.account_traffic = account_traffic

    def run_cycle(self, initiator: GossipPeer, network: Network) -> Optional[int]:
        """Run one peer-sampling exchange initiated by ``initiator``.

        Returns the partner's id, or ``None`` when no exchange happened
        (empty view or partner offline -- the slot is simply lost for this
        cycle, as in the paper's churn experiments).
        """
        partner_id = initiator.random_view.random_partner(initiator.rng)
        if partner_id is None:
            return None
        partner = network.try_contact(partner_id)
        if partner is None or not isinstance(partner, GossipPeer):
            return None

        sent = initiator.random_view.digests() + [initiator.own_digest()]
        received = partner.random_view.digests() + [partner.own_digest()]

        if self.account_traffic:
            network.account(
                initiator.node_id,
                partner_id,
                KIND_RANDOM_VIEW,
                digest_message_size(len(sent)),
            )
            network.account(
                partner_id,
                initiator.node_id,
                KIND_RANDOM_VIEW,
                digest_message_size(len(received)),
            )

        initiator.random_view.merge(received, initiator.rng)
        partner.random_view.merge(sent, partner.rng)
        return partner_id
