"""Random peer sampling: the bottom layer of the lazy gossip.

Each cycle, a node picks one member of its random view uniformly at random
and the two swap :class:`~repro.simulator.transport.DigestAdvertisement`
messages (r digests each, plus their own descriptor so fresh information
keeps entering the system); each keeps a uniformly random subset of size r
of the union.  This is the classical gossip-based peer-sampling service of
Jelasity et al., which keeps the overlay connected even when personal
networks would otherwise partition into disjoint interest groups, and
continuously supplies candidate neighbours that the similarity layer has
not discovered yet.

The swap is a transport round-trip: the initiator's advertisement travels
as a request and the partner's view comes back as the reply.  Under a
latency transport the exchange may be deferred, in which case the partner
merges when the engine drains the queue and the initiator merges when the
reply message eventually arrives (:meth:`P3QNode.handle_message`).

The protocol is sans-io: :meth:`run_cycle_effects` yields
:mod:`repro.simulator.effects` and never touches the network, so the cycle
engine (:func:`~repro.simulator.effects.drive`) and the asyncio service
runtime execute the same core.
"""

from __future__ import annotations

from typing import Optional

from ..simulator.effects import ProbeEffect, RequestEffect, WireEffects, drive
from ..simulator.network import Network
from ..simulator.transport import VIEW_RANDOM, DigestAdvertisement, Envelope


class PeerSamplingProtocol:
    """One-cycle behaviour of the random peer-sampling layer."""

    def __init__(self, account_traffic: bool = True) -> None:
        self.account_traffic = account_traffic

    def run_cycle(self, initiator, network: Network) -> Optional[int]:
        """Run one peer-sampling exchange initiated by ``initiator``.

        Returns the partner's id, or ``None`` when no exchange happened
        (empty view, partner offline, or message lost -- the slot is simply
        lost for this cycle, as in the paper's churn experiments).
        """
        return drive(self.run_cycle_effects(initiator), network)

    def run_cycle_effects(self, initiator) -> WireEffects:
        """Sans-io core of :meth:`run_cycle` (yields wire effects)."""
        partner_id = initiator.random_view.random_partner(initiator.rng)
        if partner_id is None:
            return None
        if not (yield ProbeEffect(partner_id)):
            return None

        sent = tuple(initiator.random_view.digests()) + (initiator.own_digest(),)
        dispatch = yield RequestEffect(
            initiator.node_id,
            partner_id,
            DigestAdvertisement(digests=sent, view=VIEW_RANDOM),
            account=self.account_traffic,
        )
        if dispatch.reply is not None:
            initiator.random_view.merge(dispatch.reply.digests, initiator.rng)
            return partner_id
        # A deferred exchange still used the slot; anything else lost it.
        return partner_id if dispatch.deferred else None

    # -- receiving side -------------------------------------------------------

    def handle_advertisement(self, receiver, envelope: Envelope) -> Optional[DigestAdvertisement]:
        """Merge an incoming advertisement; reply with our view when asked.

        The reply is built *before* merging, exactly like the seed computed
        both directions of the swap before either side updated its view.
        """
        reply: Optional[DigestAdvertisement] = None
        if envelope.expects_reply:
            digests = tuple(receiver.random_view.digests()) + (receiver.own_digest(),)
            reply = DigestAdvertisement(digests=digests, view=VIEW_RANDOM)
        receiver.random_view.merge(envelope.message.digests, receiver.rng)
        return reply
