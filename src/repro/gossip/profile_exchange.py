"""Lazy-mode personal-network maintenance (paper Algorithm 1).

The top layer of the lazy gossip tracks similarity between profiles and
discovers new neighbours.  Its key cost-saving device is the 3-step
exchange, now carried by explicit transport messages:

1. **Digests** -- the partners swap
   :class:`~repro.simulator.transport.DigestAdvertisement` messages carrying
   Bloom-filter digests of (a sample of) the profiles they store.  A digest
   that describes an unchanged, already-known profile, or a user sharing no
   item with the receiver, is dropped immediately.
2. **Common items** -- for the remaining candidates, the receiver sends the
   *provider* (who stores those profiles) a
   :class:`~repro.simulator.transport.CommonItemsRequest` for the tagging
   actions restricted to the items the receiver also tagged, which is
   exactly the information needed to compute the similarity score.
3. **Full profiles** -- only the candidates that enter the receiver's top-c
   (and therefore must be stored locally) have their complete profiles
   transferred (:class:`~repro.simulator.transport.FullProfileRequest` /
   :class:`~repro.simulator.transport.FullProfilePush`).

The same integration routine is reused by the eager mode ("maintain personal
network as in lazy mode", Algorithm 3 lines 12 and 24), so query gossip
doubles as a freshness wave for the personal networks it touches.

All byte accounting happens inside the transport (one hook pricing every
message through :func:`repro.gossip.sizes.total_bytes`); this module never
touches the stats collector.  The steps 2 and 3 sub-requests are synchronous
control round-trips in every transport -- a lossy transport may drop them
(the candidate is simply skipped, like an unavailable provider), but a
latency transport only delays the *top-level* advertisement, never the
sub-requests of an exchange already being processed.

The protocol is sans-io: every operation with I/O is a generator yielding
:mod:`repro.simulator.effects` (requests, sends, reachability probes) and
receiving the outcomes back at the ``yield``.  The step-2/3 round-trips
*nested inside* an exchange are what forces the generator shape -- a flat
"return the outbound messages" API could not express a handler that needs
an answer mid-flight.  The cycle engine drives the generators through
:func:`~repro.simulator.effects.drive` (bit-identical to the pre-generator
code); the asyncio service runtime awaits the same generators over a
datagram wire.

This module sits on the hot path of every lazy cycle.  It leans on the
performance layer described in ``docs/ARCHITECTURE.md``: the receiver's item
and action views (``profile.items`` / ``profile.actions``) are per-version
cached frozensets, digest probes hit the bit-packed Bloom filter through the
shared hash-base cache, and similarity scores are C-level set intersections
(:func:`repro.similarity.metrics.overlap_score_from_actions`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..similarity.metrics import overlap_score_from_actions
from ..simulator.effects import (
    PeerDigestEffect,
    ProbeEffect,
    RequestEffect,
    WireEffects,
    drive,
)
from ..simulator.network import Network
from ..simulator.transport import (
    VIEW_PERSONAL,
    CommonItemsRequest,
    DigestAdvertisement,
    Envelope,
    FullProfileRequest,
)
from .digest import DigestCache, ProfileDigest

#: Default number of stored-profile digests advertised per gossip message
#: (the paper exchanges at most 50 profiles per cycle).
DEFAULT_EXCHANGE_SIZE = 50


class LazyExchangeProtocol:
    """Personal-network maintenance through pairwise profile gossip."""

    def __init__(
        self,
        exchange_size: int = DEFAULT_EXCHANGE_SIZE,
        account_traffic: bool = True,
        three_step: bool = True,
        digest_cache: Optional[DigestCache] = None,
    ) -> None:
        """``three_step=False`` disables the digest pre-filtering and ships
        full profiles for every advertised user -- the ablation baseline for
        the bandwidth experiments.

        ``digest_cache`` is the simulation-shared incremental cache; with it,
        one exchange's candidate set is priced in a single batched pass over
        the receiver's cached probe-mask rows and unchanged (receiver,
        subject) pairs are never re-probed.  Without it the protocol probes
        digests directly (identical results, per-item hashing costs).
        """
        if exchange_size <= 0:
            raise ValueError("exchange_size must be positive")
        self.exchange_size = exchange_size
        self.account_traffic = account_traffic
        self.three_step = three_step
        self.digest_cache = digest_cache
        #: receiver_id -> {subject_id -> last digest version already
        #: evaluated}, so an unchanged random-view member is not re-scored
        #: every cycle.  Nested (rather than tuple-keyed) because the outer
        #: lookup happens once per refresh while the inner one runs per
        #: digest per cycle -- no tuple allocation on the steady-state path.
        self._evaluated: Dict[int, Dict[int, int]] = {}

    # -- digest probing (cache-accelerated, identical semantics) ---------------

    def _common_items(self, receiver, digest: ProfileDigest) -> Set[int]:
        """``digest``'s overlap with the receiver's items, via the cache."""
        if self.digest_cache is not None:
            return self.digest_cache.common_items(receiver.profile, digest)
        return digest.common_items_with(receiver.profile.items)

    def _shares_item(self, receiver, digest: ProfileDigest) -> bool:
        if self.digest_cache is not None:
            return self.digest_cache.shares_item(receiver.profile, digest)
        return digest.shares_item_with(receiver.profile.items)

    # -- cycle entry points ---------------------------------------------------

    def run_cycle(self, initiator, network: Network) -> Optional[int]:
        """One lazy top-layer cycle for ``initiator``.

        Selects the personal-network neighbour with the oldest timestamp
        (falling back to a random-view member while the personal network is
        still empty), performs the symmetric exchange, and refreshes
        candidates coming from the random view.  Returns the partner id, or
        ``None`` if no partner was reachable.
        """
        return drive(self.run_cycle_effects(initiator), network)

    def run_cycle_effects(self, initiator) -> WireEffects:
        """Sans-io core of :meth:`run_cycle` (yields wire effects)."""
        partner_id = initiator.personal_network.select_oldest()
        if partner_id is None:
            partner_id = initiator.random_view.random_partner(initiator.rng)
        if partner_id is None:
            yield from self.refresh_from_random_view_effects(initiator)
            return None
        if partner_id in initiator.personal_network:
            initiator.personal_network.mark_gossiped(partner_id)
        # Reachability check BEFORE sampling: stored_digest_sample consumes
        # the initiator's RNG stream, and an unreachable partner must not
        # consume it (seed ordering; the transport re-checks on delivery).
        if not (yield ProbeEffect(partner_id)):
            # Partner departed: the cycle's slot is lost, but the random view
            # is still a source of fresh candidates.
            yield from self.refresh_from_random_view_effects(initiator)
            return None
        exchanged = yield from self.exchange_effects(initiator, partner_id)
        yield from self.refresh_from_random_view_effects(initiator)
        return partner_id if exchanged else None

    def exchange(self, initiator, partner_id: int, network: Network) -> bool:
        """Symmetric digest/profile exchange between two online peers.

        Returns ``True`` when the exchange was delivered (or deferred by a
        latency transport -- it will complete when the queue drains), and
        ``False`` when the advertisement was lost.
        """
        return drive(self.exchange_effects(initiator, partner_id), network)

    def exchange_effects(self, initiator, partner_id: int) -> WireEffects:
        """Sans-io core of :meth:`exchange` (yields wire effects)."""
        sent = tuple(initiator.stored_digest_sample(self.exchange_size))
        dispatch = yield RequestEffect(
            initiator.node_id,
            partner_id,
            DigestAdvertisement(digests=sent, view=VIEW_PERSONAL),
            account=self.account_traffic,
        )
        if dispatch.reply is not None:
            yield from self.integrate_effects(
                initiator, partner_id, dispatch.reply.digests
            )
            return True
        return dispatch.deferred

    # -- receiving side -------------------------------------------------------

    def handle_advertisement(self, receiver, envelope: Envelope) -> Optional[DigestAdvertisement]:
        """Process an incoming lazy advertisement; reply with ours when asked.

        Driven against the receiver's live network (the cycle engine's
        synchronous path); the service runtime awaits
        :meth:`handle_advertisement_effects` instead.
        """
        return drive(self.handle_advertisement_effects(receiver, envelope), receiver.network)

    def handle_advertisement_effects(self, receiver, envelope: Envelope) -> WireEffects:
        """Sans-io core of :meth:`handle_advertisement`.

        The reply sample is drawn *before* integration, matching the seed's
        order (both samples were taken before either side integrated).
        """
        reply: Optional[DigestAdvertisement] = None
        if envelope.expects_reply:
            digests = tuple(receiver.stored_digest_sample(self.exchange_size))
            reply = DigestAdvertisement(digests=digests, view=VIEW_PERSONAL)
        yield from self.integrate_effects(
            receiver,
            envelope.sender,
            envelope.message.digests,
            query_id=envelope.query_id,
        )
        return reply

    # -- transport round-trips ------------------------------------------------

    def _fetch_common_actions_effects(
        self,
        receiver,
        provider_id: int,
        subject_id: int,
        items: Set[int],
        query_id: Optional[int] = None,
    ) -> WireEffects:
        """Step-2 round-trip: the subject's actions on the common items.

        The reply carries interned action ids (see
        :class:`~repro.simulator.transport.CommonItemsReply`): same
        cardinality, same accounting, same overlap score as the tuple form.
        ``items`` is handed to the message as-is (no defensive copy: this is
        the hot path and every handler treats message payloads as read-only).
        """
        dispatch = yield RequestEffect(
            receiver.node_id,
            provider_id,
            CommonItemsRequest(subject_id=subject_id, items=items),
            query_id=query_id,
            account=self.account_traffic,
        )
        return dispatch.reply.actions if dispatch.reply is not None else None

    def _fetch_profile_effects(
        self,
        receiver,
        provider_id: int,
        subject_id: int,
        query_id: Optional[int] = None,
    ) -> WireEffects:
        """Step-3 round-trip: a full profile replica from its holder."""
        dispatch = yield RequestEffect(
            receiver.node_id,
            provider_id,
            FullProfileRequest(subject_id=subject_id),
            query_id=query_id,
            account=self.account_traffic,
        )
        return dispatch.reply.profile if dispatch.reply is not None else None

    # -- Algorithm 1 ----------------------------------------------------------

    def integrate(
        self,
        receiver,
        provider_id: int,
        digests: Iterable[ProfileDigest],
        network: Network,
        query_id: Optional[int] = None,
    ) -> List[int]:
        """Process digests received from the provider (Algorithm 1).

        Returns the list of user ids that were added to / refreshed in the
        receiver's personal network.
        """
        return drive(
            self.integrate_effects(receiver, provider_id, digests, query_id=query_id),
            network,
        )

    def integrate_effects(
        self,
        receiver,
        provider_id: int,
        digests: Iterable[ProfileDigest],
        query_id: Optional[int] = None,
    ) -> WireEffects:
        """Sans-io core of :meth:`integrate` (yields wire effects)."""
        own_ids = receiver.profile.action_ids

        #: (digest, gated) in advertisement order; ``gated`` marks unknown
        #: candidates that must pass the step-1 common-item gate.
        screened: List[Tuple[ProfileDigest, bool]] = []
        for digest in digests:
            if digest.user_id == receiver.node_id:
                continue
            existing = receiver.personal_network.get(digest.user_id)
            if existing is not None:
                if digest.version <= existing.digest.version and existing.profile is not None:
                    # Known neighbour, unchanged digest, replica present: drop.
                    continue
                screened.append((digest, False))
                continue
            screened.append((digest, self.three_step))

        # Step 1 gate, batched: price the whole candidate set's common items
        # in one pass over the receiver's cached probe rows.  A gated
        # candidate sharing no item cannot have a positive score: drop.
        candidates: List[ProfileDigest] = []
        #: user_id -> common items found at the step-1 gate, reused in step 2
        #: so the digest is probed only once per exchange.
        common_by_user: Dict[int, Set[int]] = {}
        for digest, gated in screened:
            if gated:
                common = self._common_items(receiver, digest)
                if not common:
                    continue
                common_by_user[digest.user_id] = common
            candidates.append(digest)

        updated: List[int] = []
        fetched_profiles: Set[int] = set()
        for digest in candidates:
            if not self.three_step:
                profile = yield from self._fetch_profile_effects(
                    receiver, provider_id, digest.user_id, query_id
                )
                if profile is None:
                    continue
                score = overlap_score_from_actions(own_ids, profile.action_ids)
                if receiver.personal_network.consider(digest.user_id, score, digest):
                    receiver.personal_network.store_profile(digest.user_id, profile)
                    updated.append(digest.user_id)
                    fetched_profiles.add(digest.user_id)
                continue

            # Step 2: pull only the actions on common items to score exactly.
            common_items = common_by_user.get(digest.user_id)
            if common_items is None:  # known-but-changed neighbour, not gated
                common_items = self._common_items(receiver, digest)
            actions = yield from self._fetch_common_actions_effects(
                receiver, provider_id, digest.user_id, common_items, query_id
            )
            if actions is None:
                continue
            score = overlap_score_from_actions(own_ids, actions)
            if score <= 0:
                # A Bloom false positive: no real common action after all.
                continue
            if receiver.personal_network.consider(digest.user_id, score, digest):
                updated.append(digest.user_id)

        # Step 3: fetch the full profiles of freshly-qualified top-c entries.
        if self.three_step:
            wanted = set(receiver.personal_network.profiles_wanted())
            for user_id in sorted(wanted):
                if user_id in fetched_profiles:
                    continue
                profile = yield from self._fetch_profile_effects(
                    receiver, provider_id, user_id, query_id
                )
                if profile is None:
                    continue
                receiver.personal_network.store_profile(user_id, profile)
        return updated

    # -- random-view candidates -----------------------------------------------

    def refresh_from_random_view(self, peer, network: Network) -> List[int]:
        """Score random-view members that might share an item (Section 2.2.1).

        The profile of a random-view member ``v`` is obtained by contacting
        ``v`` directly when her digest contains at least one item the local
        user tagged.  A member whose digest version has already been
        evaluated is skipped, so stable views do not generate traffic every
        cycle.
        """
        return drive(self.refresh_from_random_view_effects(peer), network)

    def refresh_from_random_view_effects(self, peer) -> WireEffects:
        """Sans-io core of :meth:`refresh_from_random_view`.

        The candidate's *current* digest is requested through a
        :class:`~repro.simulator.effects.PeerDigestEffect` carrying the
        random-view copy as fallback: the engine answers with the live
        digest (the seed's behaviour), a real network with the fallback.
        """
        own_ids = peer.profile.action_ids
        added: List[int] = []
        evaluated = self._evaluated.get(peer.node_id)
        if evaluated is None:
            evaluated = self._evaluated[peer.node_id] = {}
        for digest in peer.random_view.digests():
            if evaluated.get(digest.user_id, -1) >= digest.version:
                continue
            evaluated[digest.user_id] = digest.version
            if digest.user_id in peer.personal_network:
                continue
            if self.three_step and not self._shares_item(peer, digest):
                # Gate on the (memoized) common-item probe: a member sharing
                # no item with us cannot enter the personal network.
                continue
            subject_id = digest.user_id
            if not (yield ProbeEffect(subject_id)):
                continue
            if not self.three_step:
                # Ablation variant: fetch the whole profile straight away.
                profile = yield from self._fetch_profile_effects(
                    peer, subject_id, subject_id
                )
                if profile is None:
                    continue
                score = overlap_score_from_actions(own_ids, profile.action_ids)
                if score > 0:
                    subject_digest = yield PeerDigestEffect(subject_id, digest)
                    if peer.personal_network.consider(subject_id, score, subject_digest):
                        added.append(subject_id)
                        peer.personal_network.store_profile(subject_id, profile)
                continue
            common_items = self._common_items(peer, digest)
            actions = yield from self._fetch_common_actions_effects(
                peer, subject_id, subject_id, common_items
            )
            if actions is None:
                continue
            score = overlap_score_from_actions(own_ids, actions)
            if score <= 0:
                continue
            subject_digest = yield PeerDigestEffect(subject_id, digest)
            if peer.personal_network.consider(subject_id, score, subject_digest):
                added.append(subject_id)
                if subject_id in peer.personal_network.profiles_wanted():
                    profile = yield from self._fetch_profile_effects(
                        peer, subject_id, subject_id
                    )
                    if profile is not None:
                        peer.personal_network.store_profile(subject_id, profile)
        return added
