"""Wire-size model for gossip traffic.

The paper's bandwidth results (Section 3.3.2) are derived from a concrete
byte-level cost model rather than from serialized Java objects:

* a user id is 4 bytes;
* an item (URL) is identified by its 128-bit MD4 hash: 16 bytes;
* a tag is a 16-byte string;
* therefore a tagging action ``(user implied, item, tag)`` costs 36 bytes
  (16 + 16 + 4 for the tagging user's id);
* a profile digest is a 20 Kbit Bloom filter: 2,500 bytes;
* a score (similarity or partial relevance) is a 4-byte integer.

This module centralizes those constants and the size formulas for every
message type so that experiments and tests agree on the accounting.
:func:`total_bytes` maps each transport :class:`~repro.simulator.transport.Message`
to its wire size through these formulas, so the transport layer's accounting
hook and the tests share a single cost model.
"""

from __future__ import annotations

from ..simulator.transport import (
    CommonItemsReply,
    CommonItemsRequest,
    DigestAdvertisement,
    FullProfilePush,
    FullProfileRequest,
    Message,
    QueryForward,
    QueryResult,
    RemainingReturn,
)

USER_ID_BYTES = 4
ITEM_ID_BYTES = 16
TAG_BYTES = 16
SCORE_BYTES = 4
#: One tagging action on the wire: item hash + tag string + tagging user id.
TAGGING_ACTION_BYTES = ITEM_ID_BYTES + TAG_BYTES + USER_ID_BYTES
#: A 20 Kbit Bloom-filter digest.
DIGEST_BYTES = 20_000 // 8


def digest_message_size(num_digests: int) -> int:
    """Size of a message carrying ``num_digests`` profile digests.

    Each digest travels with the 4-byte id of the user it describes (the
    contact information the paper mentions but elides).
    """
    if num_digests < 0:
        raise ValueError("num_digests must be non-negative")
    return num_digests * (DIGEST_BYTES + USER_ID_BYTES)


def tagging_actions_size(num_actions: int) -> int:
    """Size of a batch of tagging actions (common items or full profiles)."""
    if num_actions < 0:
        raise ValueError("num_actions must be non-negative")
    return num_actions * TAGGING_ACTION_BYTES


def remaining_list_size(num_users: int) -> int:
    """Size of a remaining list: one user id per entry."""
    if num_users < 0:
        raise ValueError("num_users must be non-negative")
    return num_users * USER_ID_BYTES


def partial_result_size(num_items: int, num_contributors: int) -> int:
    """Size of a partial result message sent back to the querier.

    The message carries, per item, its identifier and its 4-byte partial
    relevance score, plus the ids of the users whose profiles were used to
    build the list (the querier uses those to track result quality and to
    avoid double counting).
    """
    if num_items < 0 or num_contributors < 0:
        raise ValueError("sizes must be non-negative")
    return num_items * (ITEM_ID_BYTES + SCORE_BYTES) + num_contributors * USER_ID_BYTES


def _query_result_size(message: QueryResult) -> int:
    partial = message.partial
    return partial_result_size(len(partial.scores), len(partial.contributors))


#: Exact-type size table (a dict lookup: total_bytes sits on the accounting
#: hot path, called once per payload-bearing message).
_MESSAGE_SIZERS = {
    CommonItemsReply: lambda m: 0 if m.actions is None else tagging_actions_size(len(m.actions)),
    DigestAdvertisement: lambda m: digest_message_size(len(m.digests)),
    FullProfilePush: lambda m: 0 if m.profile is None else tagging_actions_size(len(m.profile)),
    QueryForward: lambda m: remaining_list_size(len(m.remaining)),
    RemainingReturn: lambda m: remaining_list_size(len(m.remaining)),
    QueryResult: _query_result_size,
    CommonItemsRequest: lambda m: 0,
    FullProfileRequest: lambda m: 0,
}


def total_bytes(message: Message) -> int:
    """Wire size of one transport message under the paper's cost model.

    Control messages (the two request types) cost 0 bytes -- the paper's
    accounting only charges payloads -- as do the failure replies whose
    payload is ``None`` (the seed never accounted those non-exchanges).
    """
    sizer = _MESSAGE_SIZERS.get(type(message))
    if sizer is None:
        raise TypeError(f"unknown message type {type(message).__name__}")
    return sizer(message)


def profile_length(num_actions: int) -> int:
    """Paper's storage metric: a profile's length is its number of actions."""
    if num_actions < 0:
        raise ValueError("num_actions must be non-negative")
    return num_actions


def profile_storage_bytes(num_actions: int) -> int:
    """Bytes needed to store a profile of ``num_actions`` tagging actions."""
    return tagging_actions_size(num_actions)
