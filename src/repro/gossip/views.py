"""Node-local views: the personal network and the random view.

Every P3Q user maintains (Figure 1 of the paper):

* a **personal network** of the ``s`` most similar users.  Each entry keeps
  the neighbour's id, similarity score, profile digest and a gossip
  timestamp; only the ``c`` highest-scored entries also keep a full local
  replica of the neighbour's profile;
* a **random view** of ``r`` users picked uniformly at random from the whole
  system, maintained by the peer-sampling layer, each with a profile digest.

Both views hold :class:`~repro.gossip.digest.ProfileDigest` snapshots backed
by the bit-packed Bloom filter, and stored replicas are
:class:`~repro.data.models.UserProfile` copies that carry their interned
indexes with them -- so view maintenance and query scoring stay on the fast
paths described in ``docs/ARCHITECTURE.md``.

View maintenance is *dirty-set driven*: the score ranking of a personal
network and the sorted membership of a random view are cached and only
recomputed after a mutation that can change them (``consider`` /
``_truncate`` / ``merge``), never per read.  A steady cycle -- in which
most peers' profiles did not change and most views did not move -- performs
no sorting at all, and the recomputations that do happen use partial
selection (``heapq``) instead of full sorts where only a prefix is needed.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..data.models import UserProfile
from .digest import ProfileDigest


@dataclass
class NeighbourEntry:
    """One neighbour of the personal network."""

    user_id: int
    score: float
    digest: ProfileDigest
    #: Number of cycles since this neighbour was last gossiped with.
    timestamp: int = 0
    #: Local replica of the neighbour's profile (only for the top-c entries).
    profile: Optional[UserProfile] = None

    @property
    def stored_version(self) -> Optional[int]:
        """Version of the stored replica, or ``None`` when nothing is stored."""
        return self.profile.version if self.profile is not None else None


def _rank_key(entry: NeighbourEntry) -> Tuple[float, int]:
    """Total-order ranking key: descending score, ascending user id."""
    return (-entry.score, entry.user_id)


#: Storage-boundary sentinel comparing worse than any real rank key: with
#: fewer than ``storage`` entries, every entry (and every candidate) is
#: within the replica budget.
_BOUNDARY_ALL: Tuple[float, int] = (float("inf"), -1)


class PersonalNetwork:
    """The ``s`` most similar neighbours, with profiles stored for the top ``c``."""

    def __init__(self, owner_id: int, size: int, storage: int) -> None:
        if size <= 0:
            raise ValueError("personal network size (s) must be positive")
        if storage < 0:
            raise ValueError("storage budget (c) must be non-negative")
        self.owner_id = owner_id
        self.size = size
        self.storage = min(storage, size)
        self._entries: Dict[int, NeighbourEntry] = {}
        #: Cached descending-score ranking; ``None`` after any mutation that
        #: can change scores or membership (the view's dirty marker).
        self._ranked: Optional[List[NeighbourEntry]] = None
        #: Rank key of the ``storage``-th best entry -- the admission
        #: threshold of the replica budget.  ``None`` means unknown (dirty);
        #: :data:`_BOUNDARY_ALL` means fewer than ``storage`` entries exist,
        #: so every entry is within budget.  A mutation whose keys stay
        #: strictly worse than the boundary on both sides provably cannot
        #: change the top-``c`` set, letting ``consider`` skip the budget
        #: scan entirely -- the common case in steady state.
        self._storage_boundary: Optional[Tuple[float, int]] = _BOUNDARY_ALL

    # -- basic accessors ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._entries

    def entry(self, user_id: int) -> NeighbourEntry:
        return self._entries[user_id]

    def get(self, user_id: int) -> Optional[NeighbourEntry]:
        return self._entries.get(user_id)

    def member_ids(self) -> List[int]:
        """All neighbour ids, descending score."""
        return [entry.user_id for entry in self.ranked_entries()]

    def ranked_entries(self) -> List[NeighbourEntry]:
        """Entries ordered by descending score (ties on user id).

        The ranking is cached until the next score/membership mutation;
        callers receive a fresh list they may slice or filter, but must not
        mutate the entries' scores directly (go through :meth:`consider`).
        """
        if self._ranked is None:
            self._ranked = sorted(
                self._entries.values(), key=lambda e: (-e.score, e.user_id)
            )
        return list(self._ranked)

    def score_of(self, user_id: int) -> float:
        entry = self._entries.get(user_id)
        return entry.score if entry is not None else 0.0

    # -- stored replicas ------------------------------------------------------

    def stored_entries(self) -> List[NeighbourEntry]:
        return [entry for entry in self.ranked_entries() if entry.profile is not None]

    def stored_ids(self) -> List[int]:
        return [entry.user_id for entry in self.stored_entries()]

    def stored_profiles(self) -> Dict[int, UserProfile]:
        """user_id -> locally stored profile replica."""
        return {
            entry.user_id: entry.profile
            for entry in self._entries.values()
            if entry.profile is not None
        }

    def has_stored_profile(self, user_id: int) -> bool:
        entry = self._entries.get(user_id)
        return entry is not None and entry.profile is not None

    def unstored_ids(self) -> List[int]:
        """Neighbours whose profiles are *not* stored locally.

        This is exactly the initial remaining list of a query issued by the
        owner of this personal network.
        """
        return [entry.user_id for entry in self.ranked_entries() if entry.profile is None]

    # -- maintenance ----------------------------------------------------------

    def consider(self, user_id: int, score: float, digest: ProfileDigest) -> bool:
        """Insert or refresh a neighbour candidate.

        Keeps the invariant that the network holds at most ``size`` entries,
        all with positive scores, and that stored profiles only exist for the
        ``storage`` highest-scored ones.  Returns ``True`` if the user is a
        member of the network after the call.
        """
        if user_id == self.owner_id:
            return False
        if score <= 0:
            # Zero-score users never qualify; drop them if they were members
            # (their score can only have been recomputed downward after a
            # profile change on our side).
            removed = self._entries.pop(user_id, None)
            if removed is not None:
                self._ranked = None
                boundary = self._storage_boundary
                if (
                    boundary is None
                    or removed.profile is not None
                    or _rank_key(removed) <= boundary
                ):
                    # A top-c member left: the budget set shifts.
                    self._enforce_storage_budget()
            return False
        existing = self._entries.get(user_id)
        if existing is not None:
            if existing.score != score:
                old_key = _rank_key(existing)
                existing.score = score
                new_key = _rank_key(existing)
                self._ranked = None
                boundary = self._storage_boundary
                if (
                    boundary is None
                    or existing.profile is not None
                    or old_key <= boundary
                    or new_key <= boundary
                ):
                    # The move touches the top-c region: re-derive the set.
                    self._enforce_storage_budget()
                # Otherwise the entry moved strictly below the admission
                # threshold on both sides: the top-c set is untouched.
            if digest.version >= existing.digest.version:
                existing.digest = digest
                if existing.profile is not None and existing.profile.version < digest.version:
                    # The stored replica is stale; it remains usable (old
                    # opinions stay meaningful) until refreshed by gossip.
                    pass
            return True
        entry = NeighbourEntry(user_id=user_id, score=score, digest=digest)
        self._entries[user_id] = entry
        self._ranked = None
        if len(self._entries) > self.size:
            self._truncate()
        else:
            boundary = self._storage_boundary
            if boundary is None or _rank_key(entry) <= boundary:
                self._enforce_storage_budget()
            # A newcomer ranked strictly below the admission threshold
            # cannot displace a stored replica: skip the budget scan.
        return user_id in self._entries

    def _truncate(self) -> None:
        """Keep only the ``size`` best entries and demote excess replicas."""
        if len(self._entries) > self.size:
            keep = heapq.nsmallest(self.size, self._entries.values(), key=_rank_key)
            keep_ids = {entry.user_id for entry in keep}
            for user_id in [uid for uid in self._entries if uid not in keep_ids]:
                del self._entries[user_id]
            # nsmallest on the ranking key *is* the ranking of the survivors.
            self._ranked = keep
        self._enforce_storage_budget()

    def _top_ids(self, count: int) -> set:
        """Ids of the ``count`` highest-ranked entries (partial selection)."""
        if count >= len(self._entries):
            return set(self._entries)
        if self._ranked is not None:
            return {entry.user_id for entry in self._ranked[:count]}
        top = heapq.nsmallest(count, self._entries.values(), key=_rank_key)
        return {entry.user_id for entry in top}

    def _enforce_storage_budget(self) -> None:
        entries = self._entries
        storage = self.storage
        if len(entries) <= storage:
            # Everything fits the budget; no replica can be demoted.
            self._storage_boundary = _BOUNDARY_ALL
            return
        if self._ranked is not None:
            top = self._ranked[:storage]
        else:
            top = heapq.nsmallest(storage, entries.values(), key=_rank_key)
        self._storage_boundary = _rank_key(top[-1]) if top else _BOUNDARY_ALL
        keep = {entry.user_id for entry in top}
        for entry in entries.values():
            if entry.profile is not None and entry.user_id not in keep:
                entry.profile = None
        # Entries in `keep` may still lack a profile; fetching it is the
        # responsibility of the exchange protocol (profiles_wanted()).

    def profiles_wanted(self) -> List[int]:
        """Top-``storage`` neighbours whose replica is missing or stale."""
        wanted: List[int] = []
        for entry in self.ranked_entries()[: self.storage]:
            if entry.profile is None or entry.profile.version < entry.digest.version:
                wanted.append(entry.user_id)
        return wanted

    def store_profile(self, user_id: int, profile: UserProfile) -> bool:
        """Store (a copy of) a neighbour's profile if she is in the top-``c``.

        Returns ``True`` if the replica was stored.
        """
        entry = self._entries.get(user_id)
        if entry is None:
            return False
        if user_id not in self._top_ids(self.storage):
            return False
        entry.profile = profile.copy()
        return True

    def drop_member(self, user_id: int) -> None:
        """Remove a neighbour entirely (not used by the paper's protocol,
        which never forgets departed users, but exposed for experiments)."""
        if self._entries.pop(user_id, None) is not None:
            self._ranked = None
            self._storage_boundary = None
            self._enforce_storage_budget()

    # -- gossip partner selection ---------------------------------------------

    def select_oldest(self, restrict_to: Optional[Iterable[int]] = None) -> Optional[int]:
        """The neighbour with the oldest timestamp, without mutating state.

        ``restrict_to`` limits the choice to a subset (the eager mode only
        gossips with neighbours that are also in the remaining list).
        """
        candidates: Iterable[NeighbourEntry] = self._entries.values()
        if restrict_to is not None:
            allowed = set(restrict_to)
            candidates = [entry for entry in candidates if entry.user_id in allowed]
            if not candidates:
                return None
        elif not self._entries:
            return None
        oldest = min(candidates, key=lambda e: (-e.timestamp, -e.score, e.user_id))
        return oldest.user_id

    def mark_gossiped(self, user_id: int) -> None:
        """Reset the partner's timestamp and age every other entry by one."""
        for entry in self._entries.values():
            if entry.user_id == user_id:
                entry.timestamp = 0
            else:
                entry.timestamp += 1

    # -- storage metric -------------------------------------------------------

    def stored_profile_length(self) -> int:
        """Sum of stored replica lengths (the paper's Figure 5 metric)."""
        return sum(len(entry.profile) for entry in self._entries.values() if entry.profile)

    def total_profile_length(self, profile_lengths: Dict[int, int]) -> int:
        """Sum of *all* neighbours' profile lengths (storage upper bound)."""
        return sum(profile_lengths.get(uid, 0) for uid in self._entries)


class RandomView:
    """The ``r`` uniformly random neighbours maintained by peer sampling."""

    def __init__(self, owner_id: int, size: int) -> None:
        if size <= 0:
            raise ValueError("random view size (r) must be positive")
        self.owner_id = owner_id
        self.size = size
        self._entries: Dict[int, ProfileDigest] = {}
        #: Cached sorted membership and digest list; ``None`` after any
        #: mutation (dirty markers).  Peer sampling and the random-view
        #: refresh read the view three times per cycle per node while
        #: membership changes at most once, so caching pays every cycle.
        self._sorted_ids: Optional[List[int]] = None
        self._digest_list: Optional[List[ProfileDigest]] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._entries

    def member_ids(self) -> List[int]:
        if self._sorted_ids is None:
            self._sorted_ids = sorted(self._entries)
        return list(self._sorted_ids)

    def digests(self) -> List[ProfileDigest]:
        if self._digest_list is None:
            entries = self._entries
            if self._sorted_ids is None:
                self._sorted_ids = sorted(entries)
            self._digest_list = [entries[uid] for uid in self._sorted_ids]
        return list(self._digest_list)

    def digest_of(self, user_id: int) -> Optional[ProfileDigest]:
        return self._entries.get(user_id)

    def add(self, digest: ProfileDigest) -> None:
        """Insert a digest directly (bootstrap)."""
        if digest.user_id == self.owner_id:
            return
        self._entries[digest.user_id] = digest
        self._sorted_ids = None
        self._digest_list = None
        self._shrink_random(random.Random(self.owner_id))

    def random_partner(self, rng: random.Random) -> Optional[int]:
        """A uniformly random member to gossip with."""
        members = self.member_ids()
        if not members:
            return None
        return rng.choice(members)

    def merge(self, received: Iterable[ProfileDigest], rng: random.Random) -> None:
        """Union with the received digests, then keep ``size`` at random.

        Newer digest versions replace older ones for the same user; the owner
        is never a member of her own view.  The union mutates the entry dict
        in place (the received digests never reference it), saving one dict
        copy on a path that runs twice per node per cycle.
        """
        entries = self._entries
        owner_id = self.owner_id
        get = entries.get
        for digest in received:
            user_id = digest.user_id
            if user_id == owner_id:
                continue
            current = get(user_id)
            if current is None or digest.version >= current.version:
                entries[user_id] = digest
        self._sorted_ids = None
        self._digest_list = None
        self._shrink_random(rng)

    def _shrink_random(self, rng: random.Random) -> None:
        if len(self._entries) <= self.size:
            return
        keep = rng.sample(sorted(self._entries), k=self.size)
        self._entries = {uid: self._entries[uid] for uid in keep}
        self._sorted_ids = None
        self._digest_list = None
