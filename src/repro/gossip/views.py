"""Node-local views: the personal network and the random view.

Every P3Q user maintains (Figure 1 of the paper):

* a **personal network** of the ``s`` most similar users.  Each entry keeps
  the neighbour's id, similarity score, profile digest and a gossip
  timestamp; only the ``c`` highest-scored entries also keep a full local
  replica of the neighbour's profile;
* a **random view** of ``r`` users picked uniformly at random from the whole
  system, maintained by the peer-sampling layer, each with a profile digest.

Both views hold :class:`~repro.gossip.digest.ProfileDigest` snapshots backed
by the bit-packed Bloom filter, and stored replicas are
:class:`~repro.data.models.UserProfile` copies that carry their interned
indexes with them -- so view maintenance and query scoring stay on the fast
paths described in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..data.models import UserProfile
from .digest import ProfileDigest


@dataclass
class NeighbourEntry:
    """One neighbour of the personal network."""

    user_id: int
    score: float
    digest: ProfileDigest
    #: Number of cycles since this neighbour was last gossiped with.
    timestamp: int = 0
    #: Local replica of the neighbour's profile (only for the top-c entries).
    profile: Optional[UserProfile] = None

    @property
    def stored_version(self) -> Optional[int]:
        """Version of the stored replica, or ``None`` when nothing is stored."""
        return self.profile.version if self.profile is not None else None


class PersonalNetwork:
    """The ``s`` most similar neighbours, with profiles stored for the top ``c``."""

    def __init__(self, owner_id: int, size: int, storage: int) -> None:
        if size <= 0:
            raise ValueError("personal network size (s) must be positive")
        if storage < 0:
            raise ValueError("storage budget (c) must be non-negative")
        self.owner_id = owner_id
        self.size = size
        self.storage = min(storage, size)
        self._entries: Dict[int, NeighbourEntry] = {}

    # -- basic accessors ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._entries

    def entry(self, user_id: int) -> NeighbourEntry:
        return self._entries[user_id]

    def get(self, user_id: int) -> Optional[NeighbourEntry]:
        return self._entries.get(user_id)

    def member_ids(self) -> List[int]:
        """All neighbour ids, descending score."""
        return [entry.user_id for entry in self.ranked_entries()]

    def ranked_entries(self) -> List[NeighbourEntry]:
        """Entries ordered by descending score (ties on user id)."""
        return sorted(self._entries.values(), key=lambda e: (-e.score, e.user_id))

    def score_of(self, user_id: int) -> float:
        entry = self._entries.get(user_id)
        return entry.score if entry is not None else 0.0

    # -- stored replicas ------------------------------------------------------

    def stored_entries(self) -> List[NeighbourEntry]:
        return [entry for entry in self.ranked_entries() if entry.profile is not None]

    def stored_ids(self) -> List[int]:
        return [entry.user_id for entry in self.stored_entries()]

    def stored_profiles(self) -> Dict[int, UserProfile]:
        """user_id -> locally stored profile replica."""
        return {
            entry.user_id: entry.profile
            for entry in self._entries.values()
            if entry.profile is not None
        }

    def has_stored_profile(self, user_id: int) -> bool:
        entry = self._entries.get(user_id)
        return entry is not None and entry.profile is not None

    def unstored_ids(self) -> List[int]:
        """Neighbours whose profiles are *not* stored locally.

        This is exactly the initial remaining list of a query issued by the
        owner of this personal network.
        """
        return [entry.user_id for entry in self.ranked_entries() if entry.profile is None]

    # -- maintenance ----------------------------------------------------------

    def consider(self, user_id: int, score: float, digest: ProfileDigest) -> bool:
        """Insert or refresh a neighbour candidate.

        Keeps the invariant that the network holds at most ``size`` entries,
        all with positive scores, and that stored profiles only exist for the
        ``storage`` highest-scored ones.  Returns ``True`` if the user is a
        member of the network after the call.
        """
        if user_id == self.owner_id:
            return False
        if score <= 0:
            # Zero-score users never qualify; drop them if they were members
            # (their score can only have been recomputed downward after a
            # profile change on our side).
            self._entries.pop(user_id, None)
            return False
        existing = self._entries.get(user_id)
        if existing is not None:
            existing.score = score
            if digest.version >= existing.digest.version:
                existing.digest = digest
                if existing.profile is not None and existing.profile.version < digest.version:
                    # The stored replica is stale; it remains usable (old
                    # opinions stay meaningful) until refreshed by gossip.
                    pass
        else:
            self._entries[user_id] = NeighbourEntry(user_id=user_id, score=score, digest=digest)
        self._truncate()
        return user_id in self._entries

    def _truncate(self) -> None:
        """Keep only the ``size`` best entries and demote excess replicas."""
        if len(self._entries) > self.size:
            ranked = self.ranked_entries()
            for entry in ranked[self.size:]:
                del self._entries[entry.user_id]
        self._enforce_storage_budget()

    def _enforce_storage_budget(self) -> None:
        ranked = self.ranked_entries()
        keep = {entry.user_id for entry in ranked[: self.storage]}
        for entry in ranked[self.storage:]:
            if entry.profile is not None:
                entry.profile = None
        # Entries in `keep` may still lack a profile; fetching it is the
        # responsibility of the exchange protocol (profiles_wanted()).
        del keep

    def profiles_wanted(self) -> List[int]:
        """Top-``storage`` neighbours whose replica is missing or stale."""
        wanted: List[int] = []
        for entry in self.ranked_entries()[: self.storage]:
            if entry.profile is None or entry.profile.version < entry.digest.version:
                wanted.append(entry.user_id)
        return wanted

    def store_profile(self, user_id: int, profile: UserProfile) -> bool:
        """Store (a copy of) a neighbour's profile if she is in the top-``c``.

        Returns ``True`` if the replica was stored.
        """
        entry = self._entries.get(user_id)
        if entry is None:
            return False
        top = {e.user_id for e in self.ranked_entries()[: self.storage]}
        if user_id not in top:
            return False
        entry.profile = profile.copy()
        return True

    def drop_member(self, user_id: int) -> None:
        """Remove a neighbour entirely (not used by the paper's protocol,
        which never forgets departed users, but exposed for experiments)."""
        self._entries.pop(user_id, None)

    # -- gossip partner selection ---------------------------------------------

    def select_oldest(self, restrict_to: Optional[Iterable[int]] = None) -> Optional[int]:
        """The neighbour with the oldest timestamp, without mutating state.

        ``restrict_to`` limits the choice to a subset (the eager mode only
        gossips with neighbours that are also in the remaining list).
        """
        candidates = list(self._entries.values())
        if restrict_to is not None:
            allowed = set(restrict_to)
            candidates = [entry for entry in candidates if entry.user_id in allowed]
        if not candidates:
            return None
        candidates.sort(key=lambda e: (-e.timestamp, -e.score, e.user_id))
        return candidates[0].user_id

    def mark_gossiped(self, user_id: int) -> None:
        """Reset the partner's timestamp and age every other entry by one."""
        for entry in self._entries.values():
            if entry.user_id == user_id:
                entry.timestamp = 0
            else:
                entry.timestamp += 1

    # -- storage metric -------------------------------------------------------

    def stored_profile_length(self) -> int:
        """Sum of stored replica lengths (the paper's Figure 5 metric)."""
        return sum(len(entry.profile) for entry in self._entries.values() if entry.profile)

    def total_profile_length(self, profile_lengths: Dict[int, int]) -> int:
        """Sum of *all* neighbours' profile lengths (storage upper bound)."""
        return sum(profile_lengths.get(uid, 0) for uid in self._entries)


class RandomView:
    """The ``r`` uniformly random neighbours maintained by peer sampling."""

    def __init__(self, owner_id: int, size: int) -> None:
        if size <= 0:
            raise ValueError("random view size (r) must be positive")
        self.owner_id = owner_id
        self.size = size
        self._entries: Dict[int, ProfileDigest] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._entries

    def member_ids(self) -> List[int]:
        return sorted(self._entries)

    def digests(self) -> List[ProfileDigest]:
        return [self._entries[uid] for uid in sorted(self._entries)]

    def digest_of(self, user_id: int) -> Optional[ProfileDigest]:
        return self._entries.get(user_id)

    def add(self, digest: ProfileDigest) -> None:
        """Insert a digest directly (bootstrap)."""
        if digest.user_id == self.owner_id:
            return
        self._entries[digest.user_id] = digest
        self._shrink_random(random.Random(self.owner_id))

    def random_partner(self, rng: random.Random) -> Optional[int]:
        """A uniformly random member to gossip with."""
        members = self.member_ids()
        if not members:
            return None
        return rng.choice(members)

    def merge(self, received: Iterable[ProfileDigest], rng: random.Random) -> None:
        """Union with the received digests, then keep ``size`` at random.

        Newer digest versions replace older ones for the same user; the owner
        is never a member of her own view.
        """
        pool: Dict[int, ProfileDigest] = dict(self._entries)
        for digest in received:
            if digest.user_id == self.owner_id:
                continue
            current = pool.get(digest.user_id)
            if current is None or digest.version >= current.version:
                pool[digest.user_id] = digest
        self._entries = pool
        self._shrink_random(rng)

    def _shrink_random(self, rng: random.Random) -> None:
        if len(self._entries) <= self.size:
            return
        keep = rng.sample(sorted(self._entries), k=self.size)
        self._entries = {uid: self._entries[uid] for uid in keep}
