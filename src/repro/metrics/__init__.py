"""Evaluation metrics: recall, convergence, freshness, bandwidth/storage."""

from .recall import (
    average_recall,
    fraction_below_full_recall,
    recall,
    recall_per_cycle,
)
from .convergence import (
    average_success_ratio,
    fraction_with_complete_new_network,
    success_ratio,
    users_with_changed_networks,
)
from .freshness import average_update_rate, profiles_to_update, update_rate
from .bandwidth import (
    MAINTENANCE_KINDS,
    QUERY_KINDS,
    QueryTraffic,
    StorageRequirement,
    average_partial_result_messages,
    average_query_bytes,
    maintenance_bandwidth_bps,
    query_bandwidth_bps,
    query_traffic_breakdown,
    storage_requirements,
)

__all__ = [
    "MAINTENANCE_KINDS",
    "QUERY_KINDS",
    "QueryTraffic",
    "StorageRequirement",
    "average_partial_result_messages",
    "average_query_bytes",
    "average_recall",
    "average_success_ratio",
    "average_update_rate",
    "fraction_below_full_recall",
    "fraction_with_complete_new_network",
    "maintenance_bandwidth_bps",
    "profiles_to_update",
    "query_bandwidth_bps",
    "query_traffic_breakdown",
    "recall",
    "recall_per_cycle",
    "storage_requirements",
    "success_ratio",
    "update_rate",
    "users_with_changed_networks",
]
