"""Bandwidth and storage summaries (Figures 5, 6 and the Section 3.5 numbers)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

from ..gossip.sizes import profile_storage_bytes
from ..simulator.stats import (
    KIND_COMMON_ITEMS,
    KIND_DIGESTS,
    KIND_FULL_PROFILES,
    KIND_PARTIAL_RESULT,
    KIND_RANDOM_VIEW,
    KIND_REMAINING_FORWARD,
    KIND_REMAINING_RETURN,
    StatsCollector,
)

#: Traffic kinds that belong to personal-network maintenance (lazy mode).
MAINTENANCE_KINDS = (KIND_RANDOM_VIEW, KIND_DIGESTS, KIND_COMMON_ITEMS, KIND_FULL_PROFILES)
#: Traffic kinds that belong to query processing (eager mode).
QUERY_KINDS = (KIND_REMAINING_FORWARD, KIND_REMAINING_RETURN, KIND_PARTIAL_RESULT)


@dataclass
class QueryTraffic:
    """Per-query byte breakdown (one row of Figure 6)."""

    query_id: int
    partial_results_bytes: int
    returned_remaining_bytes: int
    forwarded_remaining_bytes: int
    partial_result_messages: int

    @property
    def total_bytes(self) -> int:
        return (
            self.partial_results_bytes
            + self.returned_remaining_bytes
            + self.forwarded_remaining_bytes
        )


def query_traffic_breakdown(stats: StatsCollector) -> List[QueryTraffic]:
    """Figure 6: per-query traffic split by kind, sorted by partial-result bytes."""
    rows: List[QueryTraffic] = []
    for query_id in stats.query_ids():
        by_kind = stats.query_bytes(query_id)
        messages = stats.query_messages(query_id)
        rows.append(
            QueryTraffic(
                query_id=query_id,
                partial_results_bytes=by_kind.get(KIND_PARTIAL_RESULT, 0),
                returned_remaining_bytes=by_kind.get(KIND_REMAINING_RETURN, 0),
                forwarded_remaining_bytes=by_kind.get(KIND_REMAINING_FORWARD, 0),
                partial_result_messages=messages.get(KIND_PARTIAL_RESULT, 0),
            )
        )
    rows.sort(key=lambda row: row.partial_results_bytes)
    return rows


def average_query_bytes(rows: Sequence[QueryTraffic]) -> float:
    """Average total bytes needed to answer a query (paper: 573 KB at λ=1)."""
    if not rows:
        return 0.0
    return sum(row.total_bytes for row in rows) / len(rows)


def average_partial_result_messages(rows: Sequence[QueryTraffic]) -> float:
    """Average number of partial-result messages per query (paper: 228 at λ=1)."""
    if not rows:
        return 0.0
    return sum(row.partial_result_messages for row in rows) / len(rows)


def maintenance_bandwidth_bps(
    stats: StatsCollector,
    seconds_per_cycle: float,
    num_nodes: int,
) -> float:
    """Per-user lazy-maintenance bandwidth in bits per second (Section 3.5)."""
    return stats.average_bandwidth_bps(
        seconds_per_cycle=seconds_per_cycle,
        kinds=MAINTENANCE_KINDS,
        num_nodes=num_nodes,
    )


def query_bandwidth_bps(
    stats: StatsCollector,
    seconds_per_cycle: float,
    num_nodes: int,
) -> float:
    """Per-user eager-mode bandwidth in bits per second (Section 3.5)."""
    return stats.average_bandwidth_bps(
        seconds_per_cycle=seconds_per_cycle,
        kinds=QUERY_KINDS,
        num_nodes=num_nodes,
    )


@dataclass
class StorageRequirement:
    """Per-user storage figures (one point of Figure 5)."""

    user_id: int
    stored_profiles: int
    stored_profile_length: int

    @property
    def stored_bytes(self) -> int:
        return profile_storage_bytes(self.stored_profile_length)


def storage_requirements(
    stored_lengths: Mapping[int, int],
    stored_counts: Mapping[int, int],
) -> List[StorageRequirement]:
    """Figure 5 rows: users ranked by ascending storage requirement."""
    rows = [
        StorageRequirement(
            user_id=user_id,
            stored_profiles=stored_counts.get(user_id, 0),
            stored_profile_length=length,
        )
        for user_id, length in stored_lengths.items()
    ]
    rows.sort(key=lambda row: (row.stored_profile_length, row.user_id))
    return rows
