"""Personal-network convergence metrics (Figures 2 and 10).

* the **success ratio** of a user is the fraction of her *ideal* personal
  network that she has discovered so far; the average over all users per
  lazy cycle is Figure 2's series;
* after a batch of profile changes, the **network update ratio** is the
  fraction of affected users that have discovered *all* of their new ideal
  neighbours (a strict all-or-nothing metric, Figure 10).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Set

from ..similarity.knn import IdealNetworkIndex


def success_ratio(ideal_ids: Sequence[int], discovered_ids: Sequence[int]) -> float:
    """Fraction of the ideal network present in the discovered network."""
    ideal = set(ideal_ids)
    if not ideal:
        return 1.0
    return len(ideal & set(discovered_ids)) / len(ideal)


def average_success_ratio(
    ideal: IdealNetworkIndex,
    discovered: Mapping[int, Sequence[int]],
) -> float:
    """The paper's Figure 2 metric at one point in time."""
    user_ids = ideal.dataset.user_ids
    if not user_ids:
        return 1.0
    total = sum(
        success_ratio(ideal.neighbour_ids(uid), discovered.get(uid, ()))
        for uid in user_ids
    )
    return total / len(user_ids)


def users_with_changed_networks(
    old_ideal: IdealNetworkIndex,
    new_ideal: IdealNetworkIndex,
) -> Dict[int, Set[int]]:
    """user_id -> the *new* neighbours a profile-change day introduced.

    Only users whose ideal personal network actually changed appear in the
    result (the paper: 1,719 users changed an average of 2 neighbours).
    """
    changed: Dict[int, Set[int]] = {}
    for user_id in new_ideal.dataset.user_ids:
        before = set(old_ideal.neighbour_ids(user_id))
        after = set(new_ideal.neighbour_ids(user_id))
        gained = after - before
        if gained:
            changed[user_id] = gained
    return changed


def fraction_with_complete_new_network(
    required_new_neighbours: Mapping[int, Set[int]],
    discovered: Mapping[int, Sequence[int]],
) -> float:
    """Fraction of affected users that discovered *all* their new neighbours.

    This is the strict Figure 10 metric: "even when most of a user's new
    neighbours are discovered, the ratio is still 0 unless her personal
    network is completed".
    """
    if not required_new_neighbours:
        return 1.0
    complete = 0
    for user_id, required in required_new_neighbours.items():
        if required <= set(discovered.get(user_id, ())):
            complete += 1
    return complete / len(required_new_neighbours)
