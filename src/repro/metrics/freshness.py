"""Replica freshness: the average update rate (AUR), Figures 7 and 9.

When profiles change, their replicas scattered across personal networks
become stale until gossip refreshes them.  For one user, the update rate is

    (# updated replicas in her personal network) /
    (# replicas in her personal network that are subject to a change)

and the AUR is the average over users that have at least one replica to
update.  Figure 9 computes the same quantity restricted to the users reached
by eager gossip.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set


def update_rate(
    stored_versions: Mapping[int, int],
    current_versions: Mapping[int, int],
    changed_users: Set[int],
) -> Optional[float]:
    """Update rate of one user's stored replicas.

    ``stored_versions`` maps replica owner -> version of the stored copy;
    ``current_versions`` maps user -> true current profile version;
    ``changed_users`` is the set of users whose profiles changed.  Returns
    ``None`` when none of the stored replicas belongs to a changed user (the
    user has nothing to update and does not enter the average).
    """
    relevant = [uid for uid in stored_versions if uid in changed_users]
    if not relevant:
        return None
    updated = sum(
        1 for uid in relevant if stored_versions[uid] >= current_versions.get(uid, 0)
    )
    return updated / len(relevant)


def average_update_rate(
    replicas_by_owner: Mapping[int, Mapping[int, int]],
    current_versions: Mapping[int, int],
    changed_users: Set[int],
    restrict_to: Optional[Iterable[int]] = None,
) -> float:
    """AUR over all owners (or over ``restrict_to``, for the Figure 9 variant).

    Owners with no replica subject to change are excluded from the average,
    matching the paper's definition (the denominator only counts profiles
    "owing update").  Returns 1.0 when nobody has anything to update.
    """
    owners = set(replicas_by_owner)
    if restrict_to is not None:
        owners &= set(restrict_to)
    rates = []
    for owner in owners:
        rate = update_rate(replicas_by_owner[owner], current_versions, changed_users)
        if rate is not None:
            rates.append(rate)
    if not rates:
        return 1.0
    return sum(rates) / len(rates)


def profiles_to_update(
    replicas_by_owner: Mapping[int, Mapping[int, int]],
    changed_users: Set[int],
) -> Dict[int, int]:
    """owner -> number of stored replicas that belong to changed users.

    This is the quantity behind Table 2 ("average / maximum number of
    profiles to update" per storage budget).
    """
    out: Dict[int, int] = {}
    for owner, replicas in replicas_by_owner.items():
        count = sum(1 for uid in replicas if uid in changed_users)
        if count:
            out[owner] = count
    return out
