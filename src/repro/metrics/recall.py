"""Recall of top-k results against the centralized reference.

``R_k = (# retrieved relevant items) / (# relevant items)``, where the
relevant items of a query are the k items returned by the centralized
baseline (Section 3.2.2).  The experiments report the average ``R_10`` over
all queries, per eager cycle.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def recall(retrieved: Sequence[int], relevant: Sequence[int]) -> float:
    """Recall of one result list against one reference list.

    A query with an empty reference set has recall 1 (nothing to find).
    """
    relevant_set = set(relevant)
    if not relevant_set:
        return 1.0
    retrieved_set = set(retrieved)
    return len(retrieved_set & relevant_set) / len(relevant_set)


def average_recall(
    results: Mapping[int, Sequence[int]],
    references: Mapping[int, Sequence[int]],
) -> float:
    """Average recall over queries present in ``references``.

    Queries missing from ``results`` count as empty result lists, so a query
    that produced nothing drags the average down instead of being ignored.
    """
    if not references:
        return 1.0
    total = 0.0
    for query_id, relevant in references.items():
        total += recall(results.get(query_id, ()), relevant)
    return total / len(references)


def recall_per_cycle(
    snapshots_by_query: Mapping[int, Sequence["object"]],
    references: Mapping[int, Sequence[int]],
    cycles: int,
) -> List[float]:
    """Average recall after each eager cycle 0..cycles (Figures 3, 4, 11).

    ``snapshots_by_query`` maps query id -> list of
    :class:`~repro.p3q.query.CycleSnapshot`; for cycles beyond a query's last
    snapshot its final results are carried forward (the querier keeps
    displaying her best-known answer).
    """
    series: List[float] = []
    for cycle in range(cycles + 1):
        results: Dict[int, Sequence[int]] = {}
        for query_id, snapshots in snapshots_by_query.items():
            usable = [s for s in snapshots if s.cycle <= cycle]
            if usable:
                results[query_id] = usable[-1].items
        series.append(average_recall(results, references))
    return series


def fraction_below_full_recall(
    results: Mapping[int, Sequence[int]],
    references: Mapping[int, Sequence[int]],
) -> float:
    """Fraction of queries whose recall is strictly below 1 (Figure 11c)."""
    if not references:
        return 0.0
    below = sum(
        1
        for query_id, relevant in references.items()
        if recall(results.get(query_id, ()), relevant) < 1.0
    )
    return below / len(references)
