"""P3Q core: configuration, node, query state, eager protocol, analysis."""

from .analysis import (
    DrainTrace,
    alpha_sweep,
    cycles_to_complete,
    max_partial_results,
    max_remaining_list_messages,
    max_users_involved,
    optimal_alpha,
    simulate_remaining_list_drain,
    theoretical_longest_after,
)
from .config import P3QConfig, StorageSpec
from .eager import EagerGossipProtocol
from .node import P3QNode
from .protocol import P3QSimulation
from .query import CycleSnapshot, ForwardedQueryState, PartialResult, QuerySession
from .scoring import (
    item_score_for_user,
    partial_scores,
    ranked_items,
    relevance_scores,
    user_score_map,
)

__all__ = [
    "CycleSnapshot",
    "DrainTrace",
    "EagerGossipProtocol",
    "ForwardedQueryState",
    "P3QConfig",
    "P3QNode",
    "P3QSimulation",
    "PartialResult",
    "QuerySession",
    "StorageSpec",
    "alpha_sweep",
    "cycles_to_complete",
    "item_score_for_user",
    "max_partial_results",
    "max_remaining_list_messages",
    "max_users_involved",
    "optimal_alpha",
    "partial_scores",
    "ranked_items",
    "relevance_scores",
    "simulate_remaining_list_drain",
    "theoretical_longest_after",
    "user_score_map",
]
