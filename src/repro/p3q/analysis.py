"""Analytical model of the eager-mode query processing (paper Section 2.4).

Under the simplifying assumption that every gossip destination finds the
same number ``X`` of requested profiles in its local storage, the paper
derives:

* ``R(α)`` -- the number of eager cycles until the querier has the best
  results her personal network can provide, for a remaining list of initial
  length ``L`` (Theorem 2.1);
* the monotonicity of ``R(α)`` on both sides of ``α = 0.5`` and the
  optimality of ``α = 0.5`` (Theorem 2.2);
* an upper bound of ``2^{R(α)}`` users involved and ``2^{R(α)} - 1`` partial
  result messages (Theorem 2.3);
* an upper bound of ``2 (2^{R(α)} - 1)`` eager gossip messages carrying
  remaining lists (Theorem 2.4).

The module also contains a direct recurrence simulator for the remaining-list
lengths, used by tests and the analysis benchmark to check the closed form
against the mechanistic model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple


def cycles_to_complete(length: int, found_per_hop: int, alpha: float) -> float:
    """``R(α)`` of Theorem 2.1.

    ``length`` is the querier's initial remaining-list length ``L``;
    ``found_per_hop`` is ``X``, the number of requested profiles found at
    each destination.  The value is a real number (the paper's closed form);
    callers wanting a cycle count should take ``ceil``.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if found_per_hop <= 0:
        raise ValueError("found_per_hop must be positive")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    if length == 0:
        return 0.0
    if length <= found_per_hop:
        # A single hop finds everything: one cycle, whatever the split.  The
        # paper's closed form (and its monotonicity proof) assumes L >= X.
        return 1.0
    ratio = length / found_per_hop
    if alpha in (0.0, 1.0):
        return ratio
    if alpha >= 0.5:
        inner = (1.0 - alpha) * ratio + alpha
        return 1.0 - math.log(inner) / math.log(alpha)
    beta = 1.0 - alpha
    inner = alpha * ratio + beta
    return 1.0 - math.log(inner) / math.log(beta)


def optimal_alpha() -> float:
    """The α minimizing ``R(α)`` (Theorem 2.2): 0.5."""
    return 0.5


def max_users_involved(cycles: float) -> int:
    """Upper bound on users touched by one query (Theorem 2.3): ``2^R``."""
    if cycles < 0:
        raise ValueError("cycles must be non-negative")
    return int(2 ** math.ceil(cycles))


def max_partial_results(cycles: float) -> int:
    """Upper bound on partial result messages (Theorem 2.3): ``2^R - 1``."""
    return max(0, max_users_involved(cycles) - 1)


def max_remaining_list_messages(cycles: float) -> int:
    """Upper bound on eager gossip messages (Theorem 2.4): ``2 (2^R - 1)``."""
    return 2 * max_partial_results(cycles)


@dataclass
class DrainTrace:
    """Result of mechanistically simulating the remaining-list recurrence."""

    #: Longest remaining list at the end of each cycle (index 0 = after cycle 1).
    longest_per_cycle: List[float]
    #: Number of cycles until every remaining list is empty.
    cycles: int
    #: Number of distinct "users" (list holders) that participated.
    holders: int


def simulate_remaining_list_drain(
    length: int,
    found_per_hop: int,
    alpha: float,
    max_cycles: int = 10_000,
) -> DrainTrace:
    """Replay the idealized splitting process of Section 2.4.

    Each cycle, every holder of a non-empty list gossips once: ``X`` profiles
    are found, the holder keeps ``α`` of the rest and hands ``1-α`` to a new
    holder.  Lengths are real numbers exactly as in the paper's recurrence.
    """
    if found_per_hop <= 0:
        raise ValueError("found_per_hop must be positive")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    lists: List[float] = [float(length)]
    longest: List[float] = []
    holders = 1
    cycles = 0
    epsilon = 1e-9
    while any(value > epsilon for value in lists) and cycles < max_cycles:
        cycles += 1
        next_lists: List[float] = []
        for value in lists:
            if value <= epsilon:
                next_lists.append(0.0)
                continue
            after_found = max(0.0, value - found_per_hop)
            keep = alpha * after_found
            handoff = (1.0 - alpha) * after_found
            next_lists.append(keep)
            if handoff > epsilon:
                next_lists.append(handoff)
                holders += 1
            elif after_found > epsilon and alpha == 0.0:
                # α = 0 hands everything off; the old holder is done.
                pass
        lists = next_lists
        longest.append(max(lists) if lists else 0.0)
    return DrainTrace(longest_per_cycle=longest, cycles=cycles, holders=holders)


def theoretical_longest_after(
    length: int, found_per_hop: int, alpha: float, cycle: int
) -> float:
    """Closed-form longest remaining list after ``cycle`` cycles (Thm 2.1 proof)."""
    if cycle < 0:
        raise ValueError("cycle must be non-negative")
    if cycle == 0:
        return float(length)
    x = float(found_per_hop)
    if alpha in (0.0, 1.0):
        return max(0.0, length - cycle * x)
    base = max(alpha, 1.0 - alpha)
    geometric = base * (1.0 - base ** cycle) / (1.0 - base)
    return max(0.0, (base ** cycle) * length - geometric * x)


def alpha_sweep(
    length: int, found_per_hop: int, alphas: Tuple[float, ...] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
) -> Dict[float, float]:
    """``R(α)`` for a set of α values (the analysis companion to Figure 3)."""
    return {alpha: cycles_to_complete(length, found_per_hop, alpha) for alpha in alphas}
