"""Configuration of a P3Q deployment / simulation."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional, Union

from ..simulator.conditions import AsymmetrySpec, PartitionSpec, validate_fraction
from ..simulator.transport import TRANSPORT_NAMES

#: Storage budgets can be uniform (one int) or heterogeneous (per-user map).
StorageSpec = Union[int, Mapping[int, int]]


@dataclass(frozen=True)
class P3QConfig:
    """Protocol and simulation parameters.

    Defaults follow the paper where a single value is given, scaled where the
    paper uses values tied to the 10,000-user trace.
    """

    #: Personal network size ``s`` (paper: 1000 on the 10,000-user trace).
    network_size: int = 100
    #: Stored-profile budget ``c`` -- uniform int or per-user mapping
    #: (paper scenarios: 10..1000 uniform, or Poisson-distributed).
    storage: StorageSpec = 10
    #: Random view size ``r`` (paper: 10).
    random_view_size: int = 10
    #: Number of results per query (paper: top-10).
    k: int = 10
    #: Remaining-list split parameter (paper default and optimum: 0.5).
    alpha: float = 0.5
    #: Max number of stored-profile digests advertised per gossip (paper: 50).
    exchange_size: int = 50
    #: Bloom filter sizing for the digests (paper: 20 Kbit / 14 hashes give
    #: ~0.1% false positives at ~250 items).  Tests may shrink this.
    digest_bits: int = 20_000
    digest_hashes: int = 14
    #: Root seed for all deterministic randomness.
    seed: int = 0
    #: Record per-message traffic in the StatsCollector.
    account_traffic: bool = True
    #: Use the 3-step digest/common-items/full-profile exchange.  Setting this
    #: to False ships full profiles immediately (bandwidth ablation).
    three_step_exchange: bool = True
    #: Run the lazy-style network maintenance inside eager gossip.
    eager_maintains_networks: bool = True
    #: Wall-clock duration of one lazy cycle (paper: 60 s).
    lazy_cycle_seconds: float = 60.0
    #: Wall-clock duration of one eager cycle (paper: 5 s).
    eager_cycle_seconds: float = 5.0
    #: Network conditions: ``"direct"`` (seed-identical synchronous delivery),
    #: ``"lossy"`` or ``"latency"`` (see :mod:`repro.simulator.transport`).
    transport: str = "direct"
    #: Per-message drop probability (lossy / latency transports).
    loss_rate: float = 0.0
    #: Maximum per-exchange delay in cycles (latency transport).
    delay_cycles: int = 0
    #: Network partition condition (``"conditioned"`` transport only).
    partition: Optional[PartitionSpec] = None
    #: Asymmetric-link / NAT condition (``"conditioned"`` transport only).
    asymmetry: Optional[AsymmetrySpec] = None
    #: Seeded fraction of nodes that gossip digests but never answer
    #: common-items requests, profile requests or query forwards.
    free_rider_fraction: float = 0.0
    #: Worker count of the sharded cycle engine.  ``1`` runs the serial
    #: reference engine; higher counts enable parallel per-shard exchange
    #: pricing, which is bit-identical to serial for any value (see
    #: :mod:`repro.simulator.shard`).
    workers: int = 1
    #: Executor of the sharded engine: ``"auto"`` (persistent pool when the
    #: machine has the cores for it, inline otherwise), ``"inline"``,
    #: ``"fork"`` (re-fork every cycle) or ``"pool"`` (long-lived workers
    #: over shared columnar state).
    engine_executor: str = "auto"
    #: When set, the traffic collector folds its raw row buffer into the
    #: aggregates every ``stats_flush_every`` cycles, bounding memory on
    #: long large-N runs (per-record views then only cover retained rows).
    stats_flush_every: Optional[int] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Validate every field once, centrally.

        All range checks live here (constructors downstream trust a config
        that survived construction); error messages name the offending
        field and the accepted range.  Raises ``ValueError`` for
        out-of-range values and ``TypeError`` for wrong condition spec
        types.
        """
        positive = (
            ("network_size", self.network_size),
            ("random_view_size", self.random_view_size),
            ("k", self.k),
            ("exchange_size", self.exchange_size),
            ("digest_bits", self.digest_bits),
            ("digest_hashes", self.digest_hashes),
        )
        for name, value in positive:
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        for name, value in (
            ("lazy_cycle_seconds", self.lazy_cycle_seconds),
            ("eager_cycle_seconds", self.eager_cycle_seconds),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive (seconds), got {value!r}")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha!r}")
        if isinstance(self.storage, int):
            if self.storage < 0:
                raise ValueError(f"storage must be non-negative, got {self.storage!r}")
        else:
            for user_id, budget in self.storage.items():
                if budget < 0:
                    raise ValueError(
                        f"storage must be non-negative for every user; "
                        f"user {user_id} has {budget!r}"
                    )
        if self.transport not in TRANSPORT_NAMES:
            raise ValueError(
                f"transport must be one of {TRANSPORT_NAMES}, got {self.transport!r}"
            )
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate!r}")
        if self.delay_cycles < 0:
            raise ValueError(
                f"delay_cycles must be non-negative, got {self.delay_cycles!r}"
            )
        # Reject conditions the named transport would silently ignore: a
        # config carrying them describes a run that will not happen.
        if self.transport == "direct" and (self.loss_rate or self.delay_cycles):
            raise ValueError(
                "transport 'direct' ignores loss_rate/delay_cycles; "
                "use 'lossy' or 'latency'"
            )
        if self.transport == "lossy" and self.delay_cycles:
            raise ValueError(
                "transport 'lossy' ignores delay_cycles; use 'latency'"
            )
        if self.partition is not None and not isinstance(self.partition, PartitionSpec):
            raise TypeError(
                f"partition must be a PartitionSpec or None, got {self.partition!r}"
            )
        if self.asymmetry is not None and not isinstance(self.asymmetry, AsymmetrySpec):
            raise TypeError(
                f"asymmetry must be an AsymmetrySpec or None, got {self.asymmetry!r}"
            )
        if self.transport != "conditioned" and (
            self.partition is not None or self.asymmetry is not None
        ):
            raise ValueError(
                f"transport {self.transport!r} ignores partition/asymmetry "
                "conditions; use 'conditioned'"
            )
        validate_fraction("free_rider_fraction", self.free_rider_fraction)
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers!r}")
        if self.engine_executor not in ("auto", "inline", "fork", "pool"):
            raise ValueError(
                f"engine_executor must be 'auto', 'inline', 'fork' or 'pool', "
                f"got {self.engine_executor!r}"
            )
        if self.stats_flush_every is not None and self.stats_flush_every < 1:
            raise ValueError(
                f"stats_flush_every must be positive when set, "
                f"got {self.stats_flush_every!r}"
            )

    def storage_for(self, user_id: int) -> int:
        """The stored-profile budget ``c`` of one user."""
        if isinstance(self.storage, int):
            return self.storage
        try:
            return int(self.storage[user_id])
        except KeyError:
            raise KeyError(f"no storage budget configured for user {user_id}") from None

    def with_storage(self, storage: StorageSpec) -> "P3QConfig":
        """A copy of this config with a different storage specification."""
        return replace(self, storage=storage)

    def with_alpha(self, alpha: float) -> "P3QConfig":
        """A copy of this config with a different split parameter."""
        return replace(self, alpha=alpha)

    def with_transport(
        self,
        transport: str,
        loss_rate: float = 0.0,
        delay_cycles: int = 0,
        partition: Optional[PartitionSpec] = None,
        asymmetry: Optional[AsymmetrySpec] = None,
    ) -> "P3QConfig":
        """A copy of this config running under different network conditions."""
        return replace(
            self,
            transport=transport,
            loss_rate=loss_rate,
            delay_cycles=delay_cycles,
            partition=partition,
            asymmetry=asymmetry,
        )

    def with_workers(self, workers: int, engine_executor: str = "auto") -> "P3QConfig":
        """A copy of this config running on the sharded engine."""
        return replace(self, workers=workers, engine_executor=engine_executor)
