"""Eager-mode query gossip (paper Algorithms 2 and 3).

The eager mode runs on demand, at a higher frequency than the lazy mode, and
only among the users reached by a query.  Its job is to collect, through the
personal networks, the contributions of the neighbours whose profiles the
querier does not store:

* a node holding a non-empty remaining list for a query initiates one gossip
  per cycle, preferring the remaining-list member of its personal network
  with the oldest timestamp (and falling back to a random remaining-list
  member); the list travels as a
  :class:`~repro.simulator.transport.QueryForward` message;
* the destination removes from the list every user whose profile it stores
  (including itself), ships the corresponding partial result *directly* to
  the querier as a :class:`~repro.simulator.transport.QueryResult`, keeps a
  ``1-α`` share of what is left and returns the ``α`` share in a
  :class:`~repro.simulator.transport.RemainingReturn`;
* both partners also refresh their personal networks exactly as in the lazy
  mode, which is why eager gossip doubles as a freshness wave.

Transport semantics: under the default :class:`DirectTransport` the forward
round-trip is synchronous and the seed's behaviour is reproduced exactly.
A lossy transport may drop the forward (the initiator keeps the list and
retries next cycle -- the sender-side timeout of a real gossip), the return
(the destination keeps its share but the α share is lost; replicated
profiles elsewhere keep recall from collapsing -- the transport reports
``REPLY_DROPPED`` so the initiator does not re-forward a list the
destination already processed) or the partial result (pure recall loss).  A latency transport
defers the whole forward: the initiator hands off responsibility (empty
list) and the α share merges back whenever the ``RemainingReturn`` arrives.

Like the lazy layer, the protocol is sans-io: the ``*_effects`` generators
yield :mod:`repro.simulator.effects` and are driven by either the cycle
engine (:func:`~repro.simulator.effects.drive`, bit-identical to the
pre-generator code) or the asyncio service runtime.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..data.queries import Query
from ..simulator.effects import ProbeEffect, RequestEffect, SendEffect, WireEffects, drive
from ..simulator.network import Network
from ..simulator.transport import REPLY_DROPPED, QueryForward, QueryResult
from ..gossip.profile_exchange import LazyExchangeProtocol
from .query import PartialResult
from .scoring import partial_scores


class EagerGossipProtocol:
    """The query-gossip layer shared by every node of a simulation."""

    def __init__(
        self,
        alpha: float = 0.5,
        lazy: Optional[LazyExchangeProtocol] = None,
        account_traffic: bool = True,
        maintain_networks: bool = True,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.alpha = alpha
        self.lazy = lazy or LazyExchangeProtocol(account_traffic=account_traffic)
        self.account_traffic = account_traffic
        #: When False, eager gossip skips the lazy-style digest exchange; used
        #: by the ablation that isolates query traffic from maintenance traffic.
        self.maintain_networks = maintain_networks

    # -- destination selection -------------------------------------------------

    def select_destination(
        self,
        initiator: "EagerParticipant",
        remaining: Sequence[int],
        network: Network,
    ) -> Optional[int]:
        """Pick a gossip destination from the remaining list (Algorithm 3, 4-9).

        Preference goes to remaining-list members that are also personal
        network neighbours, oldest timestamp first; otherwise a random
        remaining-list member.  Unreachable (departed) candidates are skipped,
        which is how churn slows the processing down without deadlocking it.
        """
        return drive(self.select_destination_effects(initiator, remaining), network)

    def select_destination_effects(
        self,
        initiator: "EagerParticipant",
        remaining: Sequence[int],
    ) -> WireEffects:
        """Sans-io core of :meth:`select_destination`."""
        if not remaining:
            return None
        in_network = [uid for uid in remaining if uid in initiator.personal_network]
        ordered: List[int] = []
        if in_network:
            entries = sorted(
                (initiator.personal_network.entry(uid) for uid in in_network),
                key=lambda e: (-e.timestamp, -e.score, e.user_id),
            )
            ordered.extend(entry.user_id for entry in entries)
        others = [uid for uid in remaining if uid not in set(ordered)]
        initiator.rng.shuffle(others)
        ordered.extend(others)
        for candidate in ordered:
            if (yield ProbeEffect(candidate)):
                return candidate
        return None

    # -- one gossip step --------------------------------------------------------

    def gossip_query(
        self,
        initiator: "EagerParticipant",
        query: Query,
        remaining: Sequence[int],
        network: Network,
        cycle: int,
    ) -> List[int]:
        """One eager gossip initiated by ``initiator`` for ``query``.

        Returns the initiator's new remaining list: the α share handed back
        by the destination when the forward was delivered; the list unchanged
        when no destination was reachable or the *forward* was lost (the
        cycle is lost, the initiator retries); the empty list when a latency
        transport deferred the forward (responsibility is in flight and the
        return will merge back on arrival) or when the forward was processed
        but the *return* was lost on the wire (the destination owns its kept
        share; the α share is gone -- retrying would duplicate work the
        destination already performed).
        """
        return drive(self.gossip_query_effects(initiator, query, remaining, cycle), network)

    def gossip_query_effects(
        self,
        initiator: "EagerParticipant",
        query: Query,
        remaining: Sequence[int],
        cycle: int,
    ) -> WireEffects:
        """Sans-io core of :meth:`gossip_query` (yields wire effects)."""
        remaining = list(remaining)
        if not remaining:
            return remaining
        destination_id = yield from self.select_destination_effects(initiator, remaining)
        if destination_id is None:
            return remaining
        # Reachability check BEFORE mark_gossiped: an unreachable destination
        # must not have its personal-network timestamp reset (seed ordering).
        if not (yield ProbeEffect(destination_id)):
            return remaining
        if destination_id in initiator.personal_network:
            initiator.personal_network.mark_gossiped(destination_id)

        dispatch = yield RequestEffect(
            initiator.node_id,
            destination_id,
            QueryForward(query=query, remaining=tuple(remaining), cycle=cycle),
            query_id=query.query_id,
            account=self.account_traffic,
        )
        if dispatch.deferred or dispatch.status == REPLY_DROPPED:
            return []
        if dispatch.reply is None:
            return remaining

        returned = list(dispatch.reply.remaining)
        if self.maintain_networks:
            # "Maintain personal network as in lazy mode" (Algorithm 3, 12/24).
            yield from self.lazy.exchange_effects(initiator, destination_id)
        return returned

    # -- destination-side processing --------------------------------------------

    def process_at_destination(
        self,
        destination: "EagerParticipant",
        query: Query,
        remaining: Sequence[int],
        network: Network,
        cycle: int,
    ) -> Tuple[List[int], List[int]]:
        """Destination-side handling (Algorithm 3, lines 17-23).

        Returns ``(returned_list, kept_list)``: the share sent back to the
        initiator and the share the destination takes responsibility for.
        Also computes and ships the partial result to the querier.
        """
        return drive(
            self.process_at_destination_effects(destination, query, remaining, cycle),
            network,
        )

    def process_at_destination_effects(
        self,
        destination: "EagerParticipant",
        query: Query,
        remaining: Sequence[int],
        cycle: int,
    ) -> WireEffects:
        """Sans-io core of :meth:`process_at_destination`.

        The contribution bookkeeping (read ``contributed_profiles``, mark,
        ship) runs without an intervening ``yield``, so concurrent forwards
        handled by the asyncio runtime cannot double-contribute a profile.
        """
        remaining = list(remaining)
        already = destination.contributed_profiles(query.query_id)
        found: List[int] = []
        left: List[int] = []
        for user_id in remaining:
            profile = destination.profile_for_query(user_id)
            if profile is not None and user_id not in already:
                found.append(user_id)
            elif profile is not None:
                # Profile already contributed for this query by this node:
                # drop it from the list without re-counting it.
                continue
            else:
                left.append(user_id)

        if found:
            profiles = [destination.profile_for_query(uid) for uid in found]
            scores = partial_scores(profiles, query)
            destination.mark_contributed(query.query_id, found)
            yield from self._send_partial_result_effects(
                destination, query, scores, found, cycle
            )

        keep_count = int((1.0 - self.alpha) * len(left))
        shuffled = list(left)
        destination.rng.shuffle(shuffled)
        kept = sorted(shuffled[:keep_count])
        returned = sorted(set(left) - set(kept))
        return returned, kept

    def _send_partial_result_effects(
        self,
        sender: "EagerParticipant",
        query: Query,
        scores: Dict[int, float],
        contributors: Sequence[int],
        cycle: int,
    ) -> WireEffects:
        if not (yield ProbeEffect(query.querier)):
            return None
        partial = PartialResult(
            query_id=query.query_id,
            sender=sender.node_id,
            scores=dict(scores),
            contributors=tuple(sorted(contributors)),
            cycle=cycle,
        )
        yield SendEffect(
            sender.node_id,
            query.querier,
            QueryResult(partial=partial),
            query_id=query.query_id,
            account=self.account_traffic,
        )
        return None


class EagerParticipant:
    """Typing helper documenting what :class:`EagerGossipProtocol` expects.

    The concrete implementation is :class:`repro.p3q.node.P3QNode`; this
    class only exists so the protocol's expectations are written down in one
    place (and so tests can provide minimal fakes).  Participants receive
    ``QueryForward`` / ``QueryResult`` / ``RemainingReturn`` messages through
    ``handle_message`` (see :class:`repro.simulator.transport.Transport`).
    """

    node_id: int
    personal_network: "object"
    rng: random.Random

    def profile_for_query(self, user_id: int):  # pragma: no cover - interface stub
        raise NotImplementedError

    def contributed_profiles(self, query_id: int) -> Set[int]:  # pragma: no cover
        raise NotImplementedError

    def mark_contributed(self, query_id: int, user_ids: Sequence[int]) -> None:  # pragma: no cover
        raise NotImplementedError

    def handle_message(self, envelope):  # pragma: no cover - interface stub
        raise NotImplementedError

    def receive_partial_result(self, partial: PartialResult) -> None:  # pragma: no cover
        raise NotImplementedError
