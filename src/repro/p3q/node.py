"""The P3Q node: a user, her views, and both gossip modes.

A :class:`P3QNode` combines

* the user's own profile;
* the personal network (``s`` neighbours, ``c`` stored replicas) and random
  view (``r`` random peers) defined in :mod:`repro.gossip.views`;
* the lazy mode -- random peer sampling plus the Algorithm 1 exchange -- run
  once per ``"lazy"`` cycle;
* the eager mode -- query issuing, query gossip and querier-side result
  merging -- run once per ``"eager"`` cycle for every query the node is
  involved in.

The node satisfies both the simulator's :class:`~repro.simulator.node.Node`
interface and the gossip layer's :class:`~repro.gossip.interfaces.GossipPeer`
protocol, and is addressable on the wire: every message the transport
delivers lands in :meth:`P3QNode.handle_message`, which dispatches to the
protocol objects (gossip advertisements), serves the step-2/3 control
requests from local state, and routes query traffic into the session and
forwarded-list state.

Everything hot a node does rides the incremental runtime documented in
``docs/ARCHITECTURE.md``: its own digest and probe rows live in the
simulation-shared :class:`~repro.gossip.digest.DigestCache` (version-keyed,
rebuilt only when the profile version bumps), digest probes hit the
bit-packed Bloom filter through cached probe-mask rows, and query/similarity
scoring runs on the profile's interned indexes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set

from ..data.models import TaggingAction, UserProfile
from ..data.queries import Query
from ..gossip.digest import DigestCache, ProfileDigest
from ..gossip.peer_sampling import PeerSamplingProtocol
from ..gossip.profile_exchange import LazyExchangeProtocol
from ..gossip.views import PersonalNetwork, RandomView
from ..simulator.effects import WireEffects, drive
from ..simulator.engine import PHASE_EAGER, PHASE_LAZY
from ..simulator.node import Node
from ..simulator.transport import (
    CommonItemsReply,
    CommonItemsRequest,
    DigestAdvertisement,
    Envelope,
    FullProfilePush,
    FullProfileRequest,
    Message,
    QueryForward,
    QueryResult,
    RemainingReturn,
    VIEW_RANDOM,
)
from .config import P3QConfig
from .eager import EagerGossipProtocol
from .query import CycleSnapshot, ForwardedQueryState, PartialResult, QuerySession
from .scoring import partial_scores


class P3QNode(Node):
    """One user of the P3Q system."""

    def __init__(
        self,
        profile: UserProfile,
        config: P3QConfig,
        peer_sampling: Optional[PeerSamplingProtocol] = None,
        lazy: Optional[LazyExchangeProtocol] = None,
        eager: Optional[EagerGossipProtocol] = None,
        digest_cache: Optional[DigestCache] = None,
    ) -> None:
        super().__init__(profile.user_id)
        self.profile = profile
        self.config = config
        storage = config.storage_for(profile.user_id)
        self.personal_network = PersonalNetwork(
            owner_id=profile.user_id,
            size=config.network_size,
            storage=storage,
        )
        self.random_view = RandomView(owner_id=profile.user_id, size=config.random_view_size)
        #: Incremental digest/probe cache, normally shared by every node of a
        #: simulation (standalone nodes build a private one).
        self.digest_cache = digest_cache or DigestCache(
            num_bits=config.digest_bits, num_hashes=config.digest_hashes
        )
        self._rng = random.Random(f"{config.seed}/node/{profile.user_id}")
        # Protocol objects are usually shared across all nodes of a simulation
        # (they are stateless apart from caches); standalone nodes build their own.
        self.peer_sampling = peer_sampling or PeerSamplingProtocol(
            account_traffic=config.account_traffic
        )
        self.lazy = lazy or LazyExchangeProtocol(
            exchange_size=config.exchange_size,
            account_traffic=config.account_traffic,
            three_step=config.three_step_exchange,
            digest_cache=self.digest_cache,
        )
        self.eager = eager or EagerGossipProtocol(
            alpha=config.alpha,
            lazy=self.lazy,
            account_traffic=config.account_traffic,
            maintain_networks=config.eager_maintains_networks,
        )
        #: Query sessions for queries issued *by this node*.
        self.sessions: Dict[int, QuerySession] = {}
        #: Remaining-list responsibilities for queries issued by other nodes.
        self.forwarded: Dict[int, ForwardedQueryState] = {}
        #: query_id -> profiles this node has already contributed to it.
        self._contributed: Dict[int, Set[int]] = {}
        #: A free rider gossips digests like everyone else but never answers
        #: common-items requests, profile requests or query forwards (set by
        #: the simulation from the seeded free-rider sample).
        self.free_rider = False
        #: Pre-crash profile snapshot (crash-recovery churn); ``None`` while
        #: the node is up or departed gracefully.
        self._crash_snapshot: Optional[UserProfile] = None

    # ------------------------------------------------------------------ views

    @property
    def rng(self) -> random.Random:
        return self._rng

    def own_digest(self) -> ProfileDigest:
        return self.digest_cache.digest_for(self.profile)

    def stored_digest_sample(self, limit: int) -> List[ProfileDigest]:
        """Digests advertised in a gossip message: own + sample of stored."""
        entries = self.personal_network.stored_entries()
        digests = [entry.digest for entry in entries]
        if len(digests) > limit:
            digests = self._rng.sample(digests, k=limit)
        return [self.own_digest()] + digests

    def actions_for_items_of(self, subject_id: int, items: Set[int]) -> Optional[Set[TaggingAction]]:
        profile = self._held_profile(subject_id)
        if profile is None:
            return None
        return profile.actions_for_items(items)

    def action_ids_for_items_of(self, subject_id: int, items: Set[int]) -> Optional[Set[int]]:
        """Interned-id form of :meth:`actions_for_items_of` (the wire payload)."""
        profile = self._held_profile(subject_id)
        if profile is None:
            return None
        return profile.action_ids_for_items(items)

    def full_profile_of(self, subject_id: int) -> Optional[UserProfile]:
        profile = self._held_profile(subject_id)
        if profile is None:
            return None
        return profile.copy()

    def _held_profile(self, subject_id: int) -> Optional[UserProfile]:
        if subject_id == self.node_id:
            return self.profile
        entry = self.personal_network.get(subject_id)
        if entry is not None and entry.profile is not None:
            return entry.profile
        return None

    # --------------------------------------------------------------- lifecycle

    def bootstrap_random_view(self, digests: Sequence[ProfileDigest]) -> None:
        """Seed the random view (initial contact discovery)."""
        self.random_view.merge(digests, self._rng)

    def snapshot_for_crash(self) -> None:
        """Persist the current profile before a (simulated) crash.

        Views and stored replicas survive in memory anyway -- the node object
        is not torn down -- so the profile snapshot is all that is needed to
        model "comes back with its pre-crash state".
        """
        self._crash_snapshot = self.profile.copy()

    def restore_crash_snapshot(self) -> bool:
        """Roll the profile back to the pre-crash snapshot; True if it moved.

        Called on recovery.  When the profile changed while the node was
        down (tag dynamics applied to the dataset reach the node's aliased
        profile object), the node restarts with the *stale* pre-crash state
        -- exercising the staleness paths of the digest cache and replica
        freshness.  Without intervening changes this is a no-op, keeping
        crash churn bit-identical to graceful churn in quiescent runs.
        """
        snapshot, self._crash_snapshot = self._crash_snapshot, None
        if snapshot is None or snapshot.version == self.profile.version:
            return False
        self.profile.restore(snapshot)
        return True

    def on_cycle(self, cycle: int, phase: str) -> None:
        if phase == PHASE_LAZY:
            drive(self.lazy_round_effects(), self.network)
        elif phase == PHASE_EAGER:
            drive(self.eager_round_effects(cycle), self.network)

    # ------------------------------------------------------- sans-io rounds
    #
    # The two round generators below are the node's runtime-agnostic cycle
    # bodies: the engine drives them synchronously (above), the asyncio
    # service runtime awaits them from its gossip / eager timers.

    def lazy_round_effects(self) -> WireEffects:
        """One lazy round: peer sampling plus the Algorithm 1 exchange."""
        # Bottom layer and top layer run in parallel at each lazy cycle.
        yield from self.peer_sampling.run_cycle_effects(self)
        yield from self.lazy.run_cycle_effects(self)

    def eager_round_effects(self, cycle: int) -> WireEffects:
        """One eager round over every query this node participates in."""
        # Snapshot both dicts: the service runtime suspends this generator at
        # every yielded rpc, and a concurrent inbound QueryForward (or a new
        # issue_query) may insert entries mid-round.  Queries arriving during
        # the round wait for the next tick, exactly as in the engine.
        # Own queries: the querier is also a gossip initiator (Algorithm 2).
        for session in list(self.sessions.values()):
            if session.remaining:
                session.remaining = yield from self.eager.gossip_query_effects(
                    self, session.query, session.remaining, cycle
                )
        # Queries this node was reached by (Algorithm 3, initiator role).
        for state in list(self.forwarded.values()):
            if state.active:
                state.remaining = yield from self.eager.gossip_query_effects(
                    self, state.query, state.remaining, cycle
                )

    # ------------------------------------------------------------ query (own)

    def issue_query(
        self, query: Query, k: Optional[int] = None, cycle: int = 0
    ) -> QuerySession:
        """Start processing a query issued by this node (Algorithm 2).

        The local partial result (own profile plus every stored replica) is
        computed immediately; the remaining list holds the personal-network
        neighbours whose profiles are not stored locally.  ``cycle`` is the
        eager cycle at which the query is issued: a query (re-)issued while
        the eager phase is already running must measure its completion
        latency from that cycle, not from 0.
        """
        if query.querier != self.node_id:
            raise ValueError(
                f"node {self.node_id} cannot issue a query owned by {query.querier}"
            )
        session = QuerySession(
            query=query,
            k=k or self.config.k,
            personal_network_ids=self.personal_network.member_ids(),
            issued_cycle=cycle,
        )
        local_profiles = [self.profile] + list(self.personal_network.stored_profiles().values())
        contributors = [self.node_id] + self.personal_network.stored_ids()
        scores = partial_scores(local_profiles, query)
        session.add_local_result(scores, contributors, cycle=cycle)
        session.set_remaining(self.personal_network.unstored_ids())
        self.mark_contributed(query.query_id, contributors)
        self.sessions[query.query_id] = session
        if self._network is not None:
            self._network.note_query_session(self.node_id)
        return session

    def receive_partial_result(self, partial: PartialResult) -> None:
        session = self.sessions.get(partial.query_id)
        if session is not None:
            session.receive_partial(partial)

    def close_eager_cycle(self, cycle: int) -> List[CycleSnapshot]:
        """Merge the partial results of this cycle for every own query."""
        return [session.close_cycle(cycle) for session in self.sessions.values()]

    def has_active_queries(self) -> bool:
        """True while any query this node participates in still has work."""
        if any(session.remaining for session in self.sessions.values()):
            return True
        return any(state.active for state in self.forwarded.values())

    # ------------------------------------------------------- message handling

    def handle_message(self, envelope: Envelope) -> Optional[Message]:
        """Process one delivered transport message; return the reply, if any.

        This is the single wire entry point of a node: gossip advertisements
        dispatch to the protocol objects, the step-2/3 control requests are
        served from local state, and query traffic feeds the session /
        forwarded-list state.  Replies are returned to the transport, which
        prices and routes them (synchronously for a live round-trip,
        asynchronously for an exchange a latency transport deferred).
        Unknown message types are silently ignored (no reply).
        """
        handler = _MESSAGE_HANDLERS.get(type(envelope.message))
        if handler is None:
            return None
        return handler(self, envelope)

    def handle_message_effects(self, envelope: Envelope) -> WireEffects:
        """Sans-io twin of :meth:`handle_message` (yields wire effects).

        The asyncio service runtime awaits this generator for every inbound
        frame; its return value is the reply message (or ``None``).  The two
        handlers that perform nested round-trips mid-handling -- a personal
        digest advertisement (integration sub-requests) and a query forward
        (partial-result ship plus the alpha split) -- route through their
        effect generators; every other handler is pure local state and
        dispatches through the same table as the synchronous path.
        """
        message = envelope.message
        mtype = type(message)
        if mtype is DigestAdvertisement:
            if message.view == VIEW_RANDOM:
                return self.peer_sampling.handle_advertisement(self, envelope)
            return (yield from self.lazy.handle_advertisement_effects(self, envelope))
        if mtype is QueryForward:
            return (yield from self._handle_query_forward_effects(envelope))
        handler = _MESSAGE_HANDLERS.get(mtype)
        if handler is None:
            return None
        return handler(self, envelope)

    def _handle_common_items_request(self, envelope: Envelope) -> CommonItemsReply:
        message = envelope.message
        if self.free_rider:
            # Indistinguishable from "I no longer store that profile": the
            # failure reply is free on the wire and the asker moves on.
            return CommonItemsReply(subject_id=message.subject_id, actions=None)
        return CommonItemsReply(
            subject_id=message.subject_id,
            actions=self.action_ids_for_items_of(message.subject_id, message.items),
        )

    def _handle_digest_advertisement(self, envelope: Envelope) -> Optional[Message]:
        if envelope.message.view == VIEW_RANDOM:
            return self.peer_sampling.handle_advertisement(self, envelope)
        return self.lazy.handle_advertisement(self, envelope)

    def _handle_full_profile_request(self, envelope: Envelope) -> FullProfilePush:
        message = envelope.message
        if self.free_rider:
            return FullProfilePush(subject_id=message.subject_id, profile=None)
        return FullProfilePush(
            subject_id=message.subject_id,
            profile=self.full_profile_of(message.subject_id),
        )

    def _handle_query_result(self, envelope: Envelope) -> None:
        self.receive_partial_result(envelope.message.partial)
        return None

    # --------------------------------------------------- query (reached nodes)

    def _handle_query_forward(self, envelope: Envelope) -> RemainingReturn:
        """Handle an incoming eager gossip message (Algorithm 3, destination)."""
        message = envelope.message
        query = message.query
        if self.free_rider:
            # Hand the whole remaining list straight back: no contribution,
            # no kept share, no partial result.  Protocol-legal (the sender
            # merges the return like any alpha share) but pure dead weight.
            return RemainingReturn(query_id=query.query_id, remaining=message.remaining)
        returned, kept = self.eager.process_at_destination(
            self, query, list(message.remaining), self.network, message.cycle
        )
        return self._absorb_forward(query, returned, kept)

    def _handle_query_forward_effects(self, envelope: Envelope) -> WireEffects:
        """Sans-io twin of :meth:`_handle_query_forward`."""
        message = envelope.message
        query = message.query
        if self.free_rider:
            return RemainingReturn(query_id=query.query_id, remaining=message.remaining)
        returned, kept = yield from self.eager.process_at_destination_effects(
            self, query, list(message.remaining), message.cycle
        )
        return self._absorb_forward(query, returned, kept)

    def _absorb_forward(self, query: Query, returned: List[int], kept: List[int]) -> RemainingReturn:
        """Merge the kept share into the forwarded-list state; build the return."""
        if kept:
            state = self.forwarded.get(query.query_id)
            if state is None:
                self.forwarded[query.query_id] = ForwardedQueryState(
                    query=query, remaining=list(kept)
                )
            else:
                merged = set(state.remaining) | set(kept)
                state.remaining = sorted(merged)
            self.network.note_eager_work(self.node_id)
        return RemainingReturn(query_id=query.query_id, remaining=tuple(returned))

    def _handle_remaining_return(self, envelope: Envelope) -> None:
        """Merge an α share arriving *after* its forward (latency transport).

        The synchronous path consumes the return as the forward's reply; this
        handler only runs for deferred exchanges, where the share must rejoin
        whatever remaining list the node has accumulated meanwhile.
        """
        message = envelope.message
        session = self.sessions.get(message.query_id)
        if session is not None:
            session.remaining = sorted(set(session.remaining) | set(message.remaining))
            self.network.note_eager_work(self.node_id)
            return None
        state = self.forwarded.get(message.query_id)
        if state is not None:
            state.remaining = sorted(set(state.remaining) | set(message.remaining))
            self.network.note_eager_work(self.node_id)
        return None

    def profile_for_query(self, user_id: int) -> Optional[UserProfile]:
        """A profile this node can contribute to a query, or ``None``."""
        return self._held_profile(user_id)

    def contributed_profiles(self, query_id: int) -> Set[int]:
        return self._contributed.get(query_id, set())

    def mark_contributed(self, query_id: int, user_ids: Sequence[int]) -> None:
        self._contributed.setdefault(query_id, set()).update(user_ids)

    # ----------------------------------------------------------------- metrics

    def stored_profile_versions(self) -> Dict[int, int]:
        """user_id -> version of the stored replica (freshness metric input)."""
        return {
            uid: profile.version
            for uid, profile in self.personal_network.stored_profiles().items()
        }


#: Exact-type dispatch table for :meth:`P3QNode.handle_message`, ordered by
#: observed message frequency (a dict lookup beats an isinstance chain on the
#: hot path: common-item requests dominate every lazy cycle).
_MESSAGE_HANDLERS = {
    CommonItemsRequest: P3QNode._handle_common_items_request,
    DigestAdvertisement: P3QNode._handle_digest_advertisement,
    FullProfileRequest: P3QNode._handle_full_profile_request,
    QueryForward: P3QNode._handle_query_forward,
    QueryResult: P3QNode._handle_query_result,
    RemainingReturn: P3QNode._handle_remaining_return,
}
