"""Wiring P3Q nodes into a full simulation.

:class:`P3QSimulation` is the orchestration layer the experiments use: it
builds one :class:`~repro.p3q.node.P3QNode` per user of a dataset, hooks them
into the cycle-driven simulator, and exposes the operations the paper's
evaluation needs -- bootstrap, lazy convergence, warm start from the ideal
networks, query issuing, eager processing, profile changes and churn.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from ..data.columnar import ColumnarDataset, ColumnarStore, DigestMatrix
from ..data.models import ChangeDay, Dataset
from ..data.dynamics import apply_change_day
from ..data.queries import Query
from ..gossip.digest import DigestCache
from ..gossip.peer_sampling import PeerSamplingProtocol
from ..gossip.profile_exchange import LazyExchangeProtocol
from ..gossip.views import PersonalNetwork
from ..similarity.knn import IdealNetworkIndex
from ..simulator.engine import PHASE_EAGER, PHASE_LAZY, SimulationEngine, paused_gc
from ..simulator.shard import (
    EXECUTOR_FORK,
    EXECUTOR_POOL,
    ShardedEngine,
    partition_shards,
    run_forked_shards,
)
from ..simulator.network import Network
from ..simulator.rng import derive_rng
from ..simulator.stats import KIND_REMAINING_FORWARD, StatsCollector
from ..simulator.transport import make_transport
from .config import P3QConfig
from .eager import EagerGossipProtocol
from .node import P3QNode
from .query import CycleSnapshot, QuerySession


def _build_digest_shard(sim: "P3QSimulation", shard_index: int):
    """Worker: build one shard's digests against the fork snapshot."""
    cache = sim.digest_cache
    out = []
    for user_id in sim._bootstrap_shards[shard_index]:
        profile = sim.nodes[user_id].profile
        digest = cache.digest_for(profile)
        out.append(
            (user_id, digest.version, digest.bloom.raw_bits, digest.bloom.approximate_count)
        )
    return out


class P3QSimulation:
    """A complete P3Q deployment over a dataset, driven cycle by cycle."""

    def __init__(self, dataset: Dataset, config: P3QConfig) -> None:
        self.dataset = dataset
        self.config = config
        self.stats = StatsCollector(flush_every=config.stats_flush_every)
        self.network = Network(
            stats=self.stats,
            transport=make_transport(
                config.transport,
                loss_rate=config.loss_rate,
                delay_cycles=config.delay_cycles,
                seed=config.seed,
                partition=config.partition,
                asymmetry=config.asymmetry,
            ),
        )
        # ``workers > 1`` runs the sharded engine (bit-identical to serial
        # for any worker count -- see repro.simulator.shard); ``workers=1``
        # is the serial reference engine itself.
        if config.workers > 1:
            self.engine: SimulationEngine = ShardedEngine(
                self.network,
                seed=config.seed,
                workers=config.workers,
                executor=config.engine_executor,
            )
        else:
            self.engine = SimulationEngine(self.network, seed=config.seed)
        # The incremental runtime's shared cache: one digest / probe-row set
        # per profile version for the whole deployment.  The engine flushes
        # the per-cycle dirty set into it at each cycle boundary.
        self.digest_cache = DigestCache(
            num_bits=config.digest_bits, num_hashes=config.digest_hashes
        )
        self.network.add_profile_dirty_listener(self.digest_cache.evict_profiles)
        if isinstance(self.engine, ShardedEngine):
            self.engine.attach_pricing(self.digest_cache)
        # One shared instance of each protocol: they are stateless apart from
        # bounded caches, and sharing keeps memory linear in the user count.
        self.peer_sampling = PeerSamplingProtocol(account_traffic=config.account_traffic)
        self.lazy = LazyExchangeProtocol(
            exchange_size=config.exchange_size,
            account_traffic=config.account_traffic,
            three_step=config.three_step_exchange,
            digest_cache=self.digest_cache,
        )
        self.eager = EagerGossipProtocol(
            alpha=config.alpha,
            lazy=self.lazy,
            account_traffic=config.account_traffic,
            maintain_networks=config.eager_maintains_networks,
        )
        self.nodes: Dict[int, P3QNode] = {}
        for profile in dataset.profiles():
            node = P3QNode(
                profile=profile,
                config=config,
                peer_sampling=self.peer_sampling,
                lazy=self.lazy,
                eager=self.eager,
                digest_cache=self.digest_cache,
            )
            self.nodes[node.node_id] = node
            self.network.add_node(node)
        # Free riders: a seeded sample of the population that advertises
        # digests like everyone else but never serves requests.  The sample
        # comes from its own stream (independent of bootstrap/node streams),
        # so a fraction of 0 -- or one that rounds to zero nodes -- leaves
        # the run bit-identical to an unconditioned one.
        self.free_rider_ids: frozenset = frozenset()
        if config.free_rider_fraction > 0.0:
            ids = sorted(self.nodes)
            count = int(round(config.free_rider_fraction * len(ids)))
            if count:
                rider_rng = derive_rng(config.seed, "free-riders")
                self.free_rider_ids = frozenset(rider_rng.sample(ids, count))
                for uid in self.free_rider_ids:
                    self.nodes[uid].free_rider = True
        # Columnar backing.  A columnar dataset brings its store along; the
        # persistent-pool executor needs one either way (snapshotting an
        # object dataset if that is what we were given).  The digest matrix
        # mirrors every user's digest bits as fixed-width rows -- in shared
        # memory when pool workers will attach to it -- and the digest
        # cache adopts current rows instead of rebuilding filters.
        self.columnar_store: Optional[ColumnarStore] = (
            dataset.store if isinstance(dataset, ColumnarDataset) else None
        )
        self.digest_matrix: Optional[DigestMatrix] = None
        engine_is_pool = (
            isinstance(self.engine, ShardedEngine)
            and self.engine.executor == EXECUTOR_POOL
        )
        if engine_is_pool and self.columnar_store is None:
            self.columnar_store = ColumnarStore.from_dataset(dataset)
        if self.columnar_store is not None:
            self.digest_matrix = DigestMatrix(
                len(self.columnar_store),
                config.digest_bits,
                config.digest_hashes,
                shared=engine_is_pool,
            )
            self.digest_cache.attach_columnar(self.digest_matrix, self.columnar_store)
            if engine_is_pool:
                self.engine.attach_columnar(self.columnar_store, self.digest_matrix)
                self.engine.attach_pair_predictor(self._predict_pricing_pairs)
        self._bootstrap_rng = self.engine.rng_factory.for_purpose("bootstrap")
        self._eager_cycles_run = 0

    def close(self) -> None:
        """Release pool workers and the shared digest block (idempotent).

        Safe to skip for serial runs (finalizers cover leaks); long-lived
        benchmark processes call it between repetitions.
        """
        engine = self.engine
        if isinstance(engine, ShardedEngine):
            engine.close()
        if self.digest_matrix is not None:
            self.digest_matrix.close()

    # ------------------------------------------------------------------ setup

    def node(self, user_id: int) -> P3QNode:
        return self.nodes[user_id]

    def bootstrap_random_views(self, contacts_per_node: Optional[int] = None) -> None:
        """Seed every node's random view with random contacts.

        The paper assumes users first discover "the contact information of
        any user currently in the system" through peer sampling; seeding each
        view with ``r`` random digests reproduces that starting point.

        On the sharded engine with the fork executor, the expensive part --
        building every user's Bloom digest -- runs shard-parallel first
        (pure per-user work, merged deterministically); the RNG-driven
        contact draws then replay serially against the warm digest cache,
        so the seeded views are identical for any worker count.
        """
        count = contacts_per_node or self.config.random_view_size
        self._build_digests()
        user_ids = list(self.nodes)
        total = len(user_ids)
        if total <= 1:
            return
        nodes = self.nodes
        sample = self._bootstrap_rng.sample
        own = min(count, total - 1)
        for position, node in enumerate(nodes.values()):
            # ``sample(others, k)`` consumes randomness as a function of
            # ``(len(others), k)`` only, so sampling *positions* from an index
            # range and mapping them over the self-gap draws the exact same
            # contacts as materializing the N-1 element "everyone but me"
            # list per node -- without the O(N^2) list building that used to
            # dominate large-N bootstrap.
            positions = sample(range(total - 1), k=own)
            digests = [
                nodes[user_ids[j if j < position else j + 1]].own_digest()
                for j in positions
            ]
            node.bootstrap_random_view(digests)

    def _build_digests(self) -> int:
        """Population-wide digest warm-up before the bootstrap contact draws.

        With a columnar digest matrix attached the digest rows are built in
        bulk -- shard-parallel into the shared block on the pool executor,
        vectorized in-process otherwise -- and the digest cache adopts them
        on first use.  Without one, the fork executor's shard-parallel
        cache warm-up runs (:meth:`_parallel_digest_build`).  Pure warm-up
        either way: every adoption and every cache read validates versions.
        """
        if self.digest_matrix is not None:
            engine = self.engine
            if isinstance(engine, ShardedEngine) and engine.executor == EXECUTOR_POOL:
                return engine.build_digest_rows()
            return self.digest_matrix.build_rows(self.columnar_store)
        return self._parallel_digest_build()

    def _predict_pricing_pairs(self, acting: Iterable[int]) -> List[tuple]:
        """Over-approximate the digest probes of the coming lazy cycle.

        Mirrors the read pattern of :class:`LazyExchangeProtocol` without
        touching any state or RNG stream:

        * random-view refresh -- every view digest not yet evaluated at its
          version and not already a personal-network member;
        * the symmetric exchange with ``select_oldest()`` (a pure min, no
          RNG): both directions of the partners' advertised digest sets
          (own digest + all stored entries -- a superset of the
          ``exchange_size`` sample, which *does* draw RNG and is therefore
          not replayed here).

        The random-partner fallback of nodes with empty personal networks
        draws RNG and is deliberately not predicted; those pairs are priced
        serially.  Over-predicted pairs are priced into version-validated
        memo slots -- inert unless the cycle actually probes them.
        """
        nodes = self.nodes
        evaluated_map = self.lazy._evaluated
        pairs: List[tuple] = []
        append = pairs.append
        for user_id in acting:
            node = nodes.get(user_id)
            if node is None:
                continue
            personal = node.personal_network
            evaluated = evaluated_map.get(user_id)
            for digest in node.random_view.digests():
                subject_id = digest.user_id
                if (
                    evaluated is not None
                    and evaluated.get(subject_id, -1) >= digest.version
                ):
                    continue
                if subject_id in personal:
                    continue
                append((user_id, subject_id))
            partner_id = personal.select_oldest()
            if partner_id is None or partner_id not in nodes:
                continue
            partner = nodes[partner_id]
            append((user_id, partner_id))
            append((partner_id, user_id))
            for entry in partner.personal_network.stored_entries():
                if entry.user_id != user_id:
                    append((user_id, entry.user_id))
            for entry in personal.stored_entries():
                if entry.user_id != partner_id:
                    append((partner_id, entry.user_id))
        return pairs

    def _parallel_digest_build(self) -> int:
        """Shard-parallel digest construction for the whole population.

        A pure cache warm-up: each worker builds the digests of its shard's
        profiles against the fork snapshot and ships back ``(user_id,
        version, raw_bits, count)``; the parent installs them in shard
        order.  Any entry superseded by a later profile change is simply
        rebuilt on first use (every cache read validates versions).  Returns
        the number of digests installed; 0 when the engine is serial, the
        executor is inline, or the population is too small to pay the fork.
        """
        engine = self.engine
        if not isinstance(engine, ShardedEngine) or engine.executor != EXECUTOR_FORK:
            return 0
        if len(self.nodes) < 4 * engine.workers:
            return 0

        shards = partition_shards(list(self.nodes), engine.workers)
        self._bootstrap_shards = shards
        try:
            results = run_forked_shards(
                self, _build_digest_shard, len(shards), engine.workers
            )
        finally:
            self._bootstrap_shards = ()
        if results is None:
            return 0  # advisory warm-up: the serial path rebuilds on demand

        installed = 0
        cache = self.digest_cache
        for shard_entries in results:
            for user_id, version, bits, bloom_count in shard_entries:
                if self.nodes[user_id].profile.version == version:
                    cache.install_digest(user_id, version, bits, bloom_count)
                    installed += 1
        return installed

    def warm_start(self, ideal: Optional[IdealNetworkIndex] = None) -> IdealNetworkIndex:
        """Install the ideal personal networks directly (converged state).

        The paper's query-processing experiments (Figures 3, 4, 6, 8, 11) are
        run on personal networks that already converged through the lazy
        mode.  Warm-starting from the offline ideal index reproduces that
        starting state without paying the convergence time in every
        experiment; the convergence itself is evaluated separately (Fig. 2).
        """
        if ideal is None:
            ideal = IdealNetworkIndex(self.dataset, size=self.config.network_size)
        for node in self.nodes.values():
            for neighbour in ideal.network_of(node.node_id):
                digest = self.nodes[neighbour.user_id].own_digest()
                node.personal_network.consider(neighbour.user_id, neighbour.score, digest)
            for stored_id in node.personal_network.profiles_wanted():
                node.personal_network.store_profile(
                    stored_id, self.nodes[stored_id].profile
                )
        return ideal

    # ------------------------------------------------------------- lazy phase

    def run_lazy(
        self,
        cycles: int,
        callback: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Run ``cycles`` lazy cycles over every online node."""
        self.engine.run_cycles(cycles, phase=PHASE_LAZY, callback=callback)

    def discovered_networks(self) -> Dict[int, List[int]]:
        """user_id -> personal-network member ids currently discovered."""
        return {uid: node.personal_network.member_ids() for uid, node in self.nodes.items()}

    # ------------------------------------------------------------ eager phase

    @property
    def eager_cycles_run(self) -> int:
        """Eager cycles executed so far (the serving driver's clock)."""
        return self._eager_cycles_run

    def issue_queries(self, queries: Iterable[Query]) -> Dict[int, QuerySession]:
        """Issue queries at their queriers and record the issue-cycle snapshots.

        Queries issued after some eager cycles already ran (the serving
        driver's steady-state injection) are stamped with the current eager
        cycle so ``latency_cycles`` measures from injection, not from 0.
        """
        sessions: Dict[int, QuerySession] = {}
        cycle = self._eager_cycles_run
        for query in queries:
            node = self.nodes[query.querier]
            if not self.network.is_online(query.querier):
                continue
            session = node.issue_query(query, cycle=cycle)
            session.close_cycle(cycle)
            sessions[query.query_id] = session
        return sessions

    def eager_participants(self) -> List[int]:
        """Online nodes that still have eager work to do this cycle.

        Filters the network's eager-work registry (every node registers
        itself the moment it acquires a session or a forwarded list)
        instead of scanning the whole population: identical participant
        lists, O(active) instead of O(N) per cycle.  A candidate that
        proves idle *while online* is retired from the registry -- it can
        only become active again through a message, which re-registers it;
        offline candidates are kept (they may still hold work when churn
        brings them back).
        """
        network = self.network
        nodes = self.nodes
        participants: List[int] = []
        for uid in network.eager_work_candidates():
            if not network.is_online(uid):
                continue
            if nodes[uid].has_active_queries():
                participants.append(uid)
            else:
                network.retire_eager_work(uid)
        return participants

    def run_eager(
        self,
        cycles: int,
        callback: Optional[Callable[[int, Dict[int, CycleSnapshot]], None]] = None,
        stop_when_idle: bool = True,
    ) -> int:
        """Run up to ``cycles`` eager cycles.

        After each cycle every querier merges the partial results received
        during that cycle and records a snapshot.  ``callback`` receives the
        1-based cycle number and the per-query snapshots.  Returns the number
        of cycles actually run (processing stops early once no node has any
        remaining list, unless ``stop_when_idle`` is False).
        """
        run = 0
        transport = self.network.transport
        with paused_gc():
            for _ in range(cycles):
                participants = self.eager_participants()
                if stop_when_idle and not participants and transport.pending_count() == 0:
                    break
                self.engine.run_cycle(phase=PHASE_EAGER, participants=participants)
                self._eager_cycles_run += 1
                run += 1
                snapshots: Dict[int, CycleSnapshot] = {}
                # Only nodes that ever opened a session can hold one; the
                # registry iterates in the same ascending-id order as the
                # full node table did.
                for uid in self.network.session_holders():
                    for session in self.nodes[uid].sessions.values():
                        snapshot = session.close_cycle(self._eager_cycles_run)
                        snapshots[session.query.query_id] = snapshot
                if callback is not None:
                    callback(self._eager_cycles_run, snapshots)
        return run

    def sessions(self) -> Dict[int, QuerySession]:
        """Every query session in the system, keyed by query id."""
        out: Dict[int, QuerySession] = {}
        for node in self.nodes.values():
            out.update(node.sessions)
        return out

    def users_reached(self, query_id: int) -> Set[int]:
        """Users reached by the eager gossip of one query (Figure 8 metric).

        Derived from the traffic records: every receiver of a forwarded
        remaining list, plus the querier herself.
        """
        reached: Set[int] = set(
            self.stats.query_receivers(query_id, KIND_REMAINING_FORWARD)
        )
        for session in self.sessions().values():
            if session.query.query_id == query_id:
                reached.add(session.query.querier)
        return reached

    # ---------------------------------------------------------------- dynamics

    def apply_profile_changes(self, change_day: ChangeDay) -> Dict[int, int]:
        """Apply a day of profile changes to the live profiles.

        The changed users enter the network's per-cycle dirty set; the engine
        flushes it to the registered listeners (the shared digest cache) at
        the next cycle boundary so superseded cached state is reclaimed.
        """
        versions = apply_change_day(self.dataset, change_day)
        self.network.mark_profiles_dirty(versions)
        return versions

    def depart_users(self, user_ids: Iterable[int]) -> None:
        """Simultaneous departure of the given users (churn)."""
        self.network.depart(user_ids)

    def rejoin_users(self, user_ids: Iterable[int]) -> None:
        self.network.rejoin(user_ids)

    def crash_users(self, user_ids: Iterable[int]) -> None:
        """Depart the given users, persisting their pre-crash profiles.

        The graceful-churn twin of :meth:`depart_users`: on recovery
        (:meth:`recover_users`) each node rolls its profile back to this
        snapshot instead of rejoining with whatever the dataset holds now,
        modelling a restart from state persisted before the crash.
        """
        ids = list(user_ids)
        for uid in ids:
            self.nodes[uid].snapshot_for_crash()
        self.network.depart(ids)

    def recover_users(self, user_ids: Iterable[int]) -> None:
        """Bring crashed users back with their pre-crash profile snapshots.

        A node whose profile moved while it was down (tag dynamics) is
        restored to the stale snapshot and marked dirty, so the shared
        digest cache evicts the superseded state at the next cycle boundary
        -- the rejoined node never serves digest versions past the merge
        barrier.  Nodes whose profiles did not move rejoin untouched,
        keeping crash churn bit-identical to graceful churn in quiescent
        runs.
        """
        ids = list(user_ids)
        self.network.rejoin(ids)
        restored = [uid for uid in ids if self.nodes[uid].restore_crash_snapshot()]
        if restored:
            self.network.mark_profiles_dirty(restored)

    # ---------------------------------------------------------------- metrics

    def personal_networks(self) -> Dict[int, PersonalNetwork]:
        return {uid: node.personal_network for uid, node in self.nodes.items()}

    def stored_replica_versions(self) -> Dict[int, Dict[int, int]]:
        """owner -> (stored user -> replica version); freshness metric input."""
        return {uid: node.stored_profile_versions() for uid, node in self.nodes.items()}

    def current_profile_versions(self) -> Dict[int, int]:
        """user_id -> current (true) profile version."""
        return {uid: node.profile.version for uid, node in self.nodes.items()}
