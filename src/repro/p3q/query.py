"""Querier-side and forwarded query state.

Two kinds of state exist during eager-mode processing:

* the **query session** at the querier: the incremental NRA merger, the set
  of profiles already accounted for, the per-cycle result snapshots and the
  querier's own remaining list;
* the **forwarded query state** at every other node reached by the query:
  the query itself plus the remaining list that node is responsible for
  (``L_Q(u)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..data.queries import Query
from ..topk.incremental import IncrementalNRA


@dataclass
class PartialResult:
    """A partial result list sent back to the querier by one node."""

    query_id: int
    sender: int
    #: item -> partial relevance score (positive scores only).
    scores: Dict[int, float]
    #: Users whose profiles were used to build this list.
    contributors: Tuple[int, ...]
    #: Eager cycle during which the list was produced.
    cycle: int

    def __len__(self) -> int:
        return len(self.scores)


@dataclass
class CycleSnapshot:
    """Result state displayed to the querier at the end of one eager cycle."""

    cycle: int
    top_k: List[Tuple[int, float]]
    profiles_used: int
    profiles_total: int

    @property
    def items(self) -> List[int]:
        return [item for item, _ in self.top_k]

    @property
    def coverage(self) -> float:
        """Fraction of the personal network already contributing.

        This is the quality estimate the paper lets users consult to decide
        whether the current results are satisfactory.
        """
        if self.profiles_total == 0:
            return 1.0
        return self.profiles_used / self.profiles_total


class QuerySession:
    """Everything the querier tracks about one of her queries."""

    def __init__(self, query: Query, k: int, personal_network_ids: Sequence[int]) -> None:
        self.query = query
        self.k = k
        #: Ids whose profiles must eventually contribute (the whole personal
        #: network plus the querier herself).
        self.expected_profiles: Set[int] = set(personal_network_ids) | {query.querier}
        self.profiles_used: Set[int] = set()
        self.remaining: List[int] = []
        self._merger = IncrementalNRA(k)
        self._pending: List[PartialResult] = []
        self.snapshots: List[CycleSnapshot] = []
        self.closed = False

    # -- feeding --------------------------------------------------------------

    def set_remaining(self, user_ids: Sequence[int]) -> None:
        """Initialise the querier's own remaining list ``L_Q(u_i)``."""
        self.remaining = list(user_ids)

    def add_local_result(self, scores: Dict[int, float], contributors: Sequence[int], cycle: int = 0) -> None:
        """Record the querier's local partial result (Algorithm 2, line 3)."""
        self.receive_partial(
            PartialResult(
                query_id=self.query.query_id,
                sender=self.query.querier,
                scores=dict(scores),
                contributors=tuple(contributors),
                cycle=cycle,
            )
        )

    def receive_partial(self, partial: PartialResult) -> None:
        """Buffer a partial result until the end of the current cycle."""
        self._pending.append(partial)

    # -- per-cycle processing -------------------------------------------------

    def close_cycle(self, cycle: int) -> CycleSnapshot:
        """Merge the partial results received during ``cycle`` (Algorithm 4)."""
        new_lists: List[Dict[int, float]] = []
        for partial in self._pending:
            new_contributors = set(partial.contributors) - self.profiles_used
            if not new_contributors and partial.scores:
                # Every contributor was already counted: using the list again
                # would double count (the partitioning normally prevents
                # this; the guard keeps the invariant under churn retries).
                continue
            self.profiles_used.update(partial.contributors)
            if partial.scores:
                new_lists.append(partial.scores)
        self._pending.clear()
        top_k = self._merger.process_cycle(new_lists)
        if self.is_complete():
            # Every neighbour's profile has contributed: the querier knows the
            # processing is over and reads off the exact result (recall 1).
            top_k = self._merger.finalize()
        snapshot = CycleSnapshot(
            cycle=cycle,
            top_k=top_k,
            profiles_used=len(self.profiles_used & self.expected_profiles),
            profiles_total=len(self.expected_profiles),
        )
        self.snapshots.append(snapshot)
        if self.is_complete():
            self.closed = True
        return snapshot

    # -- results --------------------------------------------------------------

    def current_items(self, exact: bool = False) -> List[int]:
        """The current top-k item ids (``exact=True`` exhausts all lists)."""
        if exact:
            return [item for item, _ in self._merger.finalize()]
        return self._merger.current_items()

    def current_top_k(self) -> List[Tuple[int, float]]:
        return self._merger.current_top_k()

    def is_complete(self) -> bool:
        """True when every expected profile has contributed."""
        return self.expected_profiles <= self.profiles_used

    @property
    def coverage(self) -> float:
        if not self.expected_profiles:
            return 1.0
        return len(self.profiles_used & self.expected_profiles) / len(self.expected_profiles)


@dataclass
class ForwardedQueryState:
    """State a non-querier node keeps for a query it was reached by."""

    query: Query
    #: The remaining list this node is responsible for (``L_Q(u_dest)``).
    remaining: List[int] = field(default_factory=list)

    @property
    def active(self) -> bool:
        return bool(self.remaining)
