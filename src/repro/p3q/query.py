"""Querier-side and forwarded query state.

Two kinds of state exist during eager-mode processing:

* the **query session** at the querier: the incremental NRA merger, the set
  of profiles already accounted for, the per-cycle result snapshots and the
  querier's own remaining list;
* the **forwarded query state** at every other node reached by the query:
  the query itself plus the remaining list that node is responsible for
  (``L_Q(u)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..data.queries import Query
from ..topk.incremental import IncrementalNRA


def coverage_fraction(profiles_used: int, profiles_total: int) -> float:
    """The shared coverage semantics of session and snapshot.

    Coverage is the fraction of the profiles *expected at issue time* (the
    querier's personal network plus the querier herself) that have already
    contributed a partial result.  Two edge cases share one rule:

    * ``profiles_total == 0`` -- no expected profile at all.  Only reachable
      by constructing a :class:`CycleSnapshot` directly (a session always
      expects at least the querier): nothing can be missing, coverage is 1.
    * a querier whose personal network churned away entirely mid-query keeps
      ``profiles_total`` at its issue-time value: departed members never
      contribute, so coverage stays below 1 and the session never closes.
      The serving layer surfaces such queries as *abandoned at the cutoff*
      with this coverage value; they are never silently promoted to 1.

    The recall metrics (:mod:`repro.metrics.recall`, the serving harness)
    consume :attr:`CycleSnapshot.coverage`; :attr:`QuerySession.coverage` is
    the same quantity for the *current* state and always equals the latest
    snapshot's value right after :meth:`QuerySession.close_cycle`.
    """
    if profiles_total <= 0:
        return 1.0
    return profiles_used / profiles_total


@dataclass
class PartialResult:
    """A partial result list sent back to the querier by one node."""

    query_id: int
    sender: int
    #: item -> partial relevance score (positive scores only).
    scores: Dict[int, float]
    #: Users whose profiles were used to build this list.
    contributors: Tuple[int, ...]
    #: Eager cycle during which the list was produced.
    cycle: int

    def __len__(self) -> int:
        return len(self.scores)


@dataclass
class CycleSnapshot:
    """Result state displayed to the querier at the end of one eager cycle."""

    cycle: int
    top_k: List[Tuple[int, float]]
    profiles_used: int
    profiles_total: int

    @property
    def items(self) -> List[int]:
        return [item for item, _ in self.top_k]

    @property
    def coverage(self) -> float:
        """Fraction of the personal network already contributing.

        This is the quality estimate the paper lets users consult to decide
        whether the current results are satisfactory (shared semantics:
        :func:`coverage_fraction`).
        """
        return coverage_fraction(self.profiles_used, self.profiles_total)


class QuerySession:
    """Everything the querier tracks about one of her queries."""

    def __init__(
        self,
        query: Query,
        k: int,
        personal_network_ids: Sequence[int],
        issued_cycle: int = 0,
    ) -> None:
        self.query = query
        self.k = k
        #: Ids whose profiles must eventually contribute (the whole personal
        #: network plus the querier herself).
        self.expected_profiles: Set[int] = set(personal_network_ids) | {query.querier}
        self.profiles_used: Set[int] = set()
        self.remaining: List[int] = []
        self._merger = IncrementalNRA(k)
        self._pending: List[PartialResult] = []
        self.snapshots: List[CycleSnapshot] = []
        self.closed = False
        #: Eager cycle at which the query was issued.  Stored at creation so
        #: completion latency is a session-local quantity instead of having
        #: to be reconstructed by scanning snapshots; a query (re-)issued
        #: mid-run carries the re-issue cycle, not 0.
        self.issued_cycle = issued_cycle
        #: Eager cycle at which the session first became complete (``None``
        #: while processing).  Pinned at the closing transition only: the
        #: per-cycle snapshots a closed session keeps producing never move it.
        self.closed_cycle: Optional[int] = None

    # -- feeding --------------------------------------------------------------

    def set_remaining(self, user_ids: Sequence[int]) -> None:
        """Initialise the querier's own remaining list ``L_Q(u_i)``."""
        self.remaining = list(user_ids)

    def add_local_result(self, scores: Dict[int, float], contributors: Sequence[int], cycle: int = 0) -> None:
        """Record the querier's local partial result (Algorithm 2, line 3)."""
        self.receive_partial(
            PartialResult(
                query_id=self.query.query_id,
                sender=self.query.querier,
                scores=dict(scores),
                contributors=tuple(contributors),
                cycle=cycle,
            )
        )

    def receive_partial(self, partial: PartialResult) -> None:
        """Buffer a partial result until the end of the current cycle."""
        self._pending.append(partial)

    # -- per-cycle processing -------------------------------------------------

    def close_cycle(self, cycle: int) -> CycleSnapshot:
        """Merge the partial results received during ``cycle`` (Algorithm 4)."""
        if self.closed:
            # The querier already read off the exact result: a partial result
            # arriving after that (a straggler retry under loss or latency)
            # must not perturb it.  The snapshot simply restates the final
            # top-k at the new cycle.
            self._pending.clear()
            snapshot = CycleSnapshot(
                cycle=cycle,
                top_k=list(self.snapshots[-1].top_k) if self.snapshots else [],
                profiles_used=len(self.profiles_used & self.expected_profiles),
                profiles_total=len(self.expected_profiles),
            )
            self.snapshots.append(snapshot)
            return snapshot
        new_lists: List[Dict[int, float]] = []
        for partial in self._pending:
            contributors = set(partial.contributors)
            new_contributors = contributors - self.profiles_used
            if not new_contributors:
                # Every contributor was already counted: using the list again
                # would double count (the partitioning normally prevents
                # this; the guard keeps the invariant under churn retries).
                continue
            if partial.scores and new_contributors != contributors:
                # Churn-retry overlap: the aggregated scores mix profiles
                # already merged in an earlier cycle with new ones, and the
                # per-contributor shares are not separable from the sum.
                # Merging would double count the overlap, so the tainted list
                # is dropped whole -- and the new contributors are NOT marked
                # used, because their contribution never reached the merger
                # (same accounting as a partial result lost on the wire).
                continue
            self.profiles_used.update(new_contributors)
            if partial.scores:
                new_lists.append(partial.scores)
        self._pending.clear()
        top_k = self._merger.process_cycle(new_lists)
        if self.is_complete():
            # Every neighbour's profile has contributed: the querier knows the
            # processing is over and reads off the exact result (recall 1).
            top_k = self._merger.finalize()
        snapshot = CycleSnapshot(
            cycle=cycle,
            top_k=top_k,
            profiles_used=len(self.profiles_used & self.expected_profiles),
            profiles_total=len(self.expected_profiles),
        )
        self.snapshots.append(snapshot)
        if self.is_complete():
            self.closed = True
            self.closed_cycle = cycle
        return snapshot

    # -- results --------------------------------------------------------------

    def current_items(self, exact: bool = False) -> List[int]:
        """The current top-k item ids (``exact=True`` exhausts all lists)."""
        if exact:
            return [item for item, _ in self._merger.finalize()]
        return self._merger.current_items()

    def current_top_k(self) -> List[Tuple[int, float]]:
        return self._merger.current_top_k()

    def is_complete(self) -> bool:
        """True when every expected profile has contributed."""
        return self.expected_profiles <= self.profiles_used

    @property
    def coverage(self) -> float:
        """Current coverage; equals the latest snapshot's (:func:`coverage_fraction`)."""
        return coverage_fraction(
            len(self.profiles_used & self.expected_profiles),
            len(self.expected_profiles),
        )

    @property
    def latency_cycles(self) -> Optional[int]:
        """Eager cycles from issue to completion, or ``None`` while open.

        ``issued_cycle`` is pinned at session creation (including the eager
        re-issue path, where it carries the re-issue cycle) and
        ``closed_cycle`` at the closing transition, so the latency survives
        the per-cycle snapshots a closed session keeps producing.
        """
        if self.closed_cycle is None:
            return None
        return self.closed_cycle - self.issued_cycle


@dataclass
class ForwardedQueryState:
    """State a non-querier node keeps for a query it was reached by."""

    query: Query
    #: The remaining list this node is responsible for (``L_Q(u_dest)``).
    remaining: List[int] = field(default_factory=list)

    @property
    def active(self) -> bool:
        return bool(self.remaining)
