"""Relevance scoring for personalized top-k queries.

For a query ``Q = {u_i, t_1..t_n}``:

* the score of an item ``i`` for one user ``u_j`` is the number of tags of
  ``Q`` that ``u_j`` used to annotate ``i``:
  ``Score_{u_j,Q}(i) = |{t_m ∈ Q | Tagged_{u_j}(i, t_m)}|``;
* the overall relevance of ``i`` for the querier is the sum of that
  per-user score over every neighbour of the querier's personal network;
* a *partial* relevance score is the same sum restricted to the profiles a
  given node stores and that should contribute to the query
  (``GoodProfiles`` in the paper).

Any monotonic aggregation could replace the sum without touching the rest of
the protocol; the sum is what the paper evaluates.

Scoring walks the profile's maintained tag -> items index
(``UserProfile.items_for_tag``) instead of scanning every tagging action:
a query carries a handful of tags, while paper-scale profiles hold hundreds
of actions, so the index walk touches only the actions that can contribute.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Sequence

from ..data.models import UserProfile
from ..data.queries import Query


def item_score_for_user(profile: UserProfile, query: Query, item: int) -> int:
    """``Score_{u_j,Q}(i)``: how many query tags this user put on the item."""
    tags = profile.tags_for(item)
    return sum(1 for tag in query.tags if tag in tags)


def user_score_map(profile: UserProfile, query: Query) -> Dict[int, int]:
    """All items of ``profile`` with a positive score for ``query``."""
    scores: Dict[int, int] = {}
    for tag in set(query.tags):
        for item in profile.items_for_tag(tag):
            scores[item] = scores.get(item, 0) + 1
    return scores


def partial_scores(profiles: Iterable[UserProfile], query: Query) -> Dict[int, float]:
    """Partial relevance scores summed over a set of profiles.

    This is what one node contributes to the collaborative computation: the
    sum of per-user scores over its ``GoodProfiles`` set, keeping only items
    with a positive partial score.

    The whole profile batch is priced in a single accumulation pass: per
    profile and query tag, one walk of the interned ``tag -> items`` index
    straight into the shared totals -- no per-profile score dict is ever
    materialized.  Scores are small integer counts, so float accumulation is
    exact and order-independent; the result is identical to summing
    :func:`user_score_map` per profile.
    """
    tags = set(query.tags)
    totals: Dict[int, float] = defaultdict(float)
    for profile in profiles:
        for tag in tags:
            for item in profile.items_for_tag(tag):
                totals[item] += 1.0
    return {item: score for item, score in totals.items() if score > 0}


def relevance_scores(
    profiles_by_user: Mapping[int, UserProfile],
    query: Query,
) -> Dict[int, float]:
    """Full relevance scores ``Score(Q, i)`` over a set of neighbour profiles."""
    return partial_scores(profiles_by_user.values(), query)


def ranked_items(scores: Mapping[int, float], k: int) -> Sequence[int]:
    """Top-``k`` item ids by score with deterministic tie-breaking."""
    ordered = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
    return [item for item, _ in ordered[:k]]
