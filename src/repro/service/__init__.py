"""Service mode: P3Q as a networked system on the sans-io node API.

The cycle engine (:mod:`repro.simulator.engine`) drives the protocol cores
synchronously for reproducibility; this package drives the *same* cores --
the ``*_effects`` generators of :mod:`repro.gossip` and :mod:`repro.p3q` --
from an asyncio runtime where every node is a concurrently running task,
gossip rounds fire on timers instead of engine cycles, and messages travel
as length-prefixed serialized frames (:mod:`repro.service.codec`) over an
in-process loopback wire or real UDP sockets.

Live runs record the same :class:`~repro.simulator.transport.WireEvent`
stream the simulator's transports emit, so the simtest invariant checkers
(:mod:`repro.simtest.invariants`) audit a service run exactly like a
simulated one.  See ``docs/ARCHITECTURE.md`` ("Service mode").
"""

from .codec import CODEC_NAMES, BinaryWireCodec, WireCodec, make_codec
from .runtime import FrameBatcher, NodeService, ServiceConfig, ServiceRuntime, TimerWheel
from .trace import ServiceTrace, check_trace

__all__ = [
    "BinaryWireCodec",
    "CODEC_NAMES",
    "FrameBatcher",
    "NodeService",
    "ServiceConfig",
    "ServiceRuntime",
    "ServiceTrace",
    "TimerWheel",
    "WireCodec",
    "check_trace",
    "make_codec",
]
