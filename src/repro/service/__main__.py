"""``python -m repro.service`` -- deprecated shim for ``python -m repro service``."""

import sys
import warnings

from .cli import main

warnings.warn(
    "'python -m repro.service' is deprecated; use 'python -m repro service'",
    DeprecationWarning,
)
sys.exit(main())
