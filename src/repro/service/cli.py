"""``python -m repro service``: run the live asyncio deployment.

Two modes share :func:`repro.service.demo.run_demo`:

* ``--demo`` -- a human-facing run printing recall, coverage, bytes by
  kind and the invariant audit;
* ``--smoke`` -- the CI gate: same run, but the exit status is nonzero
  unless at least one query completed and the recorded trace passed the
  invariant checkers.  ``--trace`` dumps the trace as JSON Lines (written
  before the audit, so a failing run still leaves the artifact).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .demo import (
    DEFAULT_NUM_QUERIES,
    DEFAULT_NUM_USERS,
    DEFAULT_STORAGE,
    demo_succeeded,
    format_report,
    run_demo_sync,
)
from .codec import CODEC_NAMES
from .runtime import ServiceConfig, WIRE_NAMES


def build_parser() -> argparse.ArgumentParser:
    from ..cli import add_common_options

    parser = argparse.ArgumentParser(
        prog="repro service",
        description="P3Q as a live asyncio service speaking serialized frames.",
    )
    parser.add_argument(
        "--demo", action="store_true", help="run the end-to-end demo and print the report"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="demo with a strict exit status (CI): fail unless >=1 query "
        "completed and the trace passed the invariant checkers",
    )
    parser.add_argument(
        "--nodes", type=int, default=DEFAULT_NUM_USERS, metavar="N",
        help=f"number of service nodes (default: {DEFAULT_NUM_USERS})",
    )
    parser.add_argument(
        "--queries", type=int, default=DEFAULT_NUM_QUERIES, metavar="N",
        help=f"number of queries to issue (default: {DEFAULT_NUM_QUERIES})",
    )
    parser.add_argument(
        "--storage", type=int, default=DEFAULT_STORAGE, metavar="C",
        help=f"profiles stored per node (default: {DEFAULT_STORAGE}; keep it "
        "below the personal-network size or queries never touch the wire)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SEC",
        help="per-query completion deadline in seconds (default: the "
        "ServiceConfig default)",
    )
    parser.add_argument(
        "--trace", type=str, default=None, metavar="FILE",
        help="dump the recorded WireEvent trace to FILE as JSON Lines",
    )
    parser.add_argument(
        "--codec", choices=CODEC_NAMES, default=ServiceConfig.codec, metavar="NAME",
        help="wire codec: 'binary' (the hot path, default) or 'json' "
        "(debuggable frames); byte accounting is identical either way",
    )
    add_common_options(parser, workers=False, transport_choices=WIRE_NAMES)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not (args.demo or args.smoke):
        parser.error("choose a mode: --demo (human run) or --smoke (CI gate)")
    if args.nodes < 3:
        parser.error("--nodes must be at least 3")
    if args.queries < 1:
        parser.error("--queries must be positive")

    report = run_demo_sync(
        num_users=args.nodes,
        num_queries=args.queries,
        seed=args.seed,
        wire=args.transport,
        codec=args.codec,
        deadline=args.deadline,
        storage=args.storage,
        trace_path=args.trace,
    )
    print(format_report(report))
    if not demo_succeeded(report):
        if args.smoke:
            print(
                "service smoke FAILED: "
                f"{report['completed']}/{report['num_queries']} queries completed, "
                f"invariant error: {report['invariant_error']!r}",
                file=sys.stderr,
            )
            return 1
        if report["invariant_error"] is not None:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
