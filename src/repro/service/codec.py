"""Wire codecs: every transport :class:`Message` as a length-prefixed frame.

The simulator hands message *objects* between nodes; the service runtime
hands **bytes**.  This module holds the two encoding layers in between,
selectable via ``ServiceConfig.codec``:

* :class:`WireCodec` (``"json"``) -- a type-tagged compact-JSON body under
  a 4-byte big-endian length prefix.  JSON keeps frames debuggable
  (``tcpdump`` of a demo run is readable) and is the fallback reference
  encoding.
* :class:`BinaryWireCodec` (``"binary"``) -- the service hot path:
  struct-packed headers, varint/zigzag integer fields, and Bloom digests
  as raw little-endian byte rows (the exact ``DigestMatrix`` layout, so
  :meth:`BloomFilter.from_state` round-trips reuse the pinned columnar
  machinery).  A per-codec ``(user_id, version)``-keyed cache of encoded
  digest rows skips re-serializing an unchanged digest, and -- when the
  runtime commits successful sends -- digests the receiver was already
  sent travel as 1-byte-marker references instead of full rows.

Both codecs decode to *equal messages*: the cross-codec property test
asserts field-for-field equality and identical pricing under
:func:`repro.gossip.sizes.total_bytes`.  Byte *accounting* always uses
that paper cost model, never the frame length, so service-mode traffic
numbers stay comparable with the simulator's no matter the codec.

Design rules:

* **Total coverage, loudly enforced.**  ``_ENCODERS`` (JSON) and
  ``_BIN_ENCODERS`` (binary) must cover every concrete subclass of
  :class:`Message`; encoding an unregistered type raises ``TypeError``
  immediately and the round-trip property tests enumerate
  ``Message.__subclasses__()`` so a new message type added without codec
  support fails the suite, mirroring how :mod:`repro.gossip.sizes` pins
  its size table.
* **Process-portable payloads.**  Interned action ids are process-local
  (:mod:`repro.data.interning`), so :class:`CommonItemsReply` travels as
  explicit ``(item, tag)`` pairs and is re-interned on decode; Bloom
  filters travel as their full state and are rebuilt with
  :meth:`BloomFilter.from_state`.  Frames decode identically in another
  process (the UDP transport) and in-process (the loopback).
* **Faithful round-trips.**  ``decode_message(encode_message(m))`` must
  compare equal to ``m`` field by field and price identically under
  ``total_bytes`` -- the property tests assert both, for each codec and
  across them.
"""

from __future__ import annotations

import json
import struct
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..bloom import BloomFilter
from ..data.interning import action_of, intern_action
from ..data.models import UserProfile
from ..data.queries import Query
from ..gossip.digest import ProfileDigest
from ..p3q.query import PartialResult
from ..simulator.transport import (
    DEFERRED,
    DELIVERED,
    DROPPED,
    LOST,
    REPLY_DROPPED,
    UNREACHABLE,
    VIEW_PERSONAL,
    VIEW_RANDOM,
    CommonItemsReply,
    CommonItemsRequest,
    DigestAdvertisement,
    Envelope,
    FullProfilePush,
    FullProfileRequest,
    Message,
    QueryForward,
    QueryResult,
    RemainingReturn,
)

#: Length-prefix format: one unsigned 32-bit big-endian body length.
_LEN = struct.Struct(">I")

#: Conservative single-datagram budget for the UDP transport (beneath the
#: common 64 KiB UDP payload ceiling, with headroom for the prefix).  The
#: in-process loopback has no such limit; the UDP wire refuses larger
#: frames loudly instead of truncating them.
MAX_DATAGRAM_BYTES = 60_000


def split_frames(payload: bytes) -> Tuple[List[bytes], bytes]:
    """Split a wire payload into raw frame bodies + undecodable leftover.

    Both codecs share the outer framing (4-byte big-endian length prefix),
    so one scanner serves the batched inbox path: a datagram written by the
    :class:`~repro.service.runtime.FrameBatcher` carries one or more whole
    frames back to back.  Anything that does not parse as complete frames
    -- a truncated tail, a garbage prefix claiming an absurd length -- is
    returned as ``leftover`` for the caller to drop loudly.
    """
    bodies: List[bytes] = []
    view = memoryview(payload)
    offset = 0
    total = len(payload)
    while total - offset >= _LEN.size:
        (length,) = _LEN.unpack_from(view, offset)
        end = offset + _LEN.size + length
        if total < end:
            break
        bodies.append(payload[offset + _LEN.size : end])
        offset = end
    if offset == 0:
        return bodies, payload
    return bodies, bytes(view[offset:])


# ---------------------------------------------------------------- primitives


def _encode_digest(digest: ProfileDigest) -> Dict[str, Any]:
    bloom = digest.bloom
    return {
        "u": digest.user_id,
        "v": digest.version,
        "nb": bloom.num_bits,
        "nh": bloom.num_hashes,
        "c": bloom.approximate_count,
        "b": format(bloom.raw_bits, "x"),
    }


def _decode_digest(obj: Dict[str, Any]) -> ProfileDigest:
    bloom = BloomFilter.from_state(obj["nb"], obj["nh"], int(obj["b"], 16), obj["c"])
    return ProfileDigest(user_id=obj["u"], version=obj["v"], bloom=bloom)


def _encode_profile(profile: UserProfile) -> Dict[str, Any]:
    return {
        "u": profile.user_id,
        "v": profile.version,
        "a": sorted(profile.actions),
    }


def _decode_profile(obj: Dict[str, Any]) -> UserProfile:
    # The live version counts every mutation since birth, not just the
    # actions currently present; replica freshness tracking needs it intact.
    return UserProfile.from_state(
        obj["u"], ((item, tag) for item, tag in obj["a"]), obj["v"]
    )


def _encode_query(query: Query) -> Dict[str, Any]:
    return {
        "id": query.query_id,
        "qr": query.querier,
        "t": list(query.tags),
        "si": query.source_item,
    }


def _decode_query(obj: Dict[str, Any]) -> Query:
    return Query(
        query_id=obj["id"],
        querier=obj["qr"],
        tags=tuple(obj["t"]),
        source_item=obj["si"],
    )


def _encode_partial(partial: PartialResult) -> Dict[str, Any]:
    return {
        "id": partial.query_id,
        "s": partial.sender,
        # JSON objects force string keys; item ids stay ints as pair lists.
        "sc": sorted(partial.scores.items()),
        "co": list(partial.contributors),
        "cy": partial.cycle,
    }


def _decode_partial(obj: Dict[str, Any]) -> PartialResult:
    return PartialResult(
        query_id=obj["id"],
        sender=obj["s"],
        scores={item: score for item, score in obj["sc"]},
        contributors=tuple(obj["co"]),
        cycle=obj["cy"],
    )


# ------------------------------------------------------------- message table


def _encode_digest_advertisement(m: DigestAdvertisement) -> Dict[str, Any]:
    return {"d": [_encode_digest(d) for d in m.digests], "vw": m.view}


def _encode_common_items_request(m: CommonItemsRequest) -> Dict[str, Any]:
    return {"su": m.subject_id, "it": sorted(m.items)}


def _encode_common_items_reply(m: CommonItemsReply) -> Dict[str, Any]:
    actions = None
    if m.actions is not None:
        actions = sorted(action_of(action_id) for action_id in m.actions)
    return {"su": m.subject_id, "a": actions}


def _decode_common_items_reply(obj: Dict[str, Any]) -> CommonItemsReply:
    actions = obj["a"]
    if actions is not None:
        actions = frozenset(intern_action(item, tag) for item, tag in actions)
    return CommonItemsReply(subject_id=obj["su"], actions=actions)


def _encode_full_profile_push(m: FullProfilePush) -> Dict[str, Any]:
    profile = None if m.profile is None else _encode_profile(m.profile)
    return {"su": m.subject_id, "p": profile}


def _decode_full_profile_push(obj: Dict[str, Any]) -> FullProfilePush:
    profile = None if obj["p"] is None else _decode_profile(obj["p"])
    return FullProfilePush(subject_id=obj["su"], profile=profile)


#: ``type -> (wire tag, encoder)``.  Every concrete Message subclass MUST
#: appear here; the round-trip test enumerates ``Message.__subclasses__()``.
_ENCODERS: Dict[Type[Message], Tuple[str, Callable[[Any], Dict[str, Any]]]] = {
    DigestAdvertisement: ("digests", _encode_digest_advertisement),
    CommonItemsRequest: ("common_req", _encode_common_items_request),
    CommonItemsReply: ("common_rep", _encode_common_items_reply),
    FullProfileRequest: ("profile_req", lambda m: {"su": m.subject_id}),
    FullProfilePush: ("profile_push", _encode_full_profile_push),
    QueryForward: (
        "query_fwd",
        lambda m: {"q": _encode_query(m.query), "rm": list(m.remaining), "cy": m.cycle},
    ),
    RemainingReturn: (
        "remaining_ret",
        lambda m: {"id": m.query_id, "rm": list(m.remaining)},
    ),
    QueryResult: ("query_res", lambda m: {"pr": _encode_partial(m.partial)}),
}

_DECODERS: Dict[str, Callable[[Dict[str, Any]], Message]] = {
    "digests": lambda o: DigestAdvertisement(
        digests=tuple(_decode_digest(d) for d in o["d"]), view=o["vw"]
    ),
    "common_req": lambda o: CommonItemsRequest(
        subject_id=o["su"], items=frozenset(o["it"])
    ),
    "common_rep": _decode_common_items_reply,
    "profile_req": lambda o: FullProfileRequest(subject_id=o["su"]),
    "profile_push": _decode_full_profile_push,
    "query_fwd": lambda o: QueryForward(
        query=_decode_query(o["q"]), remaining=tuple(o["rm"]), cycle=o["cy"]
    ),
    "remaining_ret": lambda o: RemainingReturn(
        query_id=o["id"], remaining=tuple(o["rm"])
    ),
    "query_res": lambda o: QueryResult(partial=_decode_partial(o["pr"])),
}


class WireCodec:
    """Serialize the message catalogue to frames and back.

    Three layers, each usable on its own:

    * :meth:`encode_message` / :meth:`decode_message` -- one message as a
      JSON-compatible dict (the property-tested core);
    * :meth:`encode_request` / :meth:`encode_reply` / :meth:`encode_send` /
      :meth:`decode` -- a full runtime frame (addressing, rpc correlation
      id, delivery status) as bytes;
    * :meth:`frame` / :meth:`feed` -- the length-prefix stream layer.

    The runtime drives any codec through the uniform surface ``split`` /
    ``decode_body`` / ``encode_request`` / ``encode_reply`` /
    ``encode_send`` / ``commit_sent`` / ``abort_sent``.
    """

    #: Registry name (``ServiceConfig.codec``).
    name = "json"

    # -- message layer --------------------------------------------------------

    def encode_message(self, message: Message) -> Dict[str, Any]:
        entry = _ENCODERS.get(type(message))
        if entry is None:
            raise TypeError(
                f"no wire encoding registered for {type(message).__name__}; "
                "add it to repro.service.codec._ENCODERS/_DECODERS"
            )
        tag, encoder = entry
        body = encoder(message)
        body["t"] = tag
        return body

    def decode_message(self, obj: Dict[str, Any]) -> Message:
        decoder = _DECODERS.get(obj.get("t"))
        if decoder is None:
            raise ValueError(f"unknown wire message tag {obj.get('t')!r}")
        return decoder(obj)

    # -- frame layer ----------------------------------------------------------

    def frame(self, body: Dict[str, Any]) -> bytes:
        """One length-prefixed frame: 4-byte BE length + compact JSON."""
        payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
        return _LEN.pack(len(payload)) + payload

    def unframe(self, frame: bytes) -> Dict[str, Any]:
        """Decode exactly one frame (prefix included)."""
        if len(frame) < _LEN.size:
            raise ValueError("short frame: missing length prefix")
        (length,) = _LEN.unpack_from(frame)
        if len(frame) - _LEN.size != length:
            raise ValueError(
                f"frame length mismatch: header {length}, body {len(frame) - _LEN.size}"
            )
        # json.loads accepts bytes directly; decoding to str first would
        # copy every body a second time on the hot inbound path.
        return json.loads(frame[_LEN.size :])

    def feed(self, buffer: bytes) -> Tuple[list, bytes]:
        """Split a byte stream into complete frame bodies + leftover bytes.

        Scans through a memoryview so an incomplete tail is the only copy
        made (and only when frames were actually consumed); bodies go to
        ``json.loads`` as bytes without an intermediate ``str``.
        """
        bodies = []
        view = memoryview(buffer)
        offset = 0
        total = len(buffer)
        while total - offset >= _LEN.size:
            (length,) = _LEN.unpack_from(view, offset)
            end = offset + _LEN.size + length
            if total < end:
                break
            bodies.append(json.loads(buffer[offset + _LEN.size : end]))
            offset = end
        if offset == 0:
            return bodies, buffer
        return bodies, bytes(view[offset:])

    # -- runtime frames -------------------------------------------------------

    def encode_request(self, envelope: Envelope, rpc_id: int) -> bytes:
        """The forward leg of a round-trip (``expects_reply`` preserved)."""
        return self.frame(
            {
                "op": "req",
                "rpc": rpc_id,
                "s": envelope.sender,
                "r": envelope.receiver,
                "q": envelope.query_id,
                "er": envelope.expects_reply,
                "ac": envelope.account,
                "m": self.encode_message(envelope.message),
            }
        )

    def encode_reply(
        self, rpc_id: int, status: str, reply: Optional[Message]
    ) -> bytes:
        return self.frame(
            {
                "op": "rep",
                "rpc": rpc_id,
                "st": status,
                "m": None if reply is None else self.encode_message(reply),
            }
        )

    def encode_send(self, envelope: Envelope) -> bytes:
        """A one-way message (no reply expected, no rpc id)."""
        return self.frame(
            {
                "op": "send",
                "s": envelope.sender,
                "r": envelope.receiver,
                "q": envelope.query_id,
                "ac": envelope.account,
                "m": self.encode_message(envelope.message),
            }
        )

    def decode(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Parse a frame body: returns the header with ``m`` decoded.

        ``op == "req" | "send"`` bodies additionally carry an ``envelope``
        key holding a ready :class:`Envelope`.
        """
        out = dict(body)
        if out.get("m") is not None:
            out["m"] = self.decode_message(out["m"])
        if out.get("op") in ("req", "send"):
            out["envelope"] = Envelope(
                sender=out["s"],
                receiver=out["r"],
                message=out["m"],
                query_id=out.get("q"),
                expects_reply=out["op"] == "req" and out.get("er", True),
                account=out.get("ac", True),
            )
        return out

    # -- runtime interface ----------------------------------------------------

    def split(self, payload: bytes) -> Tuple[List[bytes], bytes]:
        """Outer framing shared with the binary codec: see :func:`split_frames`."""
        return split_frames(payload)

    def decode_body(self, body: bytes) -> Dict[str, Any]:
        """One raw frame body (as returned by :meth:`split`) to a decoded dict."""
        return self.decode(json.loads(body))

    def commit_sent(self, receiver: int) -> None:
        """No-op: digest-advertisement suppression is a binary-codec feature."""

    def abort_sent(self, receiver: int) -> None:
        """No-op twin of :meth:`commit_sent`."""


# ------------------------------------------------------------- binary codec


#: IEEE-754 double, little-endian (partial-result scores).
_F64 = struct.Struct("<d")

#: Frame op bytes (binary twin of the JSON ``"req"/"rep"/"send"`` strings).
_BIN_OP_REQ = 0x01
_BIN_OP_REP = 0x02
_BIN_OP_SEND = 0x03

#: Delivery statuses as 1-byte indexes (replies only ever carry one of
#: these; an unknown status fails encode loudly rather than truncating).
_STATUS_TABLE = (DELIVERED, DROPPED, REPLY_DROPPED, DEFERRED, UNREACHABLE, LOST)
_STATUS_INDEX = {status: index for index, status in enumerate(_STATUS_TABLE)}

#: Decoder hygiene bounds: a hostile 127.0.0.1 peer must not make us
#: allocate gigabytes from a forged varint.  Generous vs every real
#: payload (paper digests are 20 Kbit; counts are view/exchange sized).
_MAX_DIGEST_BITS = 1 << 26
_MAX_SEQUENCE = 1 << 24

_VIEW_CODES = {VIEW_RANDOM: 0, VIEW_PERSONAL: 1}
_VIEW_NAMES = {code: name for name, code in _VIEW_CODES.items()}

#: Digest-entry markers inside a DigestAdvertisement payload.
_DIGEST_FULL = 0
_DIGEST_REF = 1


def _write_uv(out: bytearray, value: int) -> None:
    """Unsigned LEB128 varint (counts, versions, rpc ids, geometry)."""
    if value < 0:
        raise ValueError(f"unsigned varint cannot encode {value!r}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uv(view: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    total = len(view)
    while True:
        if offset >= total:
            raise ValueError("truncated varint")
        byte = view[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


def _write_sv(out: bytearray, value: int) -> None:
    """Zigzag LEB128 varint (ids and other possibly-negative ints)."""
    _write_uv(out, value * 2 if value >= 0 else -value * 2 - 1)


def _read_sv(view: bytes, offset: int) -> Tuple[int, int]:
    raw, offset = _read_uv(view, offset)
    return (raw >> 1) ^ -(raw & 1), offset


def _write_len(out: bytearray, count: int) -> None:
    if count > _MAX_SEQUENCE:
        raise ValueError(f"sequence of {count} elements exceeds the wire bound")
    _write_uv(out, count)


def _read_len(view: bytes, offset: int) -> Tuple[int, int]:
    count, offset = _read_uv(view, offset)
    if count > _MAX_SEQUENCE:
        raise ValueError(f"sequence length {count} exceeds the wire bound")
    return count, offset


def _write_actions(out: bytearray, actions) -> None:
    pairs = sorted(actions)
    _write_len(out, len(pairs))
    for item, tag in pairs:
        _write_sv(out, item)
        _write_sv(out, tag)


def _read_actions(view: bytes, offset: int) -> Tuple[List[Tuple[int, int]], int]:
    count, offset = _read_len(view, offset)
    pairs = []
    for _ in range(count):
        item, offset = _read_sv(view, offset)
        tag, offset = _read_sv(view, offset)
        pairs.append((item, tag))
    return pairs, offset


class BinaryWireCodec:
    """The service hot-path codec: struct/varint frames, raw digest rows.

    Same three layers as the JSON :class:`WireCodec` -- message bodies
    (``encode_message``/``decode_message``, here as bytes), runtime frames,
    and the shared length-prefix outer framing -- plus two caches that make
    the digest-advertisement path cheap:

    * **Encoded-row cache**: the wire encoding of a digest is keyed by
      ``(user_id, version)``; re-advertising an unchanged digest is a dict
      hit + blob copy instead of a fresh big-int serialization.
    * **Suppression**: when the runtime confirms a send (``commit_sent``),
      the ``(user_id, version)`` pairs shipped to that receiver are
      remembered, and later advertisements carry a small *reference* entry
      instead of the full row; the receiving codec resolves references
      from the digests it has already decoded.  A reference the receiver
      cannot resolve (evicted cache, a lost seeding frame) fails decode
      loudly and the inbox drops the frame -- exactly the loss the gossip
      protocol already tolerates.  Within a run ``(user_id, version)``
      identifies digest content: profiles only move forward in version
      (the replica-freshness invariant), so equal versions mean equal
      digest bits.

    Byte accounting is untouched by all of this: messages are priced by
    ``gossip.sizes.total_bytes`` on the message *object* before encoding,
    so a suppressed advertisement costs the same accounted bytes as a full
    one (the paper's cost model charges per digest, not per wire byte).
    """

    name = "binary"

    def __init__(
        self,
        suppress_digests: bool = True,
        max_received_digests: int = 65536,
        max_encoded_rows: int = 4096,
    ) -> None:
        self._suppress = suppress_digests
        #: receiver -> {(user_id, version)} confirmed on that link.
        self._sent: Dict[int, set] = {}
        #: receiver -> [(user_id, version)] encoded but not yet confirmed.
        self._pending: Dict[int, List[Tuple[int, int]]] = {}
        #: (user_id, version) -> ProfileDigest decoded earlier (LRU-bounded).
        self._received: "OrderedDict[Tuple[int, int], ProfileDigest]" = OrderedDict()
        #: (user_id, version) -> encoded full digest entry (LRU-bounded).
        self._rows: "OrderedDict[Tuple[int, int], bytes]" = OrderedDict()
        self._max_received = max_received_digests
        self._max_rows = max_encoded_rows

    # -- digest plumbing ------------------------------------------------------

    def _encode_digest_entry(self, out: bytearray, digest: ProfileDigest,
                             receiver: Optional[int]) -> None:
        key = (digest.user_id, digest.version)
        if (
            self._suppress
            and receiver is not None
            and key in self._sent.get(receiver, ())
        ):
            out.append(_DIGEST_REF)
            _write_sv(out, digest.user_id)
            _write_uv(out, digest.version)
            return
        row = self._rows.get(key)
        if row is None:
            entry = bytearray()
            entry.append(_DIGEST_FULL)
            _write_sv(entry, digest.user_id)
            _write_uv(entry, digest.version)
            bloom = digest.bloom
            _write_uv(entry, bloom.num_bits)
            _write_uv(entry, bloom.num_hashes)
            _write_uv(entry, bloom.approximate_count)
            entry += bloom.raw_bits.to_bytes((bloom.num_bits + 7) // 8, "little")
            row = bytes(entry)
            self._rows[key] = row
            if len(self._rows) > self._max_rows:
                self._rows.popitem(last=False)
        out += row
        if self._suppress and receiver is not None:
            self._pending.setdefault(receiver, []).append(key)

    def _decode_digest_entry(
        self, view: bytes, offset: int
    ) -> Tuple[ProfileDigest, int]:
        if offset >= len(view):
            raise ValueError("truncated digest entry")
        marker = view[offset]
        offset += 1
        user_id, offset = _read_sv(view, offset)
        version, offset = _read_uv(view, offset)
        key = (user_id, version)
        if marker == _DIGEST_REF:
            digest = self._received.get(key)
            if digest is None:
                raise ValueError(
                    f"unknown digest reference (user {user_id}, version {version}); "
                    "the seeding frame was never received"
                )
            self._received.move_to_end(key)
            return digest, offset
        if marker != _DIGEST_FULL:
            raise ValueError(f"bad digest entry marker {marker!r}")
        num_bits, offset = _read_uv(view, offset)
        if not 0 < num_bits <= _MAX_DIGEST_BITS:
            raise ValueError(f"digest num_bits {num_bits} out of range")
        num_hashes, offset = _read_uv(view, offset)
        count, offset = _read_uv(view, offset)
        width = (num_bits + 7) // 8
        end = offset + width
        if end > len(view):
            raise ValueError("truncated digest row")
        # The row is the DigestMatrix layout: raw filter bits, little-endian.
        bits = int.from_bytes(view[offset:end], "little")
        bloom = BloomFilter.from_state(num_bits, num_hashes, bits, count)
        digest = ProfileDigest(user_id=user_id, version=version, bloom=bloom)
        self._received[key] = digest
        if len(self._received) > self._max_received:
            self._received.popitem(last=False)
        return digest, end

    def commit_sent(self, receiver: int) -> None:
        """Confirm the last encode to ``receiver``: its digests may now be
        referenced instead of re-shipped (called after the wire accepted
        the frame)."""
        pending = self._pending.pop(receiver, None)
        if not pending:
            return
        sent = self._sent.setdefault(receiver, set())
        sent.update(pending)
        if len(sent) > self._max_received:
            # Shed the whole link table rather than track precise LRU on the
            # hot path; full rows are always correct.
            sent.clear()

    def abort_sent(self, receiver: int) -> None:
        """The wire refused the frame: forget its would-be references."""
        self._pending.pop(receiver, None)

    # -- message layer --------------------------------------------------------

    def encode_message(self, message: Message, receiver: Optional[int] = None) -> bytes:
        entry = _BIN_ENCODERS.get(type(message))
        if entry is None:
            raise TypeError(
                f"no binary wire encoding registered for {type(message).__name__}; "
                "add it to repro.service.codec._BIN_ENCODERS/_BIN_DECODERS"
            )
        tag, encoder = entry
        out = bytearray((tag,))
        encoder(self, out, message, receiver)
        return bytes(out)

    def decode_message(self, data: bytes) -> Message:
        message, offset = self._decode_message_at(data, 0)
        if offset != len(data):
            raise ValueError(f"{len(data) - offset} trailing bytes after message")
        return message

    def _decode_message_at(self, view: bytes, offset: int) -> Tuple[Message, int]:
        if offset >= len(view):
            raise ValueError("truncated message: missing tag")
        tag = view[offset]
        decoder = _BIN_DECODERS.get(tag)
        if decoder is None:
            raise ValueError(f"unknown binary wire message tag {tag!r}")
        return decoder(self, view, offset + 1)

    # -- frame layer ----------------------------------------------------------

    def frame(self, body: bytes) -> bytes:
        """One length-prefixed frame around an already-encoded body."""
        return _LEN.pack(len(body)) + body

    def unframe(self, frame: bytes) -> bytes:
        if len(frame) < _LEN.size:
            raise ValueError("short frame: missing length prefix")
        (length,) = _LEN.unpack_from(frame)
        if len(frame) - _LEN.size != length:
            raise ValueError(
                f"frame length mismatch: header {length}, body {len(frame) - _LEN.size}"
            )
        return frame[_LEN.size :]

    # -- runtime frames -------------------------------------------------------

    def encode_request(self, envelope: Envelope, rpc_id: int) -> bytes:
        out = bytearray((_BIN_OP_REQ,))
        _write_uv(out, rpc_id)
        self._encode_addressing(out, envelope)
        return self.frame(bytes(out))

    def encode_reply(self, rpc_id: int, status: str, reply: Optional[Message]) -> bytes:
        index = _STATUS_INDEX.get(status)
        if index is None:
            raise ValueError(f"unknown delivery status {status!r}")
        out = bytearray((_BIN_OP_REP,))
        _write_uv(out, rpc_id)
        out.append(index)
        if reply is None:
            out.append(0)
        else:
            out.append(1)
            out += self.encode_message(reply)
        return self.frame(bytes(out))

    def encode_send(self, envelope: Envelope) -> bytes:
        out = bytearray((_BIN_OP_SEND,))
        self._encode_addressing(out, envelope)
        return self.frame(bytes(out))

    def _encode_addressing(self, out: bytearray, envelope: Envelope) -> None:
        _write_sv(out, envelope.sender)
        _write_sv(out, envelope.receiver)
        flags = (1 if envelope.account else 0) | (
            2 if envelope.query_id is not None else 0
        )
        out.append(flags)
        if envelope.query_id is not None:
            _write_sv(out, envelope.query_id)
        out += self.encode_message(envelope.message, receiver=envelope.receiver)

    # -- runtime interface ----------------------------------------------------

    def split(self, payload: bytes) -> Tuple[List[bytes], bytes]:
        return split_frames(payload)

    def decode_body(self, body: bytes) -> Dict[str, Any]:
        """One raw frame body to the decoded dict the runtime dispatches on.

        Same shape as :meth:`WireCodec.decode`: ``op``/``rpc``/``st``/``m``
        plus a ready ``envelope`` for inbound requests and sends.
        """
        if not body:
            raise ValueError("empty frame body")
        op = body[0]
        offset = 1
        if op == _BIN_OP_REP:
            rpc_id, offset = _read_uv(body, offset)
            if offset + 2 > len(body):
                raise ValueError("truncated reply header")
            status_index = body[offset]
            has_message = body[offset + 1]
            offset += 2
            if status_index >= len(_STATUS_TABLE):
                raise ValueError(f"unknown delivery status index {status_index}")
            message: Optional[Message] = None
            if has_message:
                message, offset = self._decode_message_at(body, offset)
            if offset != len(body):
                raise ValueError("trailing bytes after reply")
            return {
                "op": "rep",
                "rpc": rpc_id,
                "st": _STATUS_TABLE[status_index],
                "m": message,
            }
        if op not in (_BIN_OP_REQ, _BIN_OP_SEND):
            raise ValueError(f"unknown binary frame op {op!r}")
        rpc_id = None
        if op == _BIN_OP_REQ:
            rpc_id, offset = _read_uv(body, offset)
        sender, offset = _read_sv(body, offset)
        receiver, offset = _read_sv(body, offset)
        if offset >= len(body):
            raise ValueError("truncated frame: missing flags")
        flags = body[offset]
        offset += 1
        query_id = None
        if flags & 2:
            query_id, offset = _read_sv(body, offset)
        message, offset = self._decode_message_at(body, offset)
        if offset != len(body):
            raise ValueError("trailing bytes after message")
        expects_reply = op == _BIN_OP_REQ
        decoded: Dict[str, Any] = {
            "op": "req" if expects_reply else "send",
            "s": sender,
            "r": receiver,
            "q": query_id,
            "er": expects_reply,
            "ac": bool(flags & 1),
            "m": message,
        }
        if rpc_id is not None:
            decoded["rpc"] = rpc_id
        decoded["envelope"] = Envelope(
            sender=sender,
            receiver=receiver,
            message=message,
            query_id=query_id,
            expects_reply=expects_reply,
            account=bool(flags & 1),
        )
        return decoded


# -- binary message table ----------------------------------------------------


def _bin_enc_digests(codec, out, m: DigestAdvertisement, receiver) -> None:
    out.append(_VIEW_CODES[m.view])
    _write_len(out, len(m.digests))
    for digest in m.digests:
        codec._encode_digest_entry(out, digest, receiver)


def _bin_dec_digests(codec, view, offset):
    if offset >= len(view):
        raise ValueError("truncated advertisement: missing view byte")
    view_code = view[offset]
    if view_code not in _VIEW_NAMES:
        raise ValueError(f"unknown view code {view_code!r}")
    offset += 1
    count, offset = _read_len(view, offset)
    digests = []
    for _ in range(count):
        digest, offset = codec._decode_digest_entry(view, offset)
        digests.append(digest)
    return DigestAdvertisement(digests=tuple(digests), view=_VIEW_NAMES[view_code]), offset


def _bin_enc_common_req(codec, out, m: CommonItemsRequest, receiver) -> None:
    _write_sv(out, m.subject_id)
    items = sorted(m.items)
    _write_len(out, len(items))
    for item in items:
        _write_sv(out, item)


def _bin_dec_common_req(codec, view, offset):
    subject, offset = _read_sv(view, offset)
    count, offset = _read_len(view, offset)
    items = []
    for _ in range(count):
        item, offset = _read_sv(view, offset)
        items.append(item)
    return CommonItemsRequest(subject_id=subject, items=frozenset(items)), offset


def _bin_enc_common_rep(codec, out, m: CommonItemsReply, receiver) -> None:
    _write_sv(out, m.subject_id)
    if m.actions is None:
        out.append(0)
        return
    out.append(1)
    _write_actions(out, (action_of(action_id) for action_id in m.actions))


def _bin_dec_common_rep(codec, view, offset):
    subject, offset = _read_sv(view, offset)
    if offset >= len(view):
        raise ValueError("truncated common-items reply")
    has_actions = view[offset]
    offset += 1
    actions = None
    if has_actions:
        pairs, offset = _read_actions(view, offset)
        actions = frozenset(intern_action(item, tag) for item, tag in pairs)
    return CommonItemsReply(subject_id=subject, actions=actions), offset


def _bin_enc_profile_req(codec, out, m: FullProfileRequest, receiver) -> None:
    _write_sv(out, m.subject_id)


def _bin_dec_profile_req(codec, view, offset):
    subject, offset = _read_sv(view, offset)
    return FullProfileRequest(subject_id=subject), offset


def _bin_enc_profile_push(codec, out, m: FullProfilePush, receiver) -> None:
    _write_sv(out, m.subject_id)
    profile = m.profile
    if profile is None:
        out.append(0)
        return
    out.append(1)
    _write_sv(out, profile.user_id)
    _write_uv(out, profile.version)
    _write_actions(out, profile.actions)


def _bin_dec_profile_push(codec, view, offset):
    subject, offset = _read_sv(view, offset)
    if offset >= len(view):
        raise ValueError("truncated profile push")
    has_profile = view[offset]
    offset += 1
    profile = None
    if has_profile:
        user_id, offset = _read_sv(view, offset)
        version, offset = _read_uv(view, offset)
        pairs, offset = _read_actions(view, offset)
        profile = UserProfile.from_state(user_id, pairs, version)
    return FullProfilePush(subject_id=subject, profile=profile), offset


def _bin_enc_query_fwd(codec, out, m: QueryForward, receiver) -> None:
    query = m.query
    _write_sv(out, query.query_id)
    _write_sv(out, query.querier)
    _write_len(out, len(query.tags))
    for tag in query.tags:
        _write_sv(out, tag)
    if query.source_item is None:
        out.append(0)
    else:
        out.append(1)
        _write_sv(out, query.source_item)
    _write_len(out, len(m.remaining))
    for user_id in m.remaining:
        _write_sv(out, user_id)
    _write_sv(out, m.cycle)


def _bin_dec_query_fwd(codec, view, offset):
    query_id, offset = _read_sv(view, offset)
    querier, offset = _read_sv(view, offset)
    num_tags, offset = _read_len(view, offset)
    tags = []
    for _ in range(num_tags):
        tag, offset = _read_sv(view, offset)
        tags.append(tag)
    if offset >= len(view):
        raise ValueError("truncated query forward")
    has_source = view[offset]
    offset += 1
    source_item = None
    if has_source:
        source_item, offset = _read_sv(view, offset)
    num_remaining, offset = _read_len(view, offset)
    remaining = []
    for _ in range(num_remaining):
        user_id, offset = _read_sv(view, offset)
        remaining.append(user_id)
    cycle, offset = _read_sv(view, offset)
    query = Query(
        query_id=query_id, querier=querier, tags=tuple(tags), source_item=source_item
    )
    return QueryForward(query=query, remaining=tuple(remaining), cycle=cycle), offset


def _bin_enc_remaining_ret(codec, out, m: RemainingReturn, receiver) -> None:
    _write_sv(out, m.query_id)
    _write_len(out, len(m.remaining))
    for user_id in m.remaining:
        _write_sv(out, user_id)


def _bin_dec_remaining_ret(codec, view, offset):
    query_id, offset = _read_sv(view, offset)
    count, offset = _read_len(view, offset)
    remaining = []
    for _ in range(count):
        user_id, offset = _read_sv(view, offset)
        remaining.append(user_id)
    return RemainingReturn(query_id=query_id, remaining=tuple(remaining)), offset


def _bin_enc_query_res(codec, out, m: QueryResult, receiver) -> None:
    partial = m.partial
    _write_sv(out, partial.query_id)
    _write_sv(out, partial.sender)
    _write_sv(out, partial.cycle)
    scores = sorted(partial.scores.items())
    _write_len(out, len(scores))
    for item, score in scores:
        _write_sv(out, item)
        out += _F64.pack(score)
    _write_len(out, len(partial.contributors))
    for user_id in partial.contributors:
        _write_sv(out, user_id)


def _bin_dec_query_res(codec, view, offset):
    query_id, offset = _read_sv(view, offset)
    sender, offset = _read_sv(view, offset)
    cycle, offset = _read_sv(view, offset)
    num_scores, offset = _read_len(view, offset)
    scores = {}
    for _ in range(num_scores):
        item, offset = _read_sv(view, offset)
        end = offset + _F64.size
        if end > len(view):
            raise ValueError("truncated score")
        scores[item] = _F64.unpack_from(view, offset)[0]
        offset = end
    num_contributors, offset = _read_len(view, offset)
    contributors = []
    for _ in range(num_contributors):
        user_id, offset = _read_sv(view, offset)
        contributors.append(user_id)
    partial = PartialResult(
        query_id=query_id,
        sender=sender,
        scores=scores,
        contributors=tuple(contributors),
        cycle=cycle,
    )
    return QueryResult(partial=partial), offset


#: ``type -> (1-byte wire tag, encoder)``.  Total over the catalogue, like
#: ``_ENCODERS``; the coverage test enforces parity between the two tables.
_BIN_ENCODERS: Dict[Type[Message], Tuple[int, Callable]] = {
    DigestAdvertisement: (1, _bin_enc_digests),
    CommonItemsRequest: (2, _bin_enc_common_req),
    CommonItemsReply: (3, _bin_enc_common_rep),
    FullProfileRequest: (4, _bin_enc_profile_req),
    FullProfilePush: (5, _bin_enc_profile_push),
    QueryForward: (6, _bin_enc_query_fwd),
    RemainingReturn: (7, _bin_enc_remaining_ret),
    QueryResult: (8, _bin_enc_query_res),
}

_BIN_DECODERS: Dict[int, Callable] = {
    1: _bin_dec_digests,
    2: _bin_dec_common_req,
    3: _bin_dec_common_rep,
    4: _bin_dec_profile_req,
    5: _bin_dec_profile_push,
    6: _bin_dec_query_fwd,
    7: _bin_dec_remaining_ret,
    8: _bin_dec_query_res,
}


# ------------------------------------------------------------ codec registry


CODEC_JSON = "json"
CODEC_BINARY = "binary"
#: Names accepted by ``ServiceConfig.codec``.
CODEC_NAMES = (CODEC_JSON, CODEC_BINARY)


def make_codec(name: str):
    """One codec instance for one node.

    The JSON codec is stateless, but the binary codec carries per-node
    digest caches (what this node has decoded, what each peer was sent),
    so every :class:`~repro.service.runtime.NodeService` gets its own.
    """
    if name == CODEC_BINARY:
        return BinaryWireCodec()
    if name == CODEC_JSON:
        return WireCodec()
    raise ValueError(f"codec must be one of {CODEC_NAMES}, got {name!r}")
