"""Wire codec: every transport :class:`Message` as a length-prefixed frame.

The simulator hands message *objects* between nodes; the service runtime
hands **bytes**.  This module is the single encoding layer in between: a
type-tagged JSON body under a 4-byte big-endian length prefix.  JSON keeps
frames debuggable (``tcpdump`` of a demo run is readable) and needs nothing
outside the standard library; the byte *accounting* still uses the paper's
cost model (:func:`repro.gossip.sizes.total_bytes`), never the frame length,
so service-mode traffic numbers stay comparable with the simulator's.

Design rules:

* **Total coverage, loudly enforced.**  ``_ENCODERS`` must cover every
  concrete subclass of :class:`Message`; encoding an unregistered type
  raises ``TypeError`` immediately and the round-trip property test
  enumerates ``Message.__subclasses__()`` so a new message type added
  without codec support fails the suite, mirroring how
  :mod:`repro.gossip.sizes` pins its size table.
* **Process-portable payloads.**  Interned action ids are process-local
  (:mod:`repro.data.interning`), so :class:`CommonItemsReply` travels as
  explicit ``(item, tag)`` pairs and is re-interned on decode; Bloom
  filters travel as ``(num_bits, num_hashes, hex bits, count)`` and are
  rebuilt with :meth:`BloomFilter.from_state`.  Frames decode identically
  in another process (the UDP transport) and in-process (the loopback).
* **Faithful round-trips.**  ``decode_message(encode_message(m))`` must
  compare equal to ``m`` field by field and price identically under
  ``total_bytes`` -- the property test asserts both.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, Optional, Tuple, Type

from ..bloom import BloomFilter
from ..data.interning import action_of, intern_action
from ..data.models import UserProfile
from ..data.queries import Query
from ..gossip.digest import ProfileDigest
from ..p3q.query import PartialResult
from ..simulator.transport import (
    CommonItemsReply,
    CommonItemsRequest,
    DigestAdvertisement,
    Envelope,
    FullProfilePush,
    FullProfileRequest,
    Message,
    QueryForward,
    QueryResult,
    RemainingReturn,
)

#: Length-prefix format: one unsigned 32-bit big-endian body length.
_LEN = struct.Struct(">I")

#: Conservative single-datagram budget for the UDP transport (beneath the
#: common 64 KiB UDP payload ceiling, with headroom for the prefix).  The
#: in-process loopback has no such limit; the UDP wire refuses larger
#: frames loudly instead of truncating them.
MAX_DATAGRAM_BYTES = 60_000


# ---------------------------------------------------------------- primitives


def _encode_digest(digest: ProfileDigest) -> Dict[str, Any]:
    bloom = digest.bloom
    return {
        "u": digest.user_id,
        "v": digest.version,
        "nb": bloom.num_bits,
        "nh": bloom.num_hashes,
        "c": bloom.approximate_count,
        "b": format(bloom.raw_bits, "x"),
    }


def _decode_digest(obj: Dict[str, Any]) -> ProfileDigest:
    bloom = BloomFilter.from_state(obj["nb"], obj["nh"], int(obj["b"], 16), obj["c"])
    return ProfileDigest(user_id=obj["u"], version=obj["v"], bloom=bloom)


def _encode_profile(profile: UserProfile) -> Dict[str, Any]:
    return {
        "u": profile.user_id,
        "v": profile.version,
        "a": sorted(profile.actions),
    }


def _decode_profile(obj: Dict[str, Any]) -> UserProfile:
    profile = UserProfile(obj["u"], ((item, tag) for item, tag in obj["a"]))
    # The live version counts every mutation since birth, not just the
    # actions currently present; replica freshness tracking needs it intact.
    profile._version = obj["v"]
    return profile


def _encode_query(query: Query) -> Dict[str, Any]:
    return {
        "id": query.query_id,
        "qr": query.querier,
        "t": list(query.tags),
        "si": query.source_item,
    }


def _decode_query(obj: Dict[str, Any]) -> Query:
    return Query(
        query_id=obj["id"],
        querier=obj["qr"],
        tags=tuple(obj["t"]),
        source_item=obj["si"],
    )


def _encode_partial(partial: PartialResult) -> Dict[str, Any]:
    return {
        "id": partial.query_id,
        "s": partial.sender,
        # JSON objects force string keys; item ids stay ints as pair lists.
        "sc": sorted(partial.scores.items()),
        "co": list(partial.contributors),
        "cy": partial.cycle,
    }


def _decode_partial(obj: Dict[str, Any]) -> PartialResult:
    return PartialResult(
        query_id=obj["id"],
        sender=obj["s"],
        scores={item: score for item, score in obj["sc"]},
        contributors=tuple(obj["co"]),
        cycle=obj["cy"],
    )


# ------------------------------------------------------------- message table


def _encode_digest_advertisement(m: DigestAdvertisement) -> Dict[str, Any]:
    return {"d": [_encode_digest(d) for d in m.digests], "vw": m.view}


def _encode_common_items_request(m: CommonItemsRequest) -> Dict[str, Any]:
    return {"su": m.subject_id, "it": sorted(m.items)}


def _encode_common_items_reply(m: CommonItemsReply) -> Dict[str, Any]:
    actions = None
    if m.actions is not None:
        actions = sorted(action_of(action_id) for action_id in m.actions)
    return {"su": m.subject_id, "a": actions}


def _decode_common_items_reply(obj: Dict[str, Any]) -> CommonItemsReply:
    actions = obj["a"]
    if actions is not None:
        actions = frozenset(intern_action(item, tag) for item, tag in actions)
    return CommonItemsReply(subject_id=obj["su"], actions=actions)


def _encode_full_profile_push(m: FullProfilePush) -> Dict[str, Any]:
    profile = None if m.profile is None else _encode_profile(m.profile)
    return {"su": m.subject_id, "p": profile}


def _decode_full_profile_push(obj: Dict[str, Any]) -> FullProfilePush:
    profile = None if obj["p"] is None else _decode_profile(obj["p"])
    return FullProfilePush(subject_id=obj["su"], profile=profile)


#: ``type -> (wire tag, encoder)``.  Every concrete Message subclass MUST
#: appear here; the round-trip test enumerates ``Message.__subclasses__()``.
_ENCODERS: Dict[Type[Message], Tuple[str, Callable[[Any], Dict[str, Any]]]] = {
    DigestAdvertisement: ("digests", _encode_digest_advertisement),
    CommonItemsRequest: ("common_req", _encode_common_items_request),
    CommonItemsReply: ("common_rep", _encode_common_items_reply),
    FullProfileRequest: ("profile_req", lambda m: {"su": m.subject_id}),
    FullProfilePush: ("profile_push", _encode_full_profile_push),
    QueryForward: (
        "query_fwd",
        lambda m: {"q": _encode_query(m.query), "rm": list(m.remaining), "cy": m.cycle},
    ),
    RemainingReturn: (
        "remaining_ret",
        lambda m: {"id": m.query_id, "rm": list(m.remaining)},
    ),
    QueryResult: ("query_res", lambda m: {"pr": _encode_partial(m.partial)}),
}

_DECODERS: Dict[str, Callable[[Dict[str, Any]], Message]] = {
    "digests": lambda o: DigestAdvertisement(
        digests=tuple(_decode_digest(d) for d in o["d"]), view=o["vw"]
    ),
    "common_req": lambda o: CommonItemsRequest(
        subject_id=o["su"], items=frozenset(o["it"])
    ),
    "common_rep": _decode_common_items_reply,
    "profile_req": lambda o: FullProfileRequest(subject_id=o["su"]),
    "profile_push": _decode_full_profile_push,
    "query_fwd": lambda o: QueryForward(
        query=_decode_query(o["q"]), remaining=tuple(o["rm"]), cycle=o["cy"]
    ),
    "remaining_ret": lambda o: RemainingReturn(
        query_id=o["id"], remaining=tuple(o["rm"])
    ),
    "query_res": lambda o: QueryResult(partial=_decode_partial(o["pr"])),
}


class WireCodec:
    """Serialize the message catalogue to frames and back.

    Three layers, each usable on its own:

    * :meth:`encode_message` / :meth:`decode_message` -- one message as a
      JSON-compatible dict (the property-tested core);
    * :meth:`encode_request` / :meth:`encode_reply` / :meth:`encode_send` /
      :meth:`decode` -- a full runtime frame (addressing, rpc correlation
      id, delivery status) as bytes;
    * :meth:`frame` / :meth:`feed` -- the length-prefix stream layer.
    """

    # -- message layer --------------------------------------------------------

    def encode_message(self, message: Message) -> Dict[str, Any]:
        entry = _ENCODERS.get(type(message))
        if entry is None:
            raise TypeError(
                f"no wire encoding registered for {type(message).__name__}; "
                "add it to repro.service.codec._ENCODERS/_DECODERS"
            )
        tag, encoder = entry
        body = encoder(message)
        body["t"] = tag
        return body

    def decode_message(self, obj: Dict[str, Any]) -> Message:
        decoder = _DECODERS.get(obj.get("t"))
        if decoder is None:
            raise ValueError(f"unknown wire message tag {obj.get('t')!r}")
        return decoder(obj)

    # -- frame layer ----------------------------------------------------------

    def frame(self, body: Dict[str, Any]) -> bytes:
        """One length-prefixed frame: 4-byte BE length + compact JSON."""
        payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
        return _LEN.pack(len(payload)) + payload

    def unframe(self, frame: bytes) -> Dict[str, Any]:
        """Decode exactly one frame (prefix included)."""
        if len(frame) < _LEN.size:
            raise ValueError("short frame: missing length prefix")
        (length,) = _LEN.unpack_from(frame)
        body = frame[_LEN.size :]
        if len(body) != length:
            raise ValueError(f"frame length mismatch: header {length}, body {len(body)}")
        return json.loads(body.decode("utf-8"))

    def feed(self, buffer: bytes) -> Tuple[list, bytes]:
        """Split a byte stream into complete frame bodies + leftover bytes."""
        bodies = []
        offset = 0
        while len(buffer) - offset >= _LEN.size:
            (length,) = _LEN.unpack_from(buffer, offset)
            end = offset + _LEN.size + length
            if len(buffer) < end:
                break
            bodies.append(json.loads(buffer[offset + _LEN.size : end].decode("utf-8")))
            offset = end
        return bodies, buffer[offset:]

    # -- runtime frames -------------------------------------------------------

    def encode_request(self, envelope: Envelope, rpc_id: int) -> bytes:
        """The forward leg of a round-trip (``expects_reply`` preserved)."""
        return self.frame(
            {
                "op": "req",
                "rpc": rpc_id,
                "s": envelope.sender,
                "r": envelope.receiver,
                "q": envelope.query_id,
                "er": envelope.expects_reply,
                "ac": envelope.account,
                "m": self.encode_message(envelope.message),
            }
        )

    def encode_reply(
        self, rpc_id: int, status: str, reply: Optional[Message]
    ) -> bytes:
        return self.frame(
            {
                "op": "rep",
                "rpc": rpc_id,
                "st": status,
                "m": None if reply is None else self.encode_message(reply),
            }
        )

    def encode_send(self, envelope: Envelope) -> bytes:
        """A one-way message (no reply expected, no rpc id)."""
        return self.frame(
            {
                "op": "send",
                "s": envelope.sender,
                "r": envelope.receiver,
                "q": envelope.query_id,
                "ac": envelope.account,
                "m": self.encode_message(envelope.message),
            }
        )

    def decode(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Parse a frame body: returns the header with ``m`` decoded.

        ``op == "req" | "send"`` bodies additionally carry an ``envelope``
        key holding a ready :class:`Envelope`.
        """
        out = dict(body)
        if out.get("m") is not None:
            out["m"] = self.decode_message(out["m"])
        if out.get("op") in ("req", "send"):
            out["envelope"] = Envelope(
                sender=out["s"],
                receiver=out["r"],
                message=out["m"],
                query_id=out.get("q"),
                expects_reply=out["op"] == "req" and out.get("er", True),
                account=out.get("ac", True),
            )
        return out
