"""The service-mode demo: a live P3Q deployment answering real queries.

Builds a warm-started simulation the same way the figure experiments do
(:func:`repro.experiments.runner.converged_simulation`), hands it to a
:class:`~repro.service.runtime.ServiceRuntime`, issues a query workload
with per-query deadlines, audits the recorded wire trace with the simtest
invariant checkers and reports recall against the centralized references
plus bytes on the wire.  Three callers share it:

* ``python -m repro service --demo`` (and the deprecated
  ``python -m repro.service --demo``);
* the ``fig-service`` experiment;
* the CI ``service-smoke`` job (``--smoke`` asserts at least one query
  completed and the invariants passed, exiting nonzero otherwise).
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Any, Dict, List, Optional

from ..experiments.runner import PreparedWorkload, converged_simulation, prepare_workload
from ..experiments.scenarios import ExperimentScale
from ..metrics.recall import recall
from .runtime import ServiceConfig, ServiceRuntime

#: Demo defaults: big enough to gossip meaningfully, small enough for CI.
#: Storage must sit *below* the personal-network size, else every query is
#: answered from the querier's own replicas and nothing touches the wire.
DEFAULT_NUM_USERS = 50
DEFAULT_NUM_QUERIES = 8
DEFAULT_STORAGE = 3


def build_demo_workload(
    num_users: int = DEFAULT_NUM_USERS,
    num_queries: int = DEFAULT_NUM_QUERIES,
    seed: int = 42,
) -> PreparedWorkload:
    """A tiny-scale workload resized to ``num_users`` service nodes."""
    base = ExperimentScale.tiny(seed=seed)
    scale = replace(
        base,
        num_users=num_users,
        network_size=min(base.network_size, max(2, num_users - 1)),
        num_queries=min(num_queries, num_users),
    )
    return prepare_workload(scale)


async def run_demo(
    num_users: int = DEFAULT_NUM_USERS,
    num_queries: int = DEFAULT_NUM_QUERIES,
    seed: int = 42,
    wire: str = "inproc",
    codec: Optional[str] = None,
    deadline: Optional[float] = None,
    storage: int = DEFAULT_STORAGE,
    service_config: Optional[ServiceConfig] = None,
    trace_path: Optional[str] = None,
) -> Dict[str, Any]:
    """One live service run; returns the report dict (see keys below).

    The trace is dumped to ``trace_path`` (when given) *before* the
    invariant audit, so a failing run still leaves the evidence on disk --
    the CI smoke job uploads it as an artifact.  An invariant violation is
    reported in ``invariant_error`` rather than raised, for the same
    reason: the caller decides whether to abort.
    """
    from ..simtest.invariants import InvariantViolation
    from .trace import check_trace

    workload = build_demo_workload(num_users=num_users, num_queries=num_queries, seed=seed)
    simulation = converged_simulation(workload, storage)
    if service_config is not None:
        config = service_config
    elif codec is not None:
        config = ServiceConfig(wire=wire, codec=codec)
    else:
        config = ServiceConfig(wire=wire)
    runtime = ServiceRuntime(simulation, config)
    loop = asyncio.get_running_loop()
    started = loop.time()
    await runtime.start()
    try:
        sessions = await runtime.run_queries(workload.queries, deadline=deadline)
    finally:
        await runtime.stop()
    wall = loop.time() - started
    latencies = sorted(runtime.rpc_latencies)
    rpc_p95_ms = (
        latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))] * 1e3
        if latencies
        else 0.0
    )

    if trace_path is not None:
        runtime.trace.dump(trace_path)

    invariants: List[str] = []
    invariant_error: Optional[str] = None
    try:
        invariants = check_trace(runtime.trace.events, simulation)
    except InvariantViolation as violation:
        invariant_error = str(violation)

    per_query = []
    for query in workload.queries:
        session = sessions[query.query_id]
        items = session.current_items()
        per_query.append(
            {
                "query_id": query.query_id,
                "querier": query.querier,
                "closed": session.closed,
                "coverage": session.coverage,
                "recall": recall(items, workload.references.get(query.query_id, [])),
            }
        )
    completed = sum(1 for row in per_query if row["closed"])
    stats = simulation.stats
    return {
        "num_users": num_users,
        "num_queries": len(per_query),
        "wire": config.wire,
        "codec": config.codec,
        "seed": seed,
        "wall_seconds": wall,
        "gossip_rounds": runtime.gossip_rounds,
        "eager_ticks": runtime.eager_ticks,
        "rounds_per_sec": runtime.gossip_rounds / wall if wall > 0 else 0.0,
        "rpc_count": len(latencies),
        "rpc_p95_ms": rpc_p95_ms,
        "completed": completed,
        "mean_recall": (
            sum(row["recall"] for row in per_query) / len(per_query) if per_query else 0.0
        ),
        "mean_coverage": (
            sum(row["coverage"] for row in per_query) / len(per_query) if per_query else 0.0
        ),
        "queries": per_query,
        "bytes_total": stats.total_bytes(),
        "bytes_by_kind": stats.bytes_by_kind(),
        "wire_events": len(runtime.trace.events),
        "invariants": invariants,
        "invariant_error": invariant_error,
    }


def run_demo_sync(**kwargs: Any) -> Dict[str, Any]:
    """:func:`run_demo` from synchronous code (the CLI, experiments)."""
    return asyncio.run(run_demo(**kwargs))


def format_report(report: Dict[str, Any]) -> str:
    """The human-readable demo summary printed by ``--demo``."""
    lines = [
        f"service demo: {report['num_users']} nodes over the "
        f"{report['wire']} wire, {report.get('codec', 'json')} codec "
        f"(seed {report['seed']})",
        f"  queries completed: {report['completed']}/{report['num_queries']}",
        f"  gossip rounds: {report.get('gossip_rounds', 0)} "
        f"({report.get('rounds_per_sec', 0.0):.1f}/s), "
        f"rpc p95 {report.get('rpc_p95_ms', 0.0):.2f} ms",
        f"  mean recall vs centralized reference: {report['mean_recall']:.3f}",
        f"  mean coverage: {report['mean_coverage']:.3f}",
        f"  bytes on the wire: {report['bytes_total']}",
    ]
    for kind, amount in sorted(report["bytes_by_kind"].items()):
        lines.append(f"    {kind}: {amount}")
    lines.append(f"  wire events recorded: {report['wire_events']}")
    if report["invariant_error"] is not None:
        lines.append(f"  INVARIANT VIOLATION: {report['invariant_error']}")
    else:
        lines.append(
            "  invariants passed: " + ", ".join(report["invariants"])
        )
    return "\n".join(lines)


def demo_succeeded(report: Dict[str, Any]) -> bool:
    """The smoke criterion: at least one completed query, clean invariants."""
    return report["completed"] >= 1 and report["invariant_error"] is None
