"""The asyncio service runtime: P3Q nodes as concurrently running tasks.

The cycle engine executes nodes one after another inside a single loop
iteration; this runtime executes the *same protocol cores* -- the
``*_effects`` generators -- as independent asyncio tasks exchanging
serialized frames:

* each node is a :class:`NodeService`: an inbox task (one sub-task per
  inbound frame, so nested round-trips between two nodes cannot deadlock)
  plus gossip/eager rounds fired by the runtime's shared
  :class:`TimerWheel` -- one scheduler task drives every node's jittered
  deadlines from a heap, replacing the two private timer tasks per node
  of the original design;
* messages travel through a pluggable wire as codec frames (JSON or
  binary, per ``ServiceConfig.codec``): the in-process :class:`InProcWire`
  (asyncio queues carrying *encoded bytes*) by default, or :class:`UdpWire`
  (one real UDP socket per node on 127.0.0.1, frames bounded by
  :data:`~repro.service.codec.MAX_DATAGRAM_BYTES`).  One-way frames
  queued in the same loop tick for the same destination are coalesced by
  the :class:`FrameBatcher` into a single wire write; request and reply
  frames flush immediately (the rpc boundary is never traded for
  batching);
* round-trips are rpc-correlated and guarded by a timeout: a request whose
  reply does not arrive in time resolves to ``DROPPED``, the same status a
  lossy transport hands the protocol, so the sans-io cores need no notion
  of time;
* per-query **deadlines** replace the engine's cycle cutoffs: a query that
  has not completed when its deadline expires is reported with whatever
  coverage it reached.

The runtime wraps a fully built :class:`~repro.p3q.protocol.P3QSimulation`
-- construction, warm start, churn bookkeeping and the stats collector are
shared with the simulator -- but never runs its engine.  Byte accounting
follows the transport's exact rules (priced by ``gossip.sizes`` at send
time; control messages and ``None``-payload replies free) **regardless of
codec** -- batching and digest suppression change wire bytes, never
accounted bytes -- every wire action is recorded as a
:class:`~repro.simulator.transport.WireEvent` in a
:class:`~repro.service.trace.ServiceTrace`, and
:func:`~repro.service.trace.check_trace` audits the run with the simtest
invariant checkers.

Two effect outcomes differ from the engine driver by design (documented in
``docs/ARCHITECTURE.md``):

* ``ProbeEffect`` consults the shared liveness table (the runtime's
  failure-detector oracle) instead of ``Network.try_contact``;
* ``PeerDigestEffect`` resolves to the *fallback* digest already held in
  the random view -- a real peer cannot peek at another process's memory
  -- where the engine peeks at the live node for seed bit-identity.
"""

from __future__ import annotations

import asyncio
import heapq
import logging
import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..data.queries import Query
from ..gossip.sizes import total_bytes
from ..p3q.protocol import P3QSimulation
from ..p3q.query import QuerySession
from ..simulator.effects import (
    PeerDigestEffect,
    ProbeEffect,
    RequestEffect,
    SendEffect,
    WireEffects,
)
from ..simulator.transport import (
    DELIVERED,
    DROPPED,
    OP_REPLY,
    OP_REQUEST,
    OP_SEND,
    UNREACHABLE,
    Dispatch,
    Envelope,
    Message,
    WireEvent,
)
from .codec import CODEC_BINARY, CODEC_NAMES, MAX_DATAGRAM_BYTES, make_codec
from .trace import ServiceTrace

logger = logging.getLogger(__name__)


def _report_task_failure(task: asyncio.Task) -> None:
    """Done-callback surfacing crashes of long-lived service tasks.

    Timer loops, inbox readers and inbound handlers are only gathered at
    shutdown with ``return_exceptions=True``; without this callback an
    unexpected exception (an oversized UDP frame, a protocol bug) would
    silently stop the node for the rest of the run.
    """
    if task.cancelled():
        return
    exc = task.exception()
    if exc is not None:
        logger.error("service task %s crashed", task.get_name(), exc_info=exc)


#: Wire flavour names accepted by :class:`ServiceConfig.wire`.
WIRE_INPROC = "inproc"
WIRE_UDP = "udp"
WIRE_NAMES = (WIRE_INPROC, WIRE_UDP)


@dataclass(frozen=True)
class ServiceConfig:
    """Timing and wiring knobs of a service run."""

    #: Seconds between a node's lazy gossip rounds (engine: one per cycle).
    gossip_interval: float = 0.05
    #: Seconds between a node's eager query rounds.
    eager_interval: float = 0.02
    #: Round-trip guard: a request unanswered for this long resolves DROPPED.
    rpc_timeout: float = 5.0
    #: Default per-query completion deadline (seconds from issue).
    query_deadline: float = 3.0
    #: ``"inproc"`` (asyncio loopback, default) or ``"udp"`` (127.0.0.1 sockets).
    wire: str = WIRE_INPROC
    #: ``"binary"`` (the hot path, default) or ``"json"`` (debuggable frames).
    codec: str = CODEC_BINARY
    #: Multiplicative timer jitter range (``1 ± jitter``), desynchronizing
    #: nodes the way real clocks drift apart.
    jitter: float = 0.2

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Field and range checks, in the :meth:`P3QConfig.validate` style.

        Every knob is checked for type, finiteness and range -- ``nan`` and
        ``inf`` pass a bare ``<= 0`` comparison and would otherwise wedge a
        timer forever.
        """
        if self.wire not in WIRE_NAMES:
            raise ValueError(f"wire must be one of {WIRE_NAMES}, got {self.wire!r}")
        if self.codec not in CODEC_NAMES:
            raise ValueError(
                f"codec must be one of {CODEC_NAMES}, got {self.codec!r}"
            )
        positive = (
            ("gossip_interval", self.gossip_interval),
            ("eager_interval", self.eager_interval),
            ("rpc_timeout", self.rpc_timeout),
            ("query_deadline", self.query_deadline),
        )
        for name, value in positive:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{name} must be a number, got {value!r}")
            if not math.isfinite(value) or value <= 0:
                raise ValueError(
                    f"{name} must be a positive finite number, got {value!r}"
                )
        jitter = self.jitter
        if isinstance(jitter, bool) or not isinstance(jitter, (int, float)):
            raise ValueError(f"jitter must be a number, got {jitter!r}")
        if not math.isfinite(jitter) or not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter!r}")


# -------------------------------------------------------------------- wires


class InProcWire:
    """Loopback wire: one asyncio queue of *encoded frames* per node.

    Frames still round-trip through the codec -- the bytes handed to the
    queue are exactly the bytes the UDP wire would put on a socket -- so
    the in-process default exercises the full serialization path.
    """

    def __init__(self) -> None:
        self._inboxes: Dict[int, asyncio.Queue] = {}

    async def start(self, node_ids) -> None:
        for node_id in node_ids:
            self._inboxes[node_id] = asyncio.Queue()

    async def stop(self) -> None:
        self._inboxes.clear()

    def inbox(self, node_id: int) -> asyncio.Queue:
        return self._inboxes[node_id]

    def has_peer(self, node_id: int) -> bool:
        return node_id in self._inboxes

    def send(self, receiver: int, frame: bytes) -> bool:
        inbox = self._inboxes.get(receiver)
        if inbox is None:
            return False
        inbox.put_nowait(frame)
        return True


class _UdpInbox(asyncio.DatagramProtocol):
    def __init__(self, queue: asyncio.Queue) -> None:
        self._queue = queue

    def datagram_received(self, data: bytes, addr) -> None:  # pragma: no cover - io
        self._queue.put_nowait(data)


class UdpWire:
    """One real UDP socket per node on 127.0.0.1 (kernel loopback).

    Every frame actually traverses the network stack.  Frames larger than
    :data:`MAX_DATAGRAM_BYTES` are refused loudly -- size your digests
    (``digest_bits``) for the datagram budget instead of letting the kernel
    truncate silently.
    """

    def __init__(self) -> None:
        self._inboxes: Dict[int, asyncio.Queue] = {}
        self._transports: Dict[int, asyncio.DatagramTransport] = {}
        self._addresses: Dict[int, Tuple[str, int]] = {}

    async def start(self, node_ids) -> None:
        loop = asyncio.get_running_loop()
        for node_id in node_ids:
            queue: asyncio.Queue = asyncio.Queue()
            transport, _ = await loop.create_datagram_endpoint(
                lambda q=queue: _UdpInbox(q), local_addr=("127.0.0.1", 0)
            )
            self._inboxes[node_id] = queue
            self._transports[node_id] = transport
            self._addresses[node_id] = transport.get_extra_info("sockname")[:2]

    async def stop(self) -> None:
        for transport in self._transports.values():
            transport.close()
        self._inboxes.clear()
        self._transports.clear()
        self._addresses.clear()

    def inbox(self, node_id: int) -> asyncio.Queue:
        return self._inboxes[node_id]

    def has_peer(self, node_id: int) -> bool:
        return node_id in self._addresses

    def send(self, receiver: int, frame: bytes) -> bool:
        address = self._addresses.get(receiver)
        if address is None:
            return False
        if len(frame) > MAX_DATAGRAM_BYTES:
            raise ValueError(
                f"frame of {len(frame)} bytes exceeds the {MAX_DATAGRAM_BYTES}-byte "
                "datagram budget; use smaller digest_bits or the inproc wire"
            )
        # Any local socket may send; route through the receiver's own to
        # keep per-node addressing symmetric.
        self._transports[receiver].sendto(frame, address)
        return True


def make_wire(name: str):
    if name == WIRE_UDP:
        return UdpWire()
    return InProcWire()


# ------------------------------------------------------------ frame batching


class FrameBatcher:
    """Coalesce same-loop-tick one-way frames per destination.

    The gossip hot path emits bursts of small one-way frames (suppressed
    digest advertisements, remaining-returns) toward the same receiver
    within one loop iteration; writing each individually costs one queue
    put or one ``sendto`` syscall apiece.  The batcher buffers them per
    destination and flushes the concatenation as one wire write on the
    next loop tick (``call_soon``), under :data:`MAX_DATAGRAM_BYTES` --
    both codecs share the length-prefix outer framing, so the receiver's
    ``split`` recovers the individual bodies.

    Flush rules, in order of precedence:

    * :meth:`send_now` -- requests and replies: queued frames to that
      destination flush first (frame order on a link is preserved), then
      the frame is written through immediately.  Rpc latency is never
      traded for batching.
    * an over-budget batch flushes eagerly before admitting the new frame;
    * a single frame larger than the budget is written through on its own
      so the UDP wire's loud refusal surfaces in the caller's context;
    * everything else flushes on the scheduled tick (or :meth:`flush_all`
      during shutdown).
    """

    def __init__(self, wire) -> None:
        self._wire = wire
        self._pending: Dict[int, List[bytes]] = {}
        self._sizes: Dict[int, int] = {}
        self._scheduled = False

    def send(self, receiver: int, frame: bytes) -> bool:
        """Queue a one-way frame; returns whether the receiver is reachable."""
        if not self._wire.has_peer(receiver):
            return False
        if len(frame) > MAX_DATAGRAM_BYTES:
            self.flush(receiver)
            return self._wire.send(receiver, frame)
        size = self._sizes.get(receiver, 0)
        if size and size + len(frame) > MAX_DATAGRAM_BYTES:
            self.flush(receiver)
        self._pending.setdefault(receiver, []).append(frame)
        self._sizes[receiver] = self._sizes.get(receiver, 0) + len(frame)
        if not self._scheduled:
            self._scheduled = True
            asyncio.get_running_loop().call_soon(self._flush_tick)
        return True

    def send_now(self, receiver: int, frame: bytes) -> bool:
        """Rpc-boundary write-through (flushes queued frames first)."""
        if not self._wire.has_peer(receiver):
            return False
        self.flush(receiver)
        return self._wire.send(receiver, frame)

    def flush(self, receiver: int) -> None:
        frames = self._pending.pop(receiver, None)
        self._sizes.pop(receiver, None)
        if frames:
            self._wire.send(
                receiver, frames[0] if len(frames) == 1 else b"".join(frames)
            )

    def flush_all(self) -> None:
        for receiver in list(self._pending):
            self.flush(receiver)

    def empty(self) -> bool:
        return not self._pending

    def _flush_tick(self) -> None:
        self._scheduled = False
        self.flush_all()


# --------------------------------------------------------------- timer wheel


class TimerWheel:
    """One scheduler task driving every node's jittered deadlines.

    Replaces the original two-asyncio-tasks-per-node timer design: a heap
    of ``(deadline, seq, callback)`` entries and a single ``timer-wheel``
    task that sleeps until the earliest deadline, pops everything due, and
    fires the callbacks synchronously (callbacks spawn round tasks; they
    must not block).  O(active timers) memory, O(log n) per schedule, one
    task total -- the firing *times* are exactly the ones the per-node
    loops would have produced, because each node still draws its jitter
    from its own seeded rng.

    ``schedule`` after :meth:`stop` is a silent no-op: in-flight rounds
    rescheduling themselves during shutdown simply stop recurring.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._wakeup: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._running = False

    def start(self) -> None:
        self._wakeup = asyncio.Event()
        self._running = True
        self._task = asyncio.create_task(self._run(), name="timer-wheel")
        self._task.add_done_callback(_report_task_failure)

    async def stop(self) -> None:
        self._running = False
        if self._task is None:
            return
        self._wakeup.set()
        await asyncio.gather(self._task, return_exceptions=True)
        self._task = None
        self._heap.clear()

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Fire ``callback`` in the wheel task ``delay`` seconds from now."""
        if not self._running:
            return
        self._seq += 1
        deadline = asyncio.get_running_loop().time() + delay
        heapq.heappush(self._heap, (deadline, self._seq, callback))
        self._wakeup.set()

    def __len__(self) -> int:
        return len(self._heap)

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while self._running:
            while self._heap and self._heap[0][0] <= loop.time():
                _, _, callback = heapq.heappop(self._heap)
                callback()
            if self._heap:
                timeout = max(0.0, self._heap[0][0] - loop.time())
                try:
                    await asyncio.wait_for(self._wakeup.wait(), timeout)
                except asyncio.TimeoutError:
                    continue
            else:
                await self._wakeup.wait()
            self._wakeup.clear()


# ------------------------------------------------------------- node service


class NodeService:
    """One node: an inbox task plus wheel-driven gossip/eager rounds."""

    def __init__(self, node, runtime: "ServiceRuntime") -> None:
        self.node = node
        self.node_id = node.node_id
        self.runtime = runtime
        #: Per-node codec instance: the binary codec carries digest caches
        #: (what this node decoded, what each peer was already sent).
        self.codec = make_codec(runtime.config.codec)
        self._rpc_futures: Dict[int, asyncio.Future] = {}
        self._rpc_counter = 0
        #: The node's local eager clock: one tick per eager-round firing.
        #: Stamps query sessions and forwards exactly like engine cycles.
        self.tick = 0
        self._timer_rng = random.Random(
            f"{runtime.simulation.config.seed}/service/{self.node_id}"
        )
        self._inbox_task: Optional[asyncio.Task] = None
        self._inflight: set = set()
        self._rounds: set = set()
        #: Recent wheel firing times (loop clock), for jitter diagnostics.
        self.gossip_fire_times: Deque[float] = deque(maxlen=256)
        self.eager_fire_times: Deque[float] = deque(maxlen=256)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._inbox_task = asyncio.create_task(
            self._inbox_loop(), name=f"inbox-{self.node_id}"
        )
        self._inbox_task.add_done_callback(_report_task_failure)
        # Random phase offset: engine cycles fire every node in lockstep,
        # real deployments drift apart immediately.
        wheel = self.runtime.wheel
        config = self.runtime.config
        wheel.schedule(
            self._timer_rng.uniform(0.0, config.gossip_interval), self._fire_gossip
        )
        wheel.schedule(
            self._timer_rng.uniform(0.0, config.eager_interval), self._fire_eager
        )

    async def join_rounds(self) -> None:
        """Wait for in-flight gossip/eager rounds (after the wheel stops)."""
        while self._rounds:
            await asyncio.gather(*list(self._rounds), return_exceptions=True)

    async def join_handlers(self) -> None:
        """Wait for every in-flight inbound handler to finish."""
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def idle(self) -> bool:
        """True when no handler is running and no frame awaits the inbox."""
        return not self._inflight and self.runtime.wire.inbox(self.node_id).empty()

    async def close(self) -> None:
        """Tear down the inbox reader (a pure reader: safe to cancel)."""
        self._inbox_task.cancel()
        await asyncio.gather(self._inbox_task, return_exceptions=True)

    # -- effect driving -------------------------------------------------------

    async def drive(self, gen: WireEffects) -> Any:
        """Async twin of :func:`repro.simulator.effects.drive`."""
        runtime = self.runtime
        try:
            effect = gen.send(None)
            while True:
                etype = type(effect)
                if etype is RequestEffect:
                    result: Any = await self.request(
                        effect.sender,
                        effect.receiver,
                        effect.message,
                        query_id=effect.query_id,
                        account=effect.account,
                    )
                elif etype is SendEffect:
                    result = self.send(
                        effect.sender,
                        effect.receiver,
                        effect.message,
                        query_id=effect.query_id,
                        account=effect.account,
                    )
                elif etype is ProbeEffect:
                    result = runtime.is_online(effect.node_id)
                elif etype is PeerDigestEffect:
                    # A live peek is impossible over a real wire: use the
                    # stale copy the random view already holds.
                    result = effect.fallback
                else:
                    raise TypeError(f"unknown wire effect {effect!r}")
                effect = gen.send(result)
        except StopIteration as stop:
            return stop.value

    # -- outbound -------------------------------------------------------------

    async def request(
        self,
        sender: int,
        receiver: int,
        message: Message,
        query_id: Optional[int] = None,
        account: bool = True,
    ) -> Dispatch:
        """Round-trip rpc with the transport's statuses and accounting."""
        runtime = self.runtime
        if not runtime.is_online(receiver):
            runtime.observe(OP_REQUEST, sender, receiver, message, UNREACHABLE, False, query_id)
            return Dispatch(UNREACHABLE, None)
        if account:
            runtime.account(sender, receiver, message, query_id)
        self._rpc_counter += 1
        rpc_id = self._rpc_counter
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._rpc_futures[rpc_id] = future
        envelope = Envelope(sender, receiver, message, query_id, True, account)
        frame = self.codec.encode_request(envelope, rpc_id)
        started = loop.time()
        delivered = runtime.batcher.send_now(receiver, frame)
        if not delivered:
            # The wire lost the address after the bytes were spent: report a
            # drop (accounted), not unreachability (which is never charged).
            self.codec.abort_sent(receiver)
            self._rpc_futures.pop(rpc_id, None)
            runtime.observe(OP_REQUEST, sender, receiver, message, DROPPED, account, query_id)
            return Dispatch(DROPPED, None)
        self.codec.commit_sent(receiver)
        try:
            reply = await asyncio.wait_for(future, runtime.config.rpc_timeout)
        except asyncio.TimeoutError:
            self._rpc_futures.pop(rpc_id, None)
            # The sender-side timeout of a real gossip: indistinguishable
            # from a lost request, so the protocol sees DROPPED (it must
            # not assume the other side processed anything).
            runtime.observe(OP_REQUEST, sender, receiver, message, DROPPED, account, query_id)
            return Dispatch(DROPPED, None)
        runtime.record_rpc_latency(loop.time() - started)
        runtime.observe(OP_REQUEST, sender, receiver, message, DELIVERED, account, query_id)
        return Dispatch(DELIVERED, reply)

    def send(
        self,
        sender: int,
        receiver: int,
        message: Message,
        query_id: Optional[int] = None,
        account: bool = True,
    ) -> str:
        """One-way, fire-and-forget send (batched with same-tick frames)."""
        runtime = self.runtime
        if not runtime.is_online(receiver):
            runtime.observe(OP_SEND, sender, receiver, message, UNREACHABLE, False, query_id)
            return UNREACHABLE
        if account:
            runtime.account(sender, receiver, message, query_id)
        envelope = Envelope(sender, receiver, message, query_id, False, account)
        if not runtime.batcher.send(receiver, self.codec.encode_send(envelope)):
            self.codec.abort_sent(receiver)
            runtime.observe(OP_SEND, sender, receiver, message, DROPPED, account, query_id)
            return DROPPED
        self.codec.commit_sent(receiver)
        runtime.observe(OP_SEND, sender, receiver, message, DELIVERED, account, query_id)
        return DELIVERED

    # -- inbound --------------------------------------------------------------

    async def _inbox_loop(self) -> None:
        runtime = self.runtime
        inbox = runtime.wire.inbox(self.node_id)
        codec = self.codec
        while True:
            payload = await inbox.get()
            # One wire read may carry several batched frames; both codecs
            # share the outer length-prefix framing, so one scan splits it.
            bodies, leftover = codec.split(payload)
            for body in bodies:
                try:
                    decoded = codec.decode_body(body)
                except Exception:
                    # The UDP socket is open to anything on 127.0.0.1: a
                    # garbage or unknown-tag frame must not kill the reader
                    # (which would silently partition this node for the
                    # rest of the run).
                    logger.warning(
                        "node %d dropped undecodable %d-byte frame",
                        self.node_id, len(body), exc_info=True,
                    )
                    continue
                self._dispatch_inbound(decoded)
            if leftover:
                logger.warning(
                    "node %d dropped undecodable %d-byte frame",
                    self.node_id, len(leftover),
                )

    def _dispatch_inbound(self, decoded: Dict[str, Any]) -> None:
        if decoded["op"] == "rep":
            future = self._rpc_futures.pop(decoded["rpc"], None)
            if future is not None and not future.done():
                future.set_result(decoded["m"])
            return
        # One task per inbound frame: a handler may issue nested
        # round-trips back at the node that is currently awaiting us
        # (digest integration, the eager alpha split), so serial
        # processing would deadlock two mutually-requesting nodes.
        task = asyncio.create_task(self._handle_inbound(decoded))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)
        task.add_done_callback(_report_task_failure)

    async def _handle_inbound(self, decoded: Dict[str, Any]) -> None:
        runtime = self.runtime
        envelope: Envelope = decoded["envelope"]
        reply = await self.drive(self.node.handle_message_effects(envelope))
        if decoded["op"] != "req":
            return
        if reply is not None:
            # Reply legs are accounted and observed at the replier, the side
            # that actually spends the uplink bytes; the requester's timeout
            # discarding a late reply does not un-spend them.
            if envelope.account:
                runtime.account(self.node_id, envelope.sender, reply, envelope.query_id)
            runtime.observe(
                OP_REPLY, self.node_id, envelope.sender, reply, DELIVERED,
                envelope.account, envelope.query_id,
            )
        runtime.batcher.send_now(
            envelope.sender, self.codec.encode_reply(decoded["rpc"], DELIVERED, reply)
        )

    # -- rounds (wheel-fired) -------------------------------------------------

    def _pause(self, interval: float) -> float:
        jitter = self.runtime.config.jitter
        if jitter <= 0.0:
            return interval
        return interval * self._timer_rng.uniform(1.0 - jitter, 1.0 + jitter)

    def _spawn_round(self, coro, name: str) -> None:
        task = asyncio.create_task(coro, name=name)
        self._rounds.add(task)
        task.add_done_callback(self._rounds.discard)
        task.add_done_callback(_report_task_failure)

    def _fire_gossip(self) -> None:
        if not self.runtime.running:
            return
        self.gossip_fire_times.append(asyncio.get_running_loop().time())
        self._spawn_round(self._gossip_round(), f"round-gossip-{self.node_id}")

    def _fire_eager(self) -> None:
        if not self.runtime.running:
            return
        self.eager_fire_times.append(asyncio.get_running_loop().time())
        self._spawn_round(self._eager_round(), f"round-eager-{self.node_id}")

    async def _gossip_round(self) -> None:
        runtime = self.runtime
        if runtime.is_online(self.node_id):
            await self.drive(self.node.lazy_round_effects())
            runtime.gossip_rounds += 1
        # Reschedule after the round completes: the jittered interval
        # separates round *completions* from the next firing, exactly as
        # the per-node sleep loop did.
        runtime.wheel.schedule(
            self._pause(runtime.config.gossip_interval), self._fire_gossip
        )

    async def _eager_round(self) -> None:
        runtime = self.runtime
        if runtime.is_online(self.node_id):
            self.tick += 1
            runtime.eager_ticks += 1
            if self.node.has_active_queries():
                await self.drive(self.node.eager_round_effects(self.tick))
            # Fold the partial results this tick delivered into snapshots
            # (the engine does this at each eager cycle boundary).
            for session in self.node.sessions.values():
                session.close_cycle(self.tick)
        runtime.wheel.schedule(
            self._pause(runtime.config.eager_interval), self._fire_eager
        )

    # -- queries --------------------------------------------------------------

    def issue(self, query: Query) -> QuerySession:
        session = self.node.issue_query(query, cycle=self.tick)
        session.close_cycle(self.tick)
        return session


# ----------------------------------------------------------------- runtime


class ServiceRuntime:
    """A full P3Q deployment as one asyncio service per node.

    Wraps a built (and typically warm-started) simulation: the runtime
    reuses its nodes, protocol objects, network liveness table and stats
    collector, but replaces the cycle engine with wheel-driven rounds and
    the direct method-call wire with serialized frames.
    """

    def __init__(
        self,
        simulation: P3QSimulation,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.simulation = simulation
        self.config = config or ServiceConfig()
        self.wire = make_wire(self.config.wire)
        self.batcher = FrameBatcher(self.wire)
        self.wheel = TimerWheel()
        self.trace = ServiceTrace()
        self._observers = [self.trace.record]
        self.services: Dict[int, NodeService] = {}
        self._started = False
        #: Wheel callbacks initiate new rounds only while True; cleared by
        #: :meth:`stop` so the runtime quiesces instead of cancelling
        #: half-finished exchanges (which would break byte conservation).
        self.running = False
        #: Completed gossip rounds / eager ticks across all nodes (the
        #: demo's round-throughput numerators).
        self.gossip_rounds = 0
        self.eager_ticks = 0
        #: Completed round-trip latencies, seconds (bounded sliding window).
        self.rpc_latencies: Deque[float] = deque(maxlen=65536)

    # -- shared plumbing ------------------------------------------------------

    def is_online(self, node_id: int) -> bool:
        """The runtime's failure-detector oracle (the shared liveness table)."""
        return self.simulation.network.is_online(node_id)

    def account(
        self, sender: int, receiver: int, message: Message, query_id: Optional[int]
    ) -> None:
        """Transport-identical byte accounting into the shared stats collector.

        Priced by :func:`repro.gossip.sizes.total_bytes` on the message
        object -- never by encoded frame length -- so batching, digest
        suppression and codec choice leave the traffic numbers untouched.
        """
        kind = message.kind
        if kind is None or not message.accountable:
            return
        self.simulation.network.account(
            sender, receiver, kind, total_bytes(message), query_id=query_id
        )

    def observe(
        self,
        op: str,
        sender: int,
        receiver: int,
        message: Message,
        status: str,
        accounted: bool,
        query_id: Optional[int],
    ) -> None:
        event = WireEvent(op, sender, receiver, message, status, accounted, query_id)
        for observer in self._observers:
            observer(event)

    def add_observer(self, observer) -> None:
        self._observers.append(observer)

    def record_rpc_latency(self, seconds: float) -> None:
        self.rpc_latencies.append(seconds)

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            raise RuntimeError("service runtime already started")
        node_ids = list(self.simulation.nodes)
        await self.wire.start(node_ids)
        self.wheel.start()
        self.running = True
        for node_id in node_ids:
            service = NodeService(self.simulation.nodes[node_id], self)
            self.services[node_id] = service
            service.start()
        self._started = True

    async def stop(self) -> None:
        """Quiesce, then tear down.

        The wheel stops first (no new rounds fire), rounds in progress run
        to completion (cancelling one between its accounting and its
        WireEvent would break byte conservation), then in-flight inbound
        handlers and batched frames drain, pending partial results are
        folded into a final snapshot per session, and the inbox readers --
        pure readers, safe to cancel -- go away.
        """
        self.running = False
        await self.wheel.stop()
        services = list(self.services.values())
        for service in services:
            await service.join_rounds()
        # A handler drained late in the pass can send a frame to a service
        # drained earlier, spawning a fresh handler there; sweep until one
        # full pass finds every service idle -- no running handler, no
        # queued frame, no batched frame -- so the wire is quiescent (with
        # the wheel stopped, handlers only beget finitely many more).  The
        # sleep(0) lets inbox readers turn queued frames into handlers the
        # next pass can join.
        while True:
            self.batcher.flush_all()
            for service in services:
                await service.join_handlers()
            self.batcher.flush_all()
            if self.batcher.empty() and all(service.idle() for service in services):
                break
            await asyncio.sleep(0)
        for service in services:
            node = service.node
            if node.sessions:
                service.tick += 1
                for session in node.sessions.values():
                    session.close_cycle(service.tick)
        for service in services:
            await service.close()
        await self.wire.stop()
        self.services = {}
        self._started = False

    # -- driving --------------------------------------------------------------

    def issue_query(self, query: Query) -> QuerySession:
        return self.services[query.querier].issue(query)

    async def run_queries(
        self,
        queries: List[Query],
        deadline: Optional[float] = None,
    ) -> Dict[int, QuerySession]:
        """Issue queries and wait until each completes or hits its deadline.

        The per-query deadline replaces the engine's eager cycle cutoff: an
        incomplete session is returned with whatever coverage it reached.
        """
        deadline = deadline if deadline is not None else self.config.query_deadline
        sessions = {q.query_id: self.issue_query(q) for q in queries}
        loop = asyncio.get_running_loop()
        cutoff = loop.time() + deadline
        poll = min(0.02, self.config.eager_interval)
        while loop.time() < cutoff:
            if all(session.closed for session in sessions.values()):
                break
            await asyncio.sleep(poll)
        return sessions
