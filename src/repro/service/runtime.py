"""The asyncio service runtime: P3Q nodes as concurrently running tasks.

The cycle engine executes nodes one after another inside a single loop
iteration; this runtime executes the *same protocol cores* -- the
``*_effects`` generators -- as independent asyncio tasks exchanging
serialized frames:

* each node is a :class:`NodeService`: an inbox task (one sub-task per
  inbound frame, so nested round-trips between two nodes cannot deadlock),
  a **gossip timer** firing the lazy round (peer sampling + Algorithm 1)
  and an **eager timer** firing the query round and folding received
  partial results into per-tick snapshots -- the timers replace engine
  cycles;
* messages travel through a pluggable wire as WireCodec frames: the
  in-process :class:`InProcWire` (asyncio queues carrying *encoded bytes*)
  by default, or :class:`UdpWire` (one real UDP socket per node on
  127.0.0.1, frames bounded by :data:`~repro.service.codec.MAX_DATAGRAM_BYTES`);
* round-trips are rpc-correlated and guarded by a timeout: a request whose
  reply does not arrive in time resolves to ``DROPPED``, the same status a
  lossy transport hands the protocol, so the sans-io cores need no notion
  of time;
* per-query **deadlines** replace the engine's cycle cutoffs: a query that
  has not completed when its deadline expires is reported with whatever
  coverage it reached.

The runtime wraps a fully built :class:`~repro.p3q.protocol.P3QSimulation`
-- construction, warm start, churn bookkeeping and the stats collector are
shared with the simulator -- but never runs its engine.  Byte accounting
follows the transport's exact rules (priced by ``gossip.sizes`` at send
time; control messages and ``None``-payload replies free), every wire
action is recorded as a :class:`~repro.simulator.transport.WireEvent` in a
:class:`~repro.service.trace.ServiceTrace`, and
:func:`~repro.service.trace.check_trace` audits the run with the simtest
invariant checkers.

Two effect outcomes differ from the engine driver by design (documented in
``docs/ARCHITECTURE.md``):

* ``ProbeEffect`` consults the shared liveness table (the runtime's
  failure-detector oracle) instead of ``Network.try_contact``;
* ``PeerDigestEffect`` resolves to the *fallback* digest already held in
  the random view -- a real peer cannot peek at another process's memory
  -- where the engine peeks at the live node for seed bit-identity.
"""

from __future__ import annotations

import asyncio
import logging
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..data.queries import Query
from ..gossip.sizes import total_bytes
from ..p3q.protocol import P3QSimulation
from ..p3q.query import QuerySession
from ..simulator.effects import (
    PeerDigestEffect,
    ProbeEffect,
    RequestEffect,
    SendEffect,
    WireEffects,
)
from ..simulator.transport import (
    DELIVERED,
    DROPPED,
    OP_REPLY,
    OP_REQUEST,
    OP_SEND,
    UNREACHABLE,
    Dispatch,
    Envelope,
    Message,
    WireEvent,
)
from .codec import MAX_DATAGRAM_BYTES, WireCodec
from .trace import ServiceTrace

logger = logging.getLogger(__name__)


def _report_task_failure(task: asyncio.Task) -> None:
    """Done-callback surfacing crashes of long-lived service tasks.

    Timer loops, inbox readers and inbound handlers are only gathered at
    shutdown with ``return_exceptions=True``; without this callback an
    unexpected exception (an oversized UDP frame, a protocol bug) would
    silently stop the node for the rest of the run.
    """
    if task.cancelled():
        return
    exc = task.exception()
    if exc is not None:
        logger.error("service task %s crashed", task.get_name(), exc_info=exc)


#: Wire flavour names accepted by :class:`ServiceConfig.wire`.
WIRE_INPROC = "inproc"
WIRE_UDP = "udp"
WIRE_NAMES = (WIRE_INPROC, WIRE_UDP)


@dataclass(frozen=True)
class ServiceConfig:
    """Timing and wiring knobs of a service run."""

    #: Seconds between a node's lazy gossip rounds (engine: one per cycle).
    gossip_interval: float = 0.05
    #: Seconds between a node's eager query rounds.
    eager_interval: float = 0.02
    #: Round-trip guard: a request unanswered for this long resolves DROPPED.
    rpc_timeout: float = 5.0
    #: Default per-query completion deadline (seconds from issue).
    query_deadline: float = 3.0
    #: ``"inproc"`` (asyncio loopback, default) or ``"udp"`` (127.0.0.1 sockets).
    wire: str = WIRE_INPROC
    #: Multiplicative timer jitter range (``1 ± jitter``), desynchronizing
    #: nodes the way real clocks drift apart.
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.wire not in WIRE_NAMES:
            raise ValueError(f"wire must be one of {WIRE_NAMES}, got {self.wire!r}")
        for name in ("gossip_interval", "eager_interval", "rpc_timeout", "query_deadline"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)!r}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter!r}")


# -------------------------------------------------------------------- wires


class InProcWire:
    """Loopback wire: one asyncio queue of *encoded frames* per node.

    Frames still round-trip through the codec -- the bytes handed to the
    queue are exactly the bytes the UDP wire would put on a socket -- so
    the in-process default exercises the full serialization path.
    """

    def __init__(self) -> None:
        self._inboxes: Dict[int, asyncio.Queue] = {}

    async def start(self, node_ids) -> None:
        for node_id in node_ids:
            self._inboxes[node_id] = asyncio.Queue()

    async def stop(self) -> None:
        self._inboxes.clear()

    def inbox(self, node_id: int) -> asyncio.Queue:
        return self._inboxes[node_id]

    def send(self, receiver: int, frame: bytes) -> bool:
        inbox = self._inboxes.get(receiver)
        if inbox is None:
            return False
        inbox.put_nowait(frame)
        return True


class _UdpInbox(asyncio.DatagramProtocol):
    def __init__(self, queue: asyncio.Queue) -> None:
        self._queue = queue

    def datagram_received(self, data: bytes, addr) -> None:  # pragma: no cover - io
        self._queue.put_nowait(data)


class UdpWire:
    """One real UDP socket per node on 127.0.0.1 (kernel loopback).

    Every frame actually traverses the network stack.  Frames larger than
    :data:`MAX_DATAGRAM_BYTES` are refused loudly -- size your digests
    (``digest_bits``) for the datagram budget instead of letting the kernel
    truncate silently.
    """

    def __init__(self) -> None:
        self._inboxes: Dict[int, asyncio.Queue] = {}
        self._transports: Dict[int, asyncio.DatagramTransport] = {}
        self._addresses: Dict[int, Tuple[str, int]] = {}

    async def start(self, node_ids) -> None:
        loop = asyncio.get_running_loop()
        for node_id in node_ids:
            queue: asyncio.Queue = asyncio.Queue()
            transport, _ = await loop.create_datagram_endpoint(
                lambda q=queue: _UdpInbox(q), local_addr=("127.0.0.1", 0)
            )
            self._inboxes[node_id] = queue
            self._transports[node_id] = transport
            self._addresses[node_id] = transport.get_extra_info("sockname")[:2]

    async def stop(self) -> None:
        for transport in self._transports.values():
            transport.close()
        self._inboxes.clear()
        self._transports.clear()
        self._addresses.clear()

    def inbox(self, node_id: int) -> asyncio.Queue:
        return self._inboxes[node_id]

    def send(self, receiver: int, frame: bytes) -> bool:
        address = self._addresses.get(receiver)
        if address is None:
            return False
        if len(frame) > MAX_DATAGRAM_BYTES:
            raise ValueError(
                f"frame of {len(frame)} bytes exceeds the {MAX_DATAGRAM_BYTES}-byte "
                "datagram budget; use smaller digest_bits or the inproc wire"
            )
        # Any local socket may send; route through the receiver's own to
        # keep per-node addressing symmetric.
        self._transports[receiver].sendto(frame, address)
        return True


def make_wire(name: str):
    if name == WIRE_UDP:
        return UdpWire()
    return InProcWire()


# ------------------------------------------------------------- node service


class NodeService:
    """One node as a set of asyncio tasks: inbox, gossip timer, eager timer."""

    def __init__(self, node, runtime: "ServiceRuntime") -> None:
        self.node = node
        self.node_id = node.node_id
        self.runtime = runtime
        self._rpc_futures: Dict[int, asyncio.Future] = {}
        self._rpc_counter = 0
        #: The node's local eager clock: one tick per eager-timer firing.
        #: Stamps query sessions and forwards exactly like engine cycles.
        self.tick = 0
        self._timer_rng = random.Random(
            f"{runtime.simulation.config.seed}/service/{self.node_id}"
        )
        self._tasks: List[asyncio.Task] = []
        self._inbox_task: Optional[asyncio.Task] = None
        self._inflight: set = set()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._inbox_task = asyncio.create_task(
            self._inbox_loop(), name=f"inbox-{self.node_id}"
        )
        self._inbox_task.add_done_callback(_report_task_failure)
        self._tasks = [
            asyncio.create_task(self._gossip_loop(), name=f"gossip-{self.node_id}"),
            asyncio.create_task(self._eager_loop(), name=f"eager-{self.node_id}"),
        ]
        for task in self._tasks:
            task.add_done_callback(_report_task_failure)

    async def join_timers(self) -> None:
        """Wait for the timer loops to exit (after the runtime quiesces)."""
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []

    async def join_handlers(self) -> None:
        """Wait for every in-flight inbound handler to finish."""
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def idle(self) -> bool:
        """True when no handler is running and no frame awaits the inbox."""
        return not self._inflight and self.runtime.wire.inbox(self.node_id).empty()

    async def close(self) -> None:
        """Tear down the inbox reader (a pure reader: safe to cancel)."""
        self._inbox_task.cancel()
        await asyncio.gather(self._inbox_task, return_exceptions=True)

    # -- effect driving -------------------------------------------------------

    async def drive(self, gen: WireEffects) -> Any:
        """Async twin of :func:`repro.simulator.effects.drive`."""
        runtime = self.runtime
        try:
            effect = gen.send(None)
            while True:
                etype = type(effect)
                if etype is RequestEffect:
                    result: Any = await self.request(
                        effect.sender,
                        effect.receiver,
                        effect.message,
                        query_id=effect.query_id,
                        account=effect.account,
                    )
                elif etype is SendEffect:
                    result = self.send(
                        effect.sender,
                        effect.receiver,
                        effect.message,
                        query_id=effect.query_id,
                        account=effect.account,
                    )
                elif etype is ProbeEffect:
                    result = runtime.is_online(effect.node_id)
                elif etype is PeerDigestEffect:
                    # A live peek is impossible over a real wire: use the
                    # stale copy the random view already holds.
                    result = effect.fallback
                else:
                    raise TypeError(f"unknown wire effect {effect!r}")
                effect = gen.send(result)
        except StopIteration as stop:
            return stop.value

    # -- outbound -------------------------------------------------------------

    async def request(
        self,
        sender: int,
        receiver: int,
        message: Message,
        query_id: Optional[int] = None,
        account: bool = True,
    ) -> Dispatch:
        """Round-trip rpc with the transport's statuses and accounting."""
        runtime = self.runtime
        if not runtime.is_online(receiver):
            runtime.observe(OP_REQUEST, sender, receiver, message, UNREACHABLE, False, query_id)
            return Dispatch(UNREACHABLE, None)
        if account:
            runtime.account(sender, receiver, message, query_id)
        self._rpc_counter += 1
        rpc_id = self._rpc_counter
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._rpc_futures[rpc_id] = future
        envelope = Envelope(sender, receiver, message, query_id, True, account)
        delivered = runtime.wire.send(receiver, runtime.codec.encode_request(envelope, rpc_id))
        if not delivered:
            # The wire lost the address after the bytes were spent: report a
            # drop (accounted), not unreachability (which is never charged).
            self._rpc_futures.pop(rpc_id, None)
            runtime.observe(OP_REQUEST, sender, receiver, message, DROPPED, account, query_id)
            return Dispatch(DROPPED, None)
        try:
            reply = await asyncio.wait_for(future, runtime.config.rpc_timeout)
        except asyncio.TimeoutError:
            self._rpc_futures.pop(rpc_id, None)
            # The sender-side timeout of a real gossip: indistinguishable
            # from a lost request, so the protocol sees DROPPED (it must
            # not assume the other side processed anything).
            runtime.observe(OP_REQUEST, sender, receiver, message, DROPPED, account, query_id)
            return Dispatch(DROPPED, None)
        runtime.observe(OP_REQUEST, sender, receiver, message, DELIVERED, account, query_id)
        return Dispatch(DELIVERED, reply)

    def send(
        self,
        sender: int,
        receiver: int,
        message: Message,
        query_id: Optional[int] = None,
        account: bool = True,
    ) -> str:
        """One-way, fire-and-forget send (synchronous: queue/socket put)."""
        runtime = self.runtime
        if not runtime.is_online(receiver):
            runtime.observe(OP_SEND, sender, receiver, message, UNREACHABLE, False, query_id)
            return UNREACHABLE
        if account:
            runtime.account(sender, receiver, message, query_id)
        envelope = Envelope(sender, receiver, message, query_id, False, account)
        if not runtime.wire.send(receiver, runtime.codec.encode_send(envelope)):
            runtime.observe(OP_SEND, sender, receiver, message, DROPPED, account, query_id)
            return DROPPED
        runtime.observe(OP_SEND, sender, receiver, message, DELIVERED, account, query_id)
        return DELIVERED

    # -- inbound --------------------------------------------------------------

    async def _inbox_loop(self) -> None:
        runtime = self.runtime
        inbox = runtime.wire.inbox(self.node_id)
        while True:
            frame = await inbox.get()
            try:
                decoded = runtime.codec.decode(runtime.codec.unframe(frame))
            except Exception:
                # The UDP socket is open to anything on 127.0.0.1: a garbage
                # or unknown-tag frame must not kill the reader (which would
                # silently partition this node for the rest of the run).
                logger.warning(
                    "node %d dropped undecodable %d-byte frame",
                    self.node_id, len(frame), exc_info=True,
                )
                continue
            if decoded["op"] == "rep":
                future = self._rpc_futures.pop(decoded["rpc"], None)
                if future is not None and not future.done():
                    future.set_result(decoded["m"])
                continue
            # One task per inbound frame: a handler may issue nested
            # round-trips back at the node that is currently awaiting us
            # (digest integration, the eager alpha split), so serial
            # processing would deadlock two mutually-requesting nodes.
            task = asyncio.create_task(self._handle_inbound(decoded))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
            task.add_done_callback(_report_task_failure)

    async def _handle_inbound(self, decoded: Dict[str, Any]) -> None:
        runtime = self.runtime
        envelope: Envelope = decoded["envelope"]
        reply = await self.drive(self.node.handle_message_effects(envelope))
        if decoded["op"] != "req":
            return
        if reply is not None:
            # Reply legs are accounted and observed at the replier, the side
            # that actually spends the uplink bytes; the requester's timeout
            # discarding a late reply does not un-spend them.
            if envelope.account:
                runtime.account(self.node_id, envelope.sender, reply, envelope.query_id)
            runtime.observe(
                OP_REPLY, self.node_id, envelope.sender, reply, DELIVERED,
                envelope.account, envelope.query_id,
            )
        runtime.wire.send(
            envelope.sender, runtime.codec.encode_reply(decoded["rpc"], DELIVERED, reply)
        )

    # -- timers ---------------------------------------------------------------

    def _pause(self, interval: float) -> float:
        jitter = self.runtime.config.jitter
        if jitter <= 0.0:
            return interval
        return interval * self._timer_rng.uniform(1.0 - jitter, 1.0 + jitter)

    async def _gossip_loop(self) -> None:
        runtime = self.runtime
        interval = runtime.config.gossip_interval
        # Random phase offset: engine cycles fire every node in lockstep,
        # real deployments drift apart immediately.
        await asyncio.sleep(self._timer_rng.uniform(0.0, interval))
        while runtime.running:
            if runtime.is_online(self.node_id):
                await self.drive(self.node.lazy_round_effects())
            await asyncio.sleep(self._pause(interval))

    async def _eager_loop(self) -> None:
        runtime = self.runtime
        interval = runtime.config.eager_interval
        await asyncio.sleep(self._timer_rng.uniform(0.0, interval))
        while runtime.running:
            if runtime.is_online(self.node_id):
                self.tick += 1
                if self.node.has_active_queries():
                    await self.drive(self.node.eager_round_effects(self.tick))
                # Fold the partial results this tick delivered into snapshots
                # (the engine does this at each eager cycle boundary).
                for session in self.node.sessions.values():
                    session.close_cycle(self.tick)
            await asyncio.sleep(self._pause(interval))

    # -- queries --------------------------------------------------------------

    def issue(self, query: Query) -> QuerySession:
        session = self.node.issue_query(query, cycle=self.tick)
        session.close_cycle(self.tick)
        return session


# ----------------------------------------------------------------- runtime


class ServiceRuntime:
    """A full P3Q deployment as one asyncio service per node.

    Wraps a built (and typically warm-started) simulation: the runtime
    reuses its nodes, protocol objects, network liveness table and stats
    collector, but replaces the cycle engine with per-node timers and the
    direct method-call wire with serialized frames.
    """

    def __init__(
        self,
        simulation: P3QSimulation,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.simulation = simulation
        self.config = config or ServiceConfig()
        self.codec = WireCodec()
        self.wire = make_wire(self.config.wire)
        self.trace = ServiceTrace()
        self._observers = [self.trace.record]
        self.services: Dict[int, NodeService] = {}
        self._started = False
        #: Timers initiate new rounds only while True; cleared by
        #: :meth:`stop` so the runtime quiesces instead of cancelling
        #: half-finished exchanges (which would break byte conservation).
        self.running = False

    # -- shared plumbing ------------------------------------------------------

    def is_online(self, node_id: int) -> bool:
        """The runtime's failure-detector oracle (the shared liveness table)."""
        return self.simulation.network.is_online(node_id)

    def account(
        self, sender: int, receiver: int, message: Message, query_id: Optional[int]
    ) -> None:
        """Transport-identical byte accounting into the shared stats collector."""
        kind = message.kind
        if kind is None or not message.accountable:
            return
        self.simulation.network.account(
            sender, receiver, kind, total_bytes(message), query_id=query_id
        )

    def observe(
        self,
        op: str,
        sender: int,
        receiver: int,
        message: Message,
        status: str,
        accounted: bool,
        query_id: Optional[int],
    ) -> None:
        event = WireEvent(op, sender, receiver, message, status, accounted, query_id)
        for observer in self._observers:
            observer(event)

    def add_observer(self, observer) -> None:
        self._observers.append(observer)

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            raise RuntimeError("service runtime already started")
        node_ids = list(self.simulation.nodes)
        await self.wire.start(node_ids)
        self.running = True
        for node_id in node_ids:
            service = NodeService(self.simulation.nodes[node_id], self)
            self.services[node_id] = service
            service.start()
        self._started = True

    async def stop(self) -> None:
        """Quiesce, then tear down.

        Rounds in progress run to completion (cancelling one between its
        accounting and its WireEvent would break byte conservation), then
        in-flight inbound handlers drain, pending partial results are
        folded into a final snapshot per session, and the inbox readers --
        pure readers, safe to cancel -- go away.
        """
        self.running = False
        services = list(self.services.values())
        for service in services:
            await service.join_timers()
        # A handler drained late in the pass can send a frame to a service
        # drained earlier, spawning a fresh handler there; sweep until one
        # full pass finds every service idle -- no running handler and no
        # queued frame -- so the wire is quiescent (with the timers stopped,
        # handlers only beget finitely many more).  The sleep(0) lets inbox
        # readers turn queued frames into handlers the next pass can join.
        while True:
            for service in services:
                await service.join_handlers()
            if all(service.idle() for service in services):
                break
            await asyncio.sleep(0)
        for service in services:
            node = service.node
            if node.sessions:
                service.tick += 1
                for session in node.sessions.values():
                    session.close_cycle(service.tick)
        for service in services:
            await service.close()
        await self.wire.stop()
        self.services = {}
        self._started = False

    # -- driving --------------------------------------------------------------

    def issue_query(self, query: Query) -> QuerySession:
        return self.services[query.querier].issue(query)

    async def run_queries(
        self,
        queries: List[Query],
        deadline: Optional[float] = None,
    ) -> Dict[int, QuerySession]:
        """Issue queries and wait until each completes or hits its deadline.

        The per-query deadline replaces the engine's eager cycle cutoff: an
        incomplete session is returned with whatever coverage it reached.
        """
        deadline = deadline if deadline is not None else self.config.query_deadline
        sessions = {q.query_id: self.issue_query(q) for q in queries}
        loop = asyncio.get_running_loop()
        cutoff = loop.time() + deadline
        poll = min(0.02, self.config.eager_interval)
        while loop.time() < cutoff:
            if all(session.closed for session in sessions.values()):
                break
            await asyncio.sleep(poll)
        return sessions
