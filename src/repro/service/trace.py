"""Recording and auditing service-mode wire traffic.

A live service run emits the same :class:`~repro.simulator.transport.WireEvent`
stream the simulator's transports emit, so the simtest invariant checkers
audit a service run without knowing it was not a simulation.
:class:`ServiceTrace` accumulates the events in memory (and can persist
them as JSON Lines through the wire codec -- the CI smoke job uploads the
file when a run fails); :func:`check_trace` replays a trace through the
checkers that make sense without a fuzz spec: byte conservation, view
bounds, replica freshness and the query lifecycle rules.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, List, Optional

from ..simtest.invariants import (
    ByteConservationChecker,
    InvariantChecker,
    QueryLifecycleChecker,
    ReplicaFreshnessChecker,
    ViewBoundsChecker,
)
from ..simulator.transport import WireEvent
from .codec import WireCodec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..p3q.protocol import P3QSimulation


class ServiceTrace:
    """In-memory WireEvent recording with JSON Lines persistence."""

    def __init__(self) -> None:
        self.events: List[WireEvent] = []
        self._codec = WireCodec()

    def record(self, event: WireEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    # -- persistence ----------------------------------------------------------

    def dump(self, path: str) -> int:
        """Write one JSON line per event; returns the number written."""
        codec = self._codec
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(
                    json.dumps(
                        {
                            "op": event.op,
                            "s": event.sender,
                            "r": event.receiver,
                            "st": event.status,
                            "ac": event.accounted,
                            "q": event.query_id,
                            "m": codec.encode_message(event.message),
                        },
                        separators=(",", ":"),
                    )
                )
                handle.write("\n")
        return len(self.events)

    @classmethod
    def load(cls, path: str) -> "ServiceTrace":
        trace = cls()
        codec = trace._codec
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                trace.events.append(
                    WireEvent(
                        op=obj["op"],
                        sender=obj["s"],
                        receiver=obj["r"],
                        message=codec.decode_message(obj["m"]),
                        status=obj["st"],
                        accounted=obj["ac"],
                        query_id=obj["q"],
                    )
                )
        return trace


#: The spec-free checker set a recorded service trace is audited with.
TRACE_CHECKERS = (
    ByteConservationChecker,
    ViewBoundsChecker,
    ReplicaFreshnessChecker,
    QueryLifecycleChecker,
)


def check_trace(
    events: Iterable[WireEvent],
    simulation: "P3QSimulation",
    checkers: Optional[List[InvariantChecker]] = None,
) -> List[str]:
    """Audit a recorded run; returns the names of the checkers that passed.

    Binds each checker to the live simulation the service ran over (the
    byte-conservation checker compares against its stats collector, the
    view/replica checkers walk its nodes), replays every recorded event,
    then fires the end-of-run hooks.  Raises
    :class:`~repro.simtest.invariants.InvariantViolation` on the first
    failure, exactly like a simtest run.
    """
    from ..simtest.runner import RunContext

    active = checkers if checkers is not None else [cls() for cls in TRACE_CHECKERS]
    ctx = RunContext(spec=None, simulation=simulation)
    for checker in active:
        checker.bind(ctx)
    for event in events:
        for checker in active:
            checker.on_wire_event(event)
    for checker in active:
        checker.on_finish()
    return [checker.name for checker in active]
