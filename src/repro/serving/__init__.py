"""Query-serving benchmark subsystem.

Layers a serving harness on the cycle simulator: a workload catalogue
(:mod:`~repro.serving.workloads`), a driver injecting queries at
configurable concurrency and arrival rates (:mod:`~repro.serving.driver`),
and the resource plumbing shared with the perf harness
(:mod:`~repro.serving.resources`).  ``python -m benchmarks.perf --serving``
sweeps the catalogue across concurrency levels into the BENCH report.
"""

from .driver import (
    ABANDONED,
    COMPLETED,
    REJECTED,
    QueryOutcome,
    ServingConfig,
    ServingResult,
    percentile,
    run_serving,
)
from .resources import ResourceEnvelope, ResourceProbe, cpu_seconds, peak_rss_bytes
from .workloads import (
    WORKLOADS,
    ServingWorkload,
    build_workload,
    hot_topic_workload,
    long_tail_workload,
    mixed_workload,
)

__all__ = [
    "ABANDONED",
    "COMPLETED",
    "REJECTED",
    "QueryOutcome",
    "ServingConfig",
    "ServingResult",
    "percentile",
    "run_serving",
    "ResourceEnvelope",
    "ResourceProbe",
    "cpu_seconds",
    "peak_rss_bytes",
    "WORKLOADS",
    "ServingWorkload",
    "build_workload",
    "hot_topic_workload",
    "long_tail_workload",
    "mixed_workload",
]
