"""``python -m repro serving``: one query-serving run over a warm simulation.

A thin command-line front on :func:`repro.serving.driver.run_serving`: build
a catalogue workload (``hot-topic`` / ``long-tail`` / ``mixed``) over an
experiment-scale dataset, drive it through a converged simulation and print
the serving measurements (QPS, latency percentiles, outcome counts).  The
full workload x concurrency sweep lives in ``python -m repro perf
--serving``; this entry point is for looking at a single cell quickly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..experiments.runner import converged_simulation, prepare_workload
from ..experiments.scenarios import ExperimentScale
from .driver import ServingConfig, run_serving
from .workloads import WORKLOADS, build_workload


def build_parser() -> argparse.ArgumentParser:
    from ..cli import add_common_options

    parser = argparse.ArgumentParser(
        prog="repro serving",
        description="Drive one query-serving workload through a converged simulation.",
    )
    parser.add_argument(
        "--workload",
        choices=sorted(WORKLOADS),
        default="mixed",
        help="catalogue workload shape (default: mixed)",
    )
    parser.add_argument(
        "--scale",
        choices=["tiny", "small"],
        default="tiny",
        help="dataset scale (default: tiny)",
    )
    parser.add_argument(
        "--queries", type=int, default=12, metavar="N",
        help="number of queries in the workload (default: 12)",
    )
    parser.add_argument(
        "--storage", type=int, default=3, metavar="C",
        help="profiles stored per node (default: 3)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=8, metavar="N",
        help="maximum simultaneously open sessions (default: 8)",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=200, metavar="N",
        help="hard stop for the driver (default: 200)",
    )
    add_common_options(parser, workers=False, seed_default=None)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.queries < 1:
        parser.error("--queries must be positive")

    scale = ExperimentScale.tiny() if args.scale == "tiny" else ExperimentScale.small()
    if args.seed is not None:
        from dataclasses import replace

        scale = replace(scale, seed=args.seed)
    prepared = prepare_workload(scale)
    simulation = converged_simulation(prepared, storage=args.storage)
    workload = build_workload(
        args.workload, prepared.dataset, args.queries, seed=scale.seed
    )
    config = ServingConfig(concurrency=args.concurrency, max_cycles=args.max_cycles)
    result = run_serving(simulation, workload, config)

    print(f"serving run: workload={args.workload} scale={args.scale} "
          f"storage={args.storage} concurrency={args.concurrency}")
    for key, value in sorted(result.as_dict().items()):
        if isinstance(value, float):
            print(f"  {key}: {value:.4f}")
        else:
            print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the unified CLI
    sys.exit(main())
