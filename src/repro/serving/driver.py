"""The serving driver: inject a workload, settle outcomes, measure.

The driver turns the cycle simulator into a closed-loop query server: each
driver cycle it applies any scheduled profile changes, admits queries from
the workload's stream up to the configured concurrency and arrival rate,
runs one eager cycle, and settles the open sessions -- a session that
closed is **completed** (its latency is
:attr:`~repro.p3q.query.QuerySession.latency_cycles`), one older than the
cutoff is **abandoned** with its coverage at that point, and a query whose
querier was offline at admission is **rejected**.

The measurement layer (:class:`ServingResult`) reports QPS per cycle and
per wall-second, nearest-rank latency percentiles over the completed
queries, coverage-at-cutoff over the abandoned ones, and the resource
envelope (CPU time, wall time, peak RSS) of the run.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..p3q.protocol import P3QSimulation
from ..p3q.query import QuerySession
from .resources import ResourceEnvelope, ResourceProbe
from .workloads import ServingWorkload

#: Outcome states a query can settle into.
COMPLETED = "completed"
ABANDONED = "abandoned"
REJECTED = "rejected"


@dataclass(frozen=True)
class ServingConfig:
    """Injection and settlement knobs of one serving run."""

    #: Maximum simultaneously open sessions (admission stalls above this).
    concurrency: int = 8
    #: Queries admitted per driver cycle (subject to free concurrency slots).
    arrivals_per_cycle: int = 4
    #: Hard stop: the driver never runs more cycles than this.
    max_cycles: int = 200
    #: A session still open this many cycles after issue is abandoned.
    cutoff_cycles: int = 25
    #: Quality threshold reported over abandoned queries: the fraction whose
    #: coverage reached this value is still a served-at-degraded-quality
    #: answer, not a loss.
    coverage_cutoff: float = 0.9

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("concurrency must be positive")
        if self.arrivals_per_cycle < 1:
            raise ValueError("arrivals_per_cycle must be positive")
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be positive")
        if self.cutoff_cycles < 1:
            raise ValueError("cutoff_cycles must be positive")
        if not 0.0 <= self.coverage_cutoff <= 1.0:
            raise ValueError("coverage_cutoff must be in [0, 1]")


@dataclass(frozen=True)
class QueryOutcome:
    """How one injected query settled."""

    query_id: int
    querier: int
    issued_cycle: int
    status: str
    #: Issue-to-close latency in eager cycles (completed queries only).
    latency_cycles: Optional[int]
    #: Coverage at settlement (1.0 for completed, partial for abandoned,
    #: 0.0 for rejected).
    coverage: float


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (inclusive); 0.0 for an empty sample."""
    if not values:
        return 0.0
    if not 0.0 < pct <= 100.0:
        raise ValueError("pct must be in (0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


@dataclass
class ServingResult:
    """Outcomes plus the measured envelope of one serving run."""

    workload: str
    config: ServingConfig
    outcomes: List[QueryOutcome]
    #: Driver cycles actually run (eager cycles executed by this run).
    cycles: int
    envelope: ResourceEnvelope
    #: Messages sent during the run (every kind, lazy-layer refreshes
    #: included -- the cost of serving includes the gossip keeping the
    #: overlay alive).
    messages: int = 0
    #: Profile-change days applied while queries were in flight.
    change_days_applied: int = 0
    _by_status: Dict[str, List[QueryOutcome]] = field(default_factory=dict, repr=False)

    def _status(self, status: str) -> List[QueryOutcome]:
        cached = self._by_status.get(status)
        if cached is None:
            cached = [o for o in self.outcomes if o.status == status]
            self._by_status[status] = cached
        return cached

    # -- throughput -----------------------------------------------------------

    @property
    def completed(self) -> int:
        return len(self._status(COMPLETED))

    @property
    def abandoned(self) -> int:
        return len(self._status(ABANDONED))

    @property
    def rejected(self) -> int:
        return len(self._status(REJECTED))

    @property
    def qps_cycle(self) -> float:
        """Completed queries per eager cycle."""
        return self.completed / self.cycles if self.cycles else 0.0

    @property
    def qps_wall(self) -> float:
        """Completed queries per wall-clock second."""
        wall = self.envelope.wall_seconds
        return self.completed / wall if wall > 0 else 0.0

    # -- latency --------------------------------------------------------------

    def latencies(self) -> List[int]:
        """Issue-to-close latencies of the completed queries, in cycles."""
        return [
            o.latency_cycles
            for o in self._status(COMPLETED)
            if o.latency_cycles is not None
        ]

    def latency_percentile(self, pct: float) -> float:
        return percentile(self.latencies(), pct)

    # -- quality --------------------------------------------------------------

    def abandoned_coverages(self) -> List[float]:
        return [o.coverage for o in self._status(ABANDONED)]

    @property
    def coverage_at_cutoff(self) -> float:
        """Mean coverage the abandoned queries had reached (1.0 when none)."""
        coverages = self.abandoned_coverages()
        if not coverages:
            return 1.0
        return sum(coverages) / len(coverages)

    @property
    def abandoned_at_quality_fraction(self) -> float:
        """Fraction of abandoned queries at or above the coverage cutoff."""
        coverages = self.abandoned_coverages()
        if not coverages:
            return 1.0
        met = sum(1 for c in coverages if c >= self.config.coverage_cutoff)
        return met / len(coverages)

    # -- reporting ------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """The flat metrics dictionary the BENCH serving section stores."""
        out: Dict[str, object] = {
            "workload": self.workload,
            "concurrency": self.config.concurrency,
            "arrivals_per_cycle": self.config.arrivals_per_cycle,
            "num_queries": len(self.outcomes),
            "completed": self.completed,
            "abandoned": self.abandoned,
            "rejected": self.rejected,
            "cycles": self.cycles,
            "qps_cycle": self.qps_cycle,
            "qps_wall": self.qps_wall,
            "latency_p50": self.latency_percentile(50),
            "latency_p95": self.latency_percentile(95),
            "latency_p99": self.latency_percentile(99),
            "coverage_cutoff": self.config.coverage_cutoff,
            "coverage_at_cutoff": self.coverage_at_cutoff,
            "messages": self.messages,
            "messages_per_cycle": self.messages / self.cycles if self.cycles else 0.0,
            "change_days_applied": self.change_days_applied,
        }
        out.update(self.envelope.as_dict())
        return out


def run_serving(
    simulation: P3QSimulation,
    workload: ServingWorkload,
    config: Optional[ServingConfig] = None,
) -> ServingResult:
    """Drive one workload through a (converged) simulation and measure it.

    The simulation must have populated personal networks (warm-started or
    lazy-converged); the driver only runs eager cycles.  It returns once
    every query settled or ``config.max_cycles`` driver cycles elapsed --
    at the horizon, still-open sessions settle as abandoned and never
    admitted queries as rejected.
    """
    config = config or ServingConfig()
    pending = deque(workload.queries)
    open_sessions: Dict[int, QuerySession] = {}
    queriers: Dict[int, int] = {}
    outcomes: List[QueryOutcome] = []
    change_days_applied = 0
    messages_before = simulation.stats.total_messages()
    probe = ResourceProbe()

    def settle(session: QuerySession, status: str) -> None:
        outcomes.append(
            QueryOutcome(
                query_id=session.query.query_id,
                querier=session.query.querier,
                issued_cycle=session.issued_cycle,
                status=status,
                latency_cycles=session.latency_cycles if status == COMPLETED else None,
                coverage=session.coverage,
            )
        )

    cycles = 0
    while (pending or open_sessions) and cycles < config.max_cycles:
        change = workload.change_schedule.get(cycles)
        if change is not None:
            simulation.apply_profile_changes(change)
            change_days_applied += 1

        slots = config.concurrency - len(open_sessions)
        batch = []
        while pending and len(batch) < min(config.arrivals_per_cycle, slots):
            batch.append(pending.popleft())
        if batch:
            sessions = simulation.issue_queries(batch)
            for query in batch:
                session = sessions.get(query.query_id)
                if session is None:
                    # The querier was offline at admission: rejected, never
                    # entered the system.
                    outcomes.append(
                        QueryOutcome(
                            query_id=query.query_id,
                            querier=query.querier,
                            issued_cycle=simulation.eager_cycles_run,
                            status=REJECTED,
                            latency_cycles=None,
                            coverage=0.0,
                        )
                    )
                elif session.closed:
                    # The local replicas already covered the whole personal
                    # network: served at issue time (latency 0).
                    settle(session, COMPLETED)
                else:
                    open_sessions[query.query_id] = session
                    queriers[query.query_id] = query.querier

        simulation.run_eager(1, stop_when_idle=False)
        cycles += 1

        now = simulation.eager_cycles_run
        for query_id in list(open_sessions):
            session = open_sessions[query_id]
            if session.closed:
                settle(session, COMPLETED)
                del open_sessions[query_id]
            elif now - session.issued_cycle >= config.cutoff_cycles:
                settle(session, ABANDONED)
                del open_sessions[query_id]

    # Horizon exhausted: drain whatever is left so every query has an outcome.
    for session in open_sessions.values():
        settle(session, ABANDONED)
    for query in pending:
        outcomes.append(
            QueryOutcome(
                query_id=query.query_id,
                querier=query.querier,
                issued_cycle=simulation.eager_cycles_run,
                status=REJECTED,
                latency_cycles=None,
                coverage=0.0,
            )
        )

    envelope = probe.stop()
    return ServingResult(
        workload=workload.name,
        config=config,
        outcomes=outcomes,
        cycles=cycles,
        envelope=envelope,
        messages=simulation.stats.total_messages() - messages_before,
        change_days_applied=change_days_applied,
    )
