"""Process resource accounting shared by the serving and perf harnesses.

``peak_rss_bytes`` is the PR 7 plumbing the macro benchmarks already report
(moved here so the serving driver can reuse it without importing the
benchmark package from library code); ``cpu_seconds`` adds the CPU-time
side of the resource envelope.  Both are cumulative process-level counters,
so per-phase values are computed by differencing snapshots.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Dict, Optional


def peak_rss_bytes() -> Optional[int]:
    """The process's lifetime peak RSS in bytes (``None`` off-POSIX).

    ``ru_maxrss`` is a high-water mark: sampling it after a phase reports
    the cumulative peak *up to and including* that phase, so per-phase
    values are monotone and the last one is the run's true peak.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes.
    return rss if sys.platform == "darwin" else rss * 1024


def cpu_seconds() -> float:
    """Cumulative user+system CPU time of this process in seconds."""
    return time.process_time()


@dataclass
class ResourceEnvelope:
    """CPU time, wall time and peak RSS of one measured phase."""

    wall_seconds: float
    cpu_seconds: float
    #: Cumulative process peak RSS observed at the end of the phase
    #: (``None`` off-POSIX).
    peak_rss_bytes: Optional[int]

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "wall_seconds": round(self.wall_seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
        }
        if self.peak_rss_bytes is not None:
            out["peak_rss_bytes"] = self.peak_rss_bytes
        return out


class ResourceProbe:
    """Measure one phase: wall clock and CPU by difference, RSS by high-water.

    Usage::

        probe = ResourceProbe()
        ...  # the measured phase
        envelope = probe.stop()
    """

    def __init__(self) -> None:
        self._wall_start = time.perf_counter()
        self._cpu_start = cpu_seconds()

    def stop(self) -> ResourceEnvelope:
        return ResourceEnvelope(
            wall_seconds=time.perf_counter() - self._wall_start,
            cpu_seconds=cpu_seconds() - self._cpu_start,
            peak_rss_bytes=peak_rss_bytes(),
        )
