"""The serving workload catalogue.

Three query mixes stress the eager phase in different ways:

* **hot-topic** -- a flash crowd: many distinct queriers issue the *same*
  query (the tags of the globally most popular item) inside one injection
  window.  Every query fans out over a different personal network, so the
  load concentrates on the popular item's community.
* **long-tail** -- the paper's personalized workload: each sampled querier
  asks for a random item of her own profile, so the topic distribution
  follows the per-community item/tag popularity the synthetic generator
  built the profiles from.
* **mixed** -- long-tail queries interleaved with profile dynamics: a
  :class:`~repro.data.models.ChangeDay` is applied every ``change_every``
  cycles while queries are in flight, so sessions race digest invalidation
  and personal-network updates (the read/update interleaving a live system
  serves).

Workloads are deterministic in ``(dataset, seed)``; query ids are assigned
from ``query_id_base`` so several workloads can share one simulation's
session/stats namespace without collisions.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..data.dynamics import DynamicsConfig, ProfileDynamicsGenerator
from ..data.models import ChangeDay, Dataset
from ..data.queries import Query, QueryWorkloadGenerator

#: Maximum tags a hot-topic query carries (the paper's queries are short).
HOT_TOPIC_MAX_TAGS = 3


@dataclass(frozen=True)
class ServingWorkload:
    """An ordered query stream plus an optional update schedule."""

    name: str
    #: Queries in injection order (the driver admits from the front).
    queries: Tuple[Query, ...]
    #: cycle offset (from the driver's start) -> profile changes to apply
    #: before admitting that cycle's queries.
    change_schedule: Dict[int, ChangeDay] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)


def _sample_queriers(dataset: Dataset, count: int, rng: random.Random) -> List[int]:
    """``count`` distinct users with non-empty profiles (queries need tags)."""
    candidates = [uid for uid in dataset.user_ids if dataset.profile(uid).items]
    if not candidates:
        raise ValueError("dataset has no user with a non-empty profile")
    if count >= len(candidates):
        return list(candidates)
    return sorted(rng.sample(candidates, k=count))


def hot_topic_workload(
    dataset: Dataset,
    num_queries: int,
    seed: int = 17,
    query_id_base: int = 0,
) -> ServingWorkload:
    """A flash crowd on the most popular item's tags."""
    popularity = dataset.item_popularity()
    if not popularity:
        raise ValueError("dataset has no tagged item")
    hot_item = popularity.most_common(1)[0][0]
    tag_counts: Counter = Counter()
    for profile in dataset.profiles():
        tag_counts.update(profile.tags_for(hot_item))
    # Ties broken by tag id so the workload is deterministic in the dataset.
    hot_tags = tuple(
        tag
        for tag, _count in sorted(tag_counts.items(), key=lambda kv: (-kv[1], kv[0]))[
            :HOT_TOPIC_MAX_TAGS
        ]
    )
    rng = random.Random(seed)
    queriers = _sample_queriers(dataset, num_queries, rng)
    queries = tuple(
        Query(
            query_id=query_id_base + index,
            querier=uid,
            tags=hot_tags,
            source_item=hot_item,
        )
        for index, uid in enumerate(queriers)
    )
    return ServingWorkload(name="hot-topic", queries=queries)


def long_tail_workload(
    dataset: Dataset,
    num_queries: int,
    seed: int = 17,
    query_id_base: int = 0,
) -> ServingWorkload:
    """Personalized queries following the per-community topic distributions."""
    rng = random.Random(seed)
    generator = QueryWorkloadGenerator(dataset, seed=seed)
    queriers = _sample_queriers(dataset, num_queries, rng)
    queries: List[Query] = []
    for uid in queriers:
        query = generator.query_for(uid, query_id=query_id_base + len(queries))
        if query is not None:
            queries.append(query)
    return ServingWorkload(name="long-tail", queries=tuple(queries))


def mixed_workload(
    dataset: Dataset,
    num_queries: int,
    seed: int = 17,
    query_id_base: int = 0,
    change_every: int = 4,
    num_change_days: int = 3,
    change_fraction: float = 0.10,
) -> ServingWorkload:
    """Long-tail queries racing profile dynamics.

    Change days land at cycle offsets ``change_every, 2*change_every, ...``
    so the first injection window runs against stable profiles and later
    ones against freshly invalidated digests.
    """
    if change_every < 1:
        raise ValueError("change_every must be positive")
    base = long_tail_workload(
        dataset, num_queries, seed=seed, query_id_base=query_id_base
    )
    dynamics = ProfileDynamicsGenerator(
        dataset,
        DynamicsConfig(
            change_fraction=change_fraction,
            num_days=max(1, num_change_days),
            seed=seed,
        ),
    )
    schedule = {
        change_every * (day + 1): dynamics.generate_day(day)
        for day in range(max(1, num_change_days))
    }
    return ServingWorkload(
        name="mixed", queries=base.queries, change_schedule=schedule
    )


#: name -> builder with the (dataset, num_queries, seed, query_id_base)
#: signature.  The catalogue order is the sweep order in reports.
WORKLOADS: Dict[str, Callable[..., ServingWorkload]] = {
    "hot-topic": hot_topic_workload,
    "long-tail": long_tail_workload,
    "mixed": mixed_workload,
}


def build_workload(
    name: str,
    dataset: Dataset,
    num_queries: int,
    seed: int = 17,
    query_id_base: Optional[int] = None,
) -> ServingWorkload:
    """Build one catalogue workload by name."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown serving workload {name!r} (available: {', '.join(WORKLOADS)})"
        ) from None
    base = 0 if query_id_base is None else query_id_base
    return builder(dataset, num_queries, seed=seed, query_id_base=base)
