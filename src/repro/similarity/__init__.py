"""Profile similarity metrics and exact (offline) nearest-neighbour indexes.

All metrics score on interned profile views (dense action-id sets cached per
profile version) -- see :mod:`repro.data.interning` and
``docs/ARCHITECTURE.md`` for the design, and
``tests/test_similarity_interning.py`` for the equivalence guarantees.
"""

from .metrics import (
    SIMILARITY_METRICS,
    SimilarityFunction,
    common_actions,
    cosine_score,
    get_metric,
    item_overlap_score,
    jaccard_score,
    overlap_score,
    overlap_score_from_actions,
)
from .knn import IdealNetworkIndex, Neighbour, pairwise_overlap_counts

__all__ = [
    "SIMILARITY_METRICS",
    "IdealNetworkIndex",
    "Neighbour",
    "SimilarityFunction",
    "common_actions",
    "cosine_score",
    "get_metric",
    "item_overlap_score",
    "jaccard_score",
    "overlap_score",
    "overlap_score_from_actions",
    "pairwise_overlap_counts",
]
