"""Exact (offline) k-nearest-neighbour computation over tagging profiles.

The paper's convergence metric (Fig. 2, Fig. 10) compares the personal
network a node has discovered through gossip with the *ideal* personal
network computed offline "using the global information about all users'
profiles".  This module computes that ideal network.

A brute-force all-pairs intersection is O(|U|^2) profile intersections; to
keep paper-like scales reachable, the computation goes through an inverted
index from tagging action to users, so only user pairs that actually share
at least one action are ever scored (the score of every other pair is zero
and never qualifies as a positive-score neighbour).  The index is keyed by
*interned* action ids (:mod:`repro.data.interning`): hashing a small int per
posting instead of an ``(item, tag)`` tuple keeps the index build cheap at
paper scale.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..data.models import Dataset
from .metrics import SimilarityFunction, overlap_score


@dataclass(frozen=True)
class Neighbour:
    """A scored neighbour in an (ideal or discovered) personal network."""

    user_id: int
    score: float

    def __lt__(self, other: "Neighbour") -> bool:  # deterministic ordering
        return (self.score, -self.user_id) < (other.score, -other.user_id)


def pairwise_overlap_counts(dataset: Dataset) -> Dict[Tuple[int, int], int]:
    """Number of common tagging actions for every user pair that shares any.

    Keys are ``(min_id, max_id)`` pairs.  Pairs with zero common actions are
    absent.
    """
    action_to_users: Dict[int, List[int]] = defaultdict(list)
    for profile in dataset.profiles():
        user_id = profile.user_id
        for action_id in profile.action_ids:
            action_to_users[action_id].append(user_id)
    counts: Dict[Tuple[int, int], int] = defaultdict(int)
    for users in action_to_users.values():
        if len(users) < 2:
            continue
        users.sort()
        for i, ua in enumerate(users):
            for ub in users[i + 1:]:
                counts[(ua, ub)] += 1
    return dict(counts)


class IdealNetworkIndex:
    """Offline computation of every user's ideal personal network.

    ``size`` is the paper's parameter ``s``: the personal network keeps the
    ``s`` users with the highest *positive* similarity score.  Users with a
    zero score never qualify, so an ideal network can legitimately hold fewer
    than ``s`` neighbours.
    """

    def __init__(
        self,
        dataset: Dataset,
        size: int,
        metric: SimilarityFunction = overlap_score,
    ) -> None:
        if size <= 0:
            raise ValueError("personal network size must be positive")
        self.dataset = dataset
        self.size = size
        self.metric = metric
        self._networks: Dict[int, List[Neighbour]] = {}
        self._build()

    def _build(self) -> None:
        if self.metric is overlap_score:
            self._build_from_inverted_index()
        else:
            self._build_brute_force()

    def _build_from_inverted_index(self) -> None:
        counts = pairwise_overlap_counts(self.dataset)
        per_user: Dict[int, List[Neighbour]] = defaultdict(list)
        for (ua, ub), count in counts.items():
            per_user[ua].append(Neighbour(ub, float(count)))
            per_user[ub].append(Neighbour(ua, float(count)))
        for user_id in self.dataset.user_ids:
            neighbours = per_user.get(user_id, [])
            neighbours.sort(key=lambda n: (-n.score, n.user_id))
            self._networks[user_id] = neighbours[: self.size]

    def _build_brute_force(self) -> None:
        user_ids = self.dataset.user_ids
        for user_id in user_ids:
            profile = self.dataset.profile(user_id)
            scored = [
                Neighbour(other, self.metric(profile, self.dataset.profile(other)))
                for other in user_ids
                if other != user_id
            ]
            scored = [n for n in scored if n.score > 0]
            scored.sort(key=lambda n: (-n.score, n.user_id))
            self._networks[user_id] = scored[: self.size]

    # -- queries --------------------------------------------------------------

    def network_of(self, user_id: int) -> List[Neighbour]:
        """The ideal personal network of a user (descending score)."""
        return list(self._networks[user_id])

    def neighbour_ids(self, user_id: int) -> List[int]:
        return [n.user_id for n in self._networks[user_id]]

    def top_c_ids(self, user_id: int, c: int) -> List[int]:
        """The ``c`` highest-scored ideal neighbours (stored-profile set)."""
        return [n.user_id for n in self._networks[user_id][:c]]

    def score(self, user_id: int, other: int) -> float:
        for neighbour in self._networks[user_id]:
            if neighbour.user_id == other:
                return neighbour.score
        return 0.0

    def success_ratio(self, user_id: int, discovered_ids: Sequence[int]) -> float:
        """Fraction of the ideal network present in ``discovered_ids``.

        This is the paper's per-user convergence metric.  A user with an
        empty ideal network (no positive-score peer) trivially has ratio 1.
        """
        ideal = set(self.neighbour_ids(user_id))
        if not ideal:
            return 1.0
        discovered = set(discovered_ids)
        return len(ideal & discovered) / len(ideal)

    def average_success_ratio(self, discovered: Dict[int, Sequence[int]]) -> float:
        """Average success ratio over all users in the dataset (Fig. 2)."""
        ratios = [
            self.success_ratio(user_id, discovered.get(user_id, ()))
            for user_id in self.dataset.user_ids
        ]
        return sum(ratios) / len(ratios) if ratios else 1.0
