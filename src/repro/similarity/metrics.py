"""Similarity metrics between tagging profiles.

The paper's score between two users is the number of common tagging actions:

    Score_{u_i}(u_j) = |Profile(u_i) ∩ Profile(u_j)|
                     = |{(i, t) | Tagged_{u_i}(i, t) ∧ Tagged_{u_j}(i, t)}|

The score takes both topic (tag) and object (item) preferences into account.
P3Q itself is independent of the metric ("this distance is
application-specific"), so the module also provides Jaccard and cosine
variants that plug into the same protocol machinery.

Scoring is one of the two hottest paths of the simulator (the other is the
Bloom digest probe), so every metric runs on the *interned* profile views:
``UserProfile.action_ids`` / ``UserProfile.items`` are per-version cached
frozensets of small ints (see :mod:`repro.data.interning` and
``docs/ARCHITECTURE.md``), and each score is a single C-level set
intersection instead of a Python-loop over tuple sets.  The observable
scores are identical to the naive tuple-set definition; the equivalence is
property-tested in ``tests/test_similarity_interning.py``.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Callable, Dict, FrozenSet

from ..data.models import TaggingAction, UserProfile

#: A similarity function maps two profiles to a non-negative number where
#: larger means more similar.
SimilarityFunction = Callable[[UserProfile, UserProfile], float]


def common_actions(a: UserProfile, b: UserProfile) -> FrozenSet[TaggingAction]:
    """The intersection of two profiles' tagging-action sets."""
    return a.actions & b.actions


def overlap_score(a: UserProfile, b: UserProfile) -> float:
    """The paper's metric: number of common tagging actions."""
    return float(len(a.action_ids & b.action_ids))


def overlap_score_from_actions(
    local_actions: AbstractSet[TaggingAction],
    remote_actions: AbstractSet[TaggingAction],
) -> float:
    """Overlap computed from raw action sets.

    This is the form used during the lazy 3-step exchange where the remote
    side only sent the tagging actions for the *common items*; intersecting
    with the local actions yields exactly the same score as intersecting full
    profiles would.
    """
    if not isinstance(local_actions, (set, frozenset)):
        local_actions = set(local_actions)
    if not isinstance(remote_actions, (set, frozenset)):
        remote_actions = set(remote_actions)
    return float(len(local_actions & remote_actions))


def jaccard_score(a: UserProfile, b: UserProfile) -> float:
    """|A ∩ B| / |A ∪ B| over tagging actions (alternative metric)."""
    inter = len(a.action_ids & b.action_ids)
    union = len(a) + len(b) - inter
    return inter / union if union else 0.0


def cosine_score(a: UserProfile, b: UserProfile) -> float:
    """Cosine similarity over binary tagging-action vectors."""
    if len(a) == 0 or len(b) == 0:
        return 0.0
    inter = len(a.action_ids & b.action_ids)
    return inter / math.sqrt(len(a) * len(b))


def item_overlap_score(a: UserProfile, b: UserProfile) -> float:
    """Number of common *items* (the digest-level approximation)."""
    return float(len(a.items & b.items))


#: Registry of named metrics so experiments/configs can select one by name.
SIMILARITY_METRICS: Dict[str, SimilarityFunction] = {
    "overlap": overlap_score,
    "jaccard": jaccard_score,
    "cosine": cosine_score,
    "item_overlap": item_overlap_score,
}


def get_metric(name: str) -> SimilarityFunction:
    """Look a metric up by name, raising a helpful error for typos."""
    try:
        return SIMILARITY_METRICS[name]
    except KeyError:
        known = ", ".join(sorted(SIMILARITY_METRICS))
        raise KeyError(f"unknown similarity metric {name!r}; known metrics: {known}") from None
