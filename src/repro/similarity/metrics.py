"""Similarity metrics between tagging profiles.

The paper's score between two users is the number of common tagging actions:

    Score_{u_i}(u_j) = |Profile(u_i) ∩ Profile(u_j)|
                     = |{(i, t) | Tagged_{u_i}(i, t) ∧ Tagged_{u_j}(i, t)}|

The score takes both topic (tag) and object (item) preferences into account.
P3Q itself is independent of the metric ("this distance is
application-specific"), so the module also provides Jaccard and cosine
variants that plug into the same protocol machinery.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, Protocol, Set

from ..data.models import TaggingAction, UserProfile

#: A similarity function maps two profiles to a non-negative number where
#: larger means more similar.
SimilarityFunction = Callable[[UserProfile, UserProfile], float]


def common_actions(a: UserProfile, b: UserProfile) -> Set[TaggingAction]:
    """The intersection of two profiles' tagging-action sets."""
    actions_a = a.actions
    actions_b = b.actions
    if len(actions_a) > len(actions_b):
        actions_a, actions_b = actions_b, actions_a
    return {action for action in actions_a if action in actions_b}


def overlap_score(a: UserProfile, b: UserProfile) -> float:
    """The paper's metric: number of common tagging actions."""
    return float(len(common_actions(a, b)))


def overlap_score_from_actions(
    local_actions: FrozenSet[TaggingAction] | Set[TaggingAction],
    remote_actions: FrozenSet[TaggingAction] | Set[TaggingAction],
) -> float:
    """Overlap computed from raw action sets.

    This is the form used during the lazy 3-step exchange where the remote
    side only sent the tagging actions for the *common items*; intersecting
    with the local actions yields exactly the same score as intersecting full
    profiles would.
    """
    if len(local_actions) > len(remote_actions):
        local_actions, remote_actions = remote_actions, local_actions
    return float(sum(1 for action in local_actions if action in remote_actions))


def jaccard_score(a: UserProfile, b: UserProfile) -> float:
    """|A ∩ B| / |A ∪ B| over tagging actions (alternative metric)."""
    inter = len(common_actions(a, b))
    union = len(a) + len(b) - inter
    return inter / union if union else 0.0


def cosine_score(a: UserProfile, b: UserProfile) -> float:
    """Cosine similarity over binary tagging-action vectors."""
    if len(a) == 0 or len(b) == 0:
        return 0.0
    inter = len(common_actions(a, b))
    return inter / math.sqrt(len(a) * len(b))


def item_overlap_score(a: UserProfile, b: UserProfile) -> float:
    """Number of common *items* (the digest-level approximation)."""
    items_a = a.items
    items_b = b.items
    if len(items_a) > len(items_b):
        items_a, items_b = items_b, items_a
    return float(sum(1 for item in items_a if item in items_b))


#: Registry of named metrics so experiments/configs can select one by name.
SIMILARITY_METRICS: Dict[str, SimilarityFunction] = {
    "overlap": overlap_score,
    "jaccard": jaccard_score,
    "cosine": cosine_score,
    "item_overlap": item_overlap_score,
}


def get_metric(name: str) -> SimilarityFunction:
    """Look a metric up by name, raising a helpful error for typos."""
    try:
        return SIMILARITY_METRICS[name]
    except KeyError:
        known = ", ".join(sorted(SIMILARITY_METRICS))
        raise KeyError(f"unknown similarity metric {name!r}; known metrics: {known}") from None
