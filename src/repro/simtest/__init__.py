"""Deterministic simulation fuzzing with invariant checking.

``repro.simtest`` turns the reproduction's simulator into a property-based
testing target: a seeded :class:`ScenarioGenerator` samples random scenario
specs (network size, view sizes, alpha, churn schedule, loss rate, delay
cycles, profile-dynamics mix, query workload) as frozen dataclasses, a
registry of :class:`InvariantChecker` objects hooks the engine and transport
to assert cross-cutting system properties on every run, and a driver
(``python -m repro.simtest``) runs seeded batches, greedily shrinking any
failing spec to a minimal, replayable repro.

See ``docs/TESTING.md`` for where this sits in the test pyramid and how to
reproduce a failing fuzz seed.
"""

from .invariants import (
    REGISTRY,
    InvariantChecker,
    InvariantViolation,
    default_checkers,
)
from .runner import (
    CRASH,
    ZERO_CONDITION_EQUIVALENCE,
    RunContext,
    ScenarioResult,
    build_simulation,
    fingerprint,
    run_scenario,
)
from .shrink import TRANSFORMS, ShrinkResult, shrink
from .spec import (
    ChurnEvent,
    DynamicsSpec,
    GeneratorRanges,
    ScenarioGenerator,
    ScenarioSpec,
)

__all__ = [
    "CRASH",
    "REGISTRY",
    "TRANSFORMS",
    "ZERO_CONDITION_EQUIVALENCE",
    "ChurnEvent",
    "DynamicsSpec",
    "GeneratorRanges",
    "InvariantChecker",
    "InvariantViolation",
    "RunContext",
    "ScenarioGenerator",
    "ScenarioResult",
    "ScenarioSpec",
    "ShrinkResult",
    "build_simulation",
    "default_checkers",
    "fingerprint",
    "run_scenario",
    "shrink",
]
