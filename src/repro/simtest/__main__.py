"""``python -m repro.simtest`` -- deprecated shim for ``python -m repro simtest``."""

import sys
import warnings

from .cli import main

warnings.warn(
    "'python -m repro.simtest' is deprecated; use 'python -m repro simtest'",
    DeprecationWarning,
)
sys.exit(main())
