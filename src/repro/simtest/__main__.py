"""``python -m repro.simtest`` entry point."""

import sys

from .cli import main

sys.exit(main())
