"""Driver: run batches of seeded fuzz scenarios and report minimal repros.

Examples::

    python -m repro.simtest --seeds 50 --seed 0      # a fuzzing batch
    python -m repro.simtest --spec-json '{...}'      # replay one failing spec
    python -m repro.simtest --list-invariants
    python -m repro.simtest --self-check             # prove the alarm rings

Output is deliberately free of timings and absolute paths so that two runs
of the same batch are byte-identical -- determinism of the *driver* is part
of the subsystem's contract, not just determinism of the simulations.

On the first failing scenario the driver performs greedy spec shrinking
(:mod:`repro.simtest.shrink`) and prints the minimal spec as JSON together
with the exact shell command that replays it, then exits non-zero.

``--self-check`` breaks the production byte pricing on purpose (a mutated
sizer for digest messages), expects the byte-conservation invariant to catch
it, and fails loudly if the harness stays silent -- a fuzzing harness whose
alarm never rings is indistinguishable from a green one.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional

from .invariants import REGISTRY
from .runner import ScenarioResult, run_scenario
from .shrink import shrink
from .spec import GeneratorRanges, ScenarioGenerator, ScenarioSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-simtest",
        description="Deterministic simulation fuzzing with invariant checking.",
    )
    parser.add_argument(
        "--seeds", type=int, default=20, metavar="N",
        help="number of scenarios to generate and run (default: 20)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="master seed of the scenario generator (default: 0)",
    )
    parser.add_argument(
        "--spec-json", type=str, default=None, metavar="JSON",
        help="run exactly one scenario given as a spec JSON string",
    )
    parser.add_argument(
        "--spec", type=Path, default=None, metavar="FILE",
        help="run exactly one scenario given as a spec JSON file",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report the raw failing spec without minimising it",
    )
    parser.add_argument(
        "--max-shrink-runs", type=int, default=48, metavar="N",
        help="budget of candidate runs during shrinking (default: 48)",
    )
    parser.add_argument(
        "--max-users", type=int, default=None, metavar="N",
        help="cap generated scenarios at N users (the PR fuzz smoke runs "
        "capped; the nightly batch runs uncapped and owns large-N coverage)",
    )
    parser.add_argument(
        "--adversarial", action="store_true",
        help="generate with the adversarial-weighted profile: partitions, "
        "asymmetric links, free riders, crash churn and community churn are "
        "sampled far more often (the nightly hostile-conditions batch)",
    )
    parser.add_argument(
        "--failure-artifact", type=Path, default=None, metavar="FILE",
        help="on failure, also write the minimal (shrunk) spec JSON to FILE "
        "so CI can upload it as a diagnosable artifact",
    )
    parser.add_argument(
        "--list-invariants", action="store_true",
        help="list the registered invariants and exit",
    )
    parser.add_argument(
        "--self-check", action="store_true",
        help="break the byte pricing on purpose and verify the harness catches it",
    )
    return parser


def _report_failure(result: ScenarioResult, args: argparse.Namespace) -> None:
    """Print the violation, shrink the spec and emit the minimal repro."""
    spec = result.spec
    print(f"violation: {result.violation}")
    if args.no_shrink:
        minimal = spec
        print("shrinking disabled (--no-shrink); raw failing spec:")
    else:
        print(f"shrinking (budget {args.max_shrink_runs} runs)...")

        def on_step(name: str, accepted: bool, runs: int) -> None:
            if accepted:
                print(f"  kept: {name} (run {runs})")

        shrunk = shrink(
            spec,
            result.invariant,
            max_runs=args.max_shrink_runs,
            on_step=on_step,
        )
        minimal = shrunk.spec
        print(
            f"minimal failing spec after {shrunk.runs} runs "
            f"(still violates {shrunk.invariant}):"
        )
        print(f"  {shrunk.result.violation}")
    print(minimal.to_json(indent=2))
    print("reproduce with:")
    print(f"  {minimal.repro_command()}")
    if args.failure_artifact is not None:
        args.failure_artifact.write_text(minimal.to_json(indent=2) + "\n", encoding="utf-8")
        print(f"minimal spec written to {args.failure_artifact}")


def _generator(args: argparse.Namespace) -> ScenarioGenerator:
    ranges = GeneratorRanges.adversarial() if args.adversarial else GeneratorRanges()
    if args.max_users is not None:
        ranges = ranges.capped(args.max_users)
    return ScenarioGenerator(args.seed, ranges)


def _run_batch(args: argparse.Namespace) -> int:
    generator = _generator(args)
    failures = 0
    run_count = 0
    for index in range(args.seeds):
        spec = generator.spec(index)
        result = run_scenario(spec)
        run_count += 1
        status = "ok  " if result.ok else "FAIL"
        print(f"[{index:3d}] {status} {spec.describe()}")
        if not result.ok:
            failures += 1
            _report_failure(result, args)
            break
    print(
        f"{run_count} scenario(s) run, {failures} failure(s); "
        f"invariants: {', '.join(sorted(REGISTRY))}"
    )
    return 1 if failures else 0


def _run_single(spec: ScenarioSpec, args: argparse.Namespace) -> int:
    result = run_scenario(spec)
    status = "ok  " if result.ok else "FAIL"
    print(f"[spec] {status} {spec.describe()}")
    if result.ok:
        print(f"invariants checked: {', '.join(result.checked)}")
        return 0
    _report_failure(result, args)
    return 1


@contextmanager
def broken_byte_pricing() -> Iterator[None]:
    """Deliberately corrupt the production pricing of digest messages.

    Used by ``--self-check`` (and the test suite) to prove the
    byte-conservation invariant actually fires: while active, every
    ``DigestAdvertisement`` is priced at a flat 7 bytes instead of
    ``num_digests * (DIGEST_BYTES + USER_ID_BYTES)``.
    """
    from ..gossip import sizes
    from ..simulator.transport import DigestAdvertisement

    original = sizes._MESSAGE_SIZERS[DigestAdvertisement]
    sizes._MESSAGE_SIZERS[DigestAdvertisement] = lambda m: 7
    try:
        yield
    finally:
        sizes._MESSAGE_SIZERS[DigestAdvertisement] = original


def _self_check(args: argparse.Namespace) -> int:
    print("self-check: corrupting DigestAdvertisement pricing (flat 7 bytes)")
    generator = _generator(args)
    with broken_byte_pricing():
        for index in range(args.seeds):
            spec = generator.spec(index)
            result = run_scenario(spec)
            if result.ok:
                continue
            if result.invariant != "byte-conservation":
                print(
                    f"self-check FAILED: scenario {index} violated "
                    f"{result.invariant!r} before byte-conservation could fire"
                )
                return 1
            print(f"[{index:3d}] caught: {result.violation}")
            _report_failure(result, args)
            print("self-check passed: the corrupted pricing was caught and shrunk")
            return 0
    print(
        f"self-check FAILED: {args.seeds} scenario(s) ran clean over corrupted "
        "byte pricing -- the byte-conservation invariant is not watching"
    )
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_invariants:
        for name, cls in sorted(REGISTRY.items()):
            summary = (cls.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<22} {summary}")
        print(f"{'zero-condition-equivalence':<22} checked by the runner on zero-rate stochastic transports")
        return 0

    if args.seeds < 1:
        parser.error("--seeds must be positive")
    if args.max_users is not None and args.max_users < 8:
        parser.error("--max-users must be at least 8")
    if args.spec_json is not None and args.spec is not None:
        parser.error("--spec-json and --spec are mutually exclusive")

    if args.self_check:
        return _self_check(args)

    if args.spec_json is not None:
        return _run_single(ScenarioSpec.from_json(args.spec_json), args)
    if args.spec is not None:
        return _run_single(ScenarioSpec.from_json(args.spec.read_text(encoding="utf-8")), args)

    return _run_batch(args)


if __name__ == "__main__":  # pragma: no cover - exercised through main() in tests
    sys.exit(main())
