"""Cross-cutting invariants checked during a fuzzed simulation.

Each :class:`InvariantChecker` watches one system-wide property across *any*
composition of churn, loss, latency, profile dynamics and query workload.
Checkers are registered in :data:`REGISTRY` and instantiated per run by
:func:`default_checkers`; the runner feeds them

* every transport :class:`~repro.simulator.transport.WireEvent` (message
  delivery, all legs and statuses);
* every engine cycle boundary (lazy and eager);
* every eager cycle's query snapshots;
* one final pass when the scenario ends.

A violated invariant raises :class:`InvariantViolation` immediately -- the
run is already broken, finishing it only blurs the evidence.  The exception
carries the invariant's registry name so the shrinker can check that a
simplified scenario still fails *the same way*.

The byte-accounting checker deliberately re-derives the paper's cost model
(Section 3.3.2 constants) instead of calling
:func:`repro.gossip.sizes.total_bytes`: the whole point is an *independent*
pricing of the observed wire traffic, so a regression in the production
sizers -- the kind injected by ``python -m repro.simtest --self-check`` --
shows up as a disagreement instead of being trusted twice.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple, Type

from ..simulator.transport import (
    DEFERRED,
    DELIVERED,
    OP_DRAIN,
    OP_REQUEST,
    OP_SEND,
    REPLY_DROPPED,
    CommonItemsReply,
    CommonItemsRequest,
    DigestAdvertisement,
    FullProfilePush,
    FullProfileRequest,
    Message,
    QueryForward,
    QueryResult,
    RemainingReturn,
    VIEW_RANDOM,
    WireEvent,
)
from ..simulator.stats import (
    KIND_COMMON_ITEMS,
    KIND_DIGESTS,
    KIND_FULL_PROFILES,
    KIND_PARTIAL_RESULT,
    KIND_RANDOM_VIEW,
    KIND_REMAINING_FORWARD,
    KIND_REMAINING_RETURN,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import RunContext
    from .spec import ScenarioSpec


class InvariantViolation(AssertionError):
    """A system-wide property failed during a fuzzed run."""

    def __init__(self, invariant: str, detail: str) -> None:
        super().__init__(f"[{invariant}] {detail}")
        self.invariant = invariant
        self.detail = detail


class InvariantChecker:
    """Base of all checkers; every hook is optional."""

    #: Registry name (stable: reports, shrinking and CLI filtering use it).
    name = "base"

    def __init__(self) -> None:
        self.ctx: Optional["RunContext"] = None

    @classmethod
    def applies(cls, spec: "ScenarioSpec") -> bool:
        """Whether this invariant is meaningful for the given scenario."""
        return True

    def bind(self, ctx: "RunContext") -> None:
        self.ctx = ctx

    def fail(self, detail: str) -> None:
        raise InvariantViolation(self.name, detail)

    # -- hooks ----------------------------------------------------------------

    def on_wire_event(self, event: WireEvent) -> None:
        pass

    def on_cycle_end(self, phase: str, cycle: int) -> None:
        pass

    def on_eager_cycle(self, cycle: int, snapshots: Dict[int, "object"]) -> None:
        pass

    def on_finish(self) -> None:
        pass


#: name -> checker class.
REGISTRY: Dict[str, Type[InvariantChecker]] = {}


def register(cls: Type[InvariantChecker]) -> Type[InvariantChecker]:
    if cls.name in REGISTRY:
        raise ValueError(f"duplicate invariant name {cls.name!r}")
    REGISTRY[cls.name] = cls
    return cls


def default_checkers(spec: "ScenarioSpec") -> List[InvariantChecker]:
    """Fresh instances of every registered checker that applies to ``spec``."""
    return [cls() for cls in REGISTRY.values() if cls.applies(spec)]


# ------------------------------------------------------- reference cost model

#: The paper's Section 3.3.2 constants, restated independently of
#: ``repro.gossip.sizes`` (see the module docstring for why).
_REF_USER_ID = 4
_REF_ITEM_ID = 16
_REF_TAG = 16
_REF_SCORE = 4
_REF_ACTION = _REF_ITEM_ID + _REF_TAG + _REF_USER_ID
_REF_DIGEST = 20_000 // 8


def reference_kind(message: Message) -> Optional[str]:
    """The traffic kind a message is recorded under (``None`` = not charged)."""
    mtype = type(message)
    if mtype is DigestAdvertisement:
        return KIND_RANDOM_VIEW if message.view == VIEW_RANDOM else KIND_DIGESTS
    if mtype is CommonItemsReply:
        return KIND_COMMON_ITEMS if message.actions is not None else None
    if mtype is FullProfilePush:
        return KIND_FULL_PROFILES if message.profile is not None else None
    if mtype is QueryForward:
        return KIND_REMAINING_FORWARD
    if mtype is RemainingReturn:
        return KIND_REMAINING_RETURN
    if mtype is QueryResult:
        return KIND_PARTIAL_RESULT
    if mtype in (CommonItemsRequest, FullProfileRequest):
        return None
    raise InvariantViolation(
        "byte-conservation", f"message type {mtype.__name__} has no reference price"
    )


def reference_price(message: Message) -> int:
    """Independent wire price of one message under the paper's cost model."""
    mtype = type(message)
    if mtype is DigestAdvertisement:
        return len(message.digests) * (_REF_DIGEST + _REF_USER_ID)
    if mtype is CommonItemsReply:
        return 0 if message.actions is None else len(message.actions) * _REF_ACTION
    if mtype is FullProfilePush:
        return 0 if message.profile is None else len(message.profile) * _REF_ACTION
    if mtype in (QueryForward, RemainingReturn):
        return len(message.remaining) * _REF_USER_ID
    if mtype is QueryResult:
        partial = message.partial
        return len(partial.scores) * (_REF_ITEM_ID + _REF_SCORE) + len(
            partial.contributors
        ) * _REF_USER_ID
    return 0


# ------------------------------------------------------------------- checkers


@register
class ByteConservationChecker(InvariantChecker):
    """Transport byte accounting conserves the independently-priced traffic.

    Every *accounted* wire event (request legs, reply legs, one-way sends --
    at send time, exactly like the production accounting; lost messages still
    cost their sender) is priced by the reference model above.  At every
    cycle boundary and at the end of the run the
    :class:`~repro.simulator.stats.StatsCollector` totals must equal the
    reference totals, per kind, in both bytes and message counts.
    """

    name = "byte-conservation"

    def __init__(self) -> None:
        super().__init__()
        self._bytes: Dict[str, int] = defaultdict(int)
        self._messages: Dict[str, int] = defaultdict(int)

    def on_wire_event(self, event: WireEvent) -> None:
        if not event.accounted or event.op == OP_DRAIN:
            return
        kind = reference_kind(event.message)
        if kind is None:
            return
        self._bytes[kind] += reference_price(event.message)
        self._messages[kind] += 1

    def _compare(self, when: str) -> None:
        stats = self.ctx.simulation.stats
        observed_bytes = {k: v for k, v in stats.bytes_by_kind().items() if v or self._bytes.get(k)}
        expected_bytes = {k: v for k, v in self._bytes.items() if v or observed_bytes.get(k)}
        if observed_bytes != expected_bytes:
            self.fail(
                f"{when}: accounted bytes diverge from the reference cost model; "
                f"stats={observed_bytes} reference={dict(expected_bytes)}"
            )
        for kind, count in self._messages.items():
            recorded = stats.total_messages(kind)
            if recorded != count:
                self.fail(
                    f"{when}: {kind} message count diverges; "
                    f"stats={recorded} observed-on-wire={count}"
                )
        if stats.total_bytes() != sum(self._bytes.values()):
            self.fail(
                f"{when}: total bytes diverge; stats={stats.total_bytes()} "
                f"reference={sum(self._bytes.values())}"
            )

    def on_cycle_end(self, phase: str, cycle: int) -> None:
        self._compare(f"{phase} cycle {cycle}")

    def on_finish(self) -> None:
        self._compare("end of run")


@register
class ViewBoundsChecker(InvariantChecker):
    """Every node's views respect their configured bounds at cycle boundaries.

    Personal networks hold at most ``s`` members with positive scores and
    never the owner; replicas exist only for the top-``c`` ranked members
    (``c`` capped by ``s``); random views hold at most ``r`` members, never
    the owner.
    """

    name = "view-bounds"

    def _check(self, when: str) -> None:
        config = self.ctx.simulation.config
        for uid, node in self.ctx.simulation.nodes.items():
            pn = node.personal_network
            if len(pn) > config.network_size:
                self.fail(f"{when}: node {uid} personal network has {len(pn)} > s={config.network_size} members")
            if uid in pn:
                self.fail(f"{when}: node {uid} is a member of her own personal network")
            budget = min(config.storage_for(uid), config.network_size)
            stored = pn.stored_ids()
            if len(stored) > budget:
                self.fail(f"{when}: node {uid} stores {len(stored)} > c={budget} replicas")
            top = {entry.user_id for entry in pn.ranked_entries()[: pn.storage]}
            outside = set(stored) - top
            if outside:
                self.fail(f"{when}: node {uid} stores replicas outside the top-c: {sorted(outside)}")
            for entry in pn.ranked_entries():
                if entry.score <= 0:
                    self.fail(f"{when}: node {uid} keeps zero-score neighbour {entry.user_id}")
            rv = node.random_view
            if len(rv) > config.random_view_size:
                self.fail(f"{when}: node {uid} random view has {len(rv)} > r={config.random_view_size} members")
            if uid in rv:
                self.fail(f"{when}: node {uid} is a member of her own random view")

    def on_cycle_end(self, phase: str, cycle: int) -> None:
        self._check(f"{phase} cycle {cycle}")

    def on_finish(self) -> None:
        self._check("end of run")


@register
class ReplicaFreshnessChecker(InvariantChecker):
    """Stored replicas are well-formed and never newer than the live profile.

    A replica of user ``u`` must actually be a profile of ``u``, and its
    version can trail the live profile (staleness is the paper's freshness
    metric) but never lead it -- a replica from the future means versions
    were corrupted somewhere in the exchange.
    """

    name = "replica-freshness"

    def _check(self, when: str) -> None:
        nodes = self.ctx.simulation.nodes
        for uid, node in nodes.items():
            for subject, replica in node.personal_network.stored_profiles().items():
                if replica.user_id != subject:
                    self.fail(
                        f"{when}: node {uid} stores a replica of {replica.user_id} "
                        f"under key {subject}"
                    )
                live = nodes[subject].profile.version
                if replica.version > live:
                    self.fail(
                        f"{when}: node {uid} holds replica of {subject} at version "
                        f"{replica.version} > live version {live}"
                    )

    def on_cycle_end(self, phase: str, cycle: int) -> None:
        self._check(f"{phase} cycle {cycle}")

    def on_finish(self) -> None:
        self._check("end of run")


@register
class QueryLifecycleChecker(InvariantChecker):
    """Wire-level query protocol rules, tracked per (node, query).

    * **No retry after hand-off**: once a node's ``QueryForward`` ends in
      ``REPLY_DROPPED`` (the destination processed the list; only the α
      share was lost) or ``DEFERRED`` (the list is in flight), that node
      must not forward the same query again until new remaining work
      reaches it (a delivered forward or ``RemainingReturn``).  Retrying
      would duplicate work the destination already owns.
    * **No duplicate contribution**: a node never ships two partial results
      for the same query with overlapping contributor profiles.
    """

    name = "query-lifecycle"

    def __init__(self) -> None:
        super().__init__()
        #: (query_id, node) pairs that handed their remaining list off.
        self._handed_off: Set[Tuple[int, int]] = set()
        #: (query_id, sender) -> union of contributors shipped so far.
        self._contributed: Dict[Tuple[int, int], Set[int]] = defaultdict(set)

    def on_wire_event(self, event: WireEvent) -> None:
        message = event.message
        mtype = type(message)
        if mtype is QueryForward:
            self._on_forward(event)
        elif mtype is RemainingReturn:
            if event.status == DELIVERED:
                self._handed_off.discard((message.query_id, event.receiver))
        elif mtype is QueryResult and event.op == OP_SEND:
            self._on_result_emitted(event)

    def _on_forward(self, event: WireEvent) -> None:
        query_id = event.message.query.query_id
        if event.op == OP_REQUEST:
            key = (query_id, event.sender)
            if key in self._handed_off:
                self.fail(
                    f"node {event.sender} re-forwarded query {query_id} after "
                    "handing its remaining list off (REPLY_DROPPED/DEFERRED)"
                )
            if event.status in (REPLY_DROPPED, DEFERRED):
                self._handed_off.add(key)
            if event.status in (DELIVERED, REPLY_DROPPED):
                # The destination processed the list and now owns its share.
                self._handed_off.discard((query_id, event.receiver))
        elif event.op == OP_DRAIN and event.status == DELIVERED:
            self._handed_off.discard((query_id, event.receiver))

    def _on_result_emitted(self, event: WireEvent) -> None:
        partial = event.message.partial
        key = (partial.query_id, event.sender)
        overlap = self._contributed[key] & set(partial.contributors)
        if overlap:
            self.fail(
                f"node {event.sender} contributed profiles {sorted(overlap)} twice "
                f"to query {partial.query_id}"
            )
        self._contributed[key].update(partial.contributors)


@register
class QueryProgressChecker(InvariantChecker):
    """Querier-side result state only ever improves.

    Coverage (profiles contributing to a query) is monotone non-decreasing
    under *every* transport and schedule: contributions accumulate and are
    never retracted.  The set of used profiles stays within the profiles the
    querier expected at issue time (her personal network plus herself).
    """

    name = "query-progress"

    def __init__(self) -> None:
        super().__init__()
        self._last_used: Dict[int, int] = {}

    def on_eager_cycle(self, cycle: int, snapshots: Dict[int, "object"]) -> None:
        for query_id, snapshot in snapshots.items():
            previous = self._last_used.get(query_id)
            if previous is not None and snapshot.profiles_used < previous:
                self.fail(
                    f"query {query_id}: profiles_used fell from {previous} to "
                    f"{snapshot.profiles_used} at eager cycle {cycle}"
                )
            self._last_used[query_id] = snapshot.profiles_used

    def on_finish(self) -> None:
        for query_id, session in self.ctx.sessions.items():
            stray = session.profiles_used - session.expected_profiles
            if stray:
                self.fail(
                    f"query {query_id}: profiles {sorted(stray)} contributed but "
                    "were never part of the querier's personal network"
                )


@register
class PartitionIsolationChecker(InvariantChecker):
    """While a partition cut is active, no message crosses it.

    The conditioned transport must drop (synchronous sends) or hold
    (in-flight envelopes) everything whose endpoints sit in different
    components between the split and heal cycles.  Any wire event that
    reached a handler across the cut -- a delivered request / send / drain,
    a delivered reply, or a request whose handler ran even though its reply
    was then lost -- is a containment breach.
    """

    name = "partition-isolation"

    @classmethod
    def applies(cls, spec: "ScenarioSpec") -> bool:
        return spec.partition is not None

    def on_wire_event(self, event: WireEvent) -> None:
        # REPLY_DROPPED still means the request leg crossed and was processed.
        if event.status not in (DELIVERED, REPLY_DROPPED):
            return
        transport = self.ctx.simulation.network.transport
        if not transport.partition_active():
            return
        sender_side = transport.partition_component(event.sender)
        receiver_side = transport.partition_component(event.receiver)
        if sender_side != receiver_side:
            self.fail(
                f"{event.op} of {type(event.message).__name__} from node "
                f"{event.sender} (component {sender_side}) reached node "
                f"{event.receiver} (component {receiver_side}) across an "
                "active partition cut"
            )


@register
class FreeRiderContainmentChecker(InvariantChecker):
    """Free riders advertise digests but never serve anyone.

    A free rider must not ship an accountable :class:`CommonItemsReply`, an
    accountable :class:`FullProfilePush`, or any :class:`QueryResult`; and
    when a query forward reaches one, the :class:`RemainingReturn` it hands
    back must echo the *entire* forwarded list (no silent work claimed).
    The protocol-legal failure forms (``actions=None`` / ``profile=None``)
    are exactly what an honest node answers when it lacks the data, so the
    rest of the stack needs no special-casing.
    """

    name = "free-rider-containment"

    @classmethod
    def applies(cls, spec: "ScenarioSpec") -> bool:
        return spec.free_rider_fraction > 0.0

    def __init__(self) -> None:
        super().__init__()
        #: (rider, query_id) -> remaining list last forwarded to that rider.
        self._forwarded: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    def on_wire_event(self, event: WireEvent) -> None:
        riders = self.ctx.simulation.free_rider_ids
        if not riders:
            return
        message = event.message
        mtype = type(message)
        if mtype is QueryForward:
            handler_ran = (
                event.op == OP_REQUEST
                and event.status in (DELIVERED, REPLY_DROPPED)
            ) or (event.op == OP_DRAIN and event.status == DELIVERED)
            if handler_ran and event.receiver in riders:
                self._forwarded[(event.receiver, message.query.query_id)] = (
                    message.remaining
                )
            return
        if event.sender not in riders:
            return
        if mtype is CommonItemsReply and message.actions is not None:
            self.fail(
                f"free rider {event.sender} served a common-items reply "
                f"for subject {message.subject_id}"
            )
        elif mtype is FullProfilePush and message.profile is not None:
            self.fail(
                f"free rider {event.sender} served a full profile "
                f"of subject {message.subject_id}"
            )
        elif mtype is QueryResult:
            self.fail(
                f"free rider {event.sender} shipped a partial result "
                f"for query {message.partial.query_id}"
            )
        elif mtype is RemainingReturn:
            expected = self._forwarded.get((event.sender, message.query_id))
            if expected is not None and tuple(message.remaining) != tuple(expected):
                self.fail(
                    f"free rider {event.sender} returned "
                    f"{list(message.remaining)} for query {message.query_id} "
                    f"instead of echoing the forwarded list {list(expected)}"
                )


@register
class RecallConvergenceChecker(InvariantChecker):
    """Recall converges to the exact answer under the direct wire.

    Applies to direct-equivalent scenarios (direct transport, or lossy /
    latency at zero rates) without profile dynamics, against the fixed
    reference: the exact top-k over the profiles the querier expected at
    issue time.

    Fuzzing itself refined this invariant: the *anytime* NRA estimate shown
    before a session completes is legitimately non-monotone (a transiently
    leading item can displace a reference item until the trailing partial
    lists arrive -- seed 0, scenario 24 exhibits a 0.83 -> 0.67 -> 1.0
    recall trajectory on a healthy system).  What the system does guarantee,
    and what is checked here:

    * **completion stability** -- from the cycle a session completes, its
      snapshot top-k contains the full reference answer (recall 1), at that
      cycle and at every later one;
    * **quiescent convergence** -- with no churn either, every query's
      session completes within the horizon (and therefore ends at recall 1).
    """

    name = "recall-convergence"

    @classmethod
    def applies(cls, spec: "ScenarioSpec") -> bool:
        return spec.direct_equivalent and spec.dynamics is None

    def _recall(self, query_id: int, items) -> float:
        reference = self.ctx.references.get(query_id)
        if not reference:
            return 1.0
        return len(set(items) & set(reference)) / len(reference)

    def on_eager_cycle(self, cycle: int, snapshots: Dict[int, "object"]) -> None:
        for query_id, snapshot in snapshots.items():
            session = self.ctx.sessions.get(query_id)
            if session is None or not session.is_complete():
                continue
            value = self._recall(query_id, snapshot.items)
            if value < 1.0 - 1e-12:
                self.fail(
                    f"query {query_id}: recall {value:.6f} < 1 at eager cycle "
                    f"{cycle} although the session is complete under a direct wire"
                )

    def on_finish(self) -> None:
        if not self.ctx.spec.quiescent:
            return
        for query_id, session in self.ctx.sessions.items():
            if not session.is_complete():
                self.fail(
                    f"query {query_id}: session incomplete after the horizon in a "
                    f"quiescent direct-wire scenario (coverage {session.coverage:.3f})"
                )
