"""Execute one :class:`~repro.simtest.spec.ScenarioSpec` under invariants.

The runner is the bridge between a frozen spec and the live system: it
builds the dataset and the :class:`~repro.p3q.protocol.P3QSimulation`,
schedules the spec's churn and dynamics through the engine's event queue,
and hooks the invariant checkers into

* the transport (a single observer fans every
  :class:`~repro.simulator.transport.WireEvent` out to the checkers),
* the engine (a post-cycle hook fires the cycle-boundary checks),
* the eager loop (the per-cycle snapshot callback feeds the query
  checkers).

A run never half-fails: the first :class:`InvariantViolation` (or crash)
aborts it and is reported in the :class:`ScenarioResult` together with the
spec that produced it.  Runs also produce a *fingerprint* -- the same exact
traffic/view/result digest the transport golden test uses -- which is how
zero-condition scenarios (a lossy or latency transport configured with zero
loss and zero delay) are proven to degrade bit-identically to the direct
wire: the runner executes the direct twin of the spec and compares
fingerprints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..data.dynamics import DynamicsConfig, ProfileDynamicsGenerator
from ..data.models import ChangeDay, Dataset
from ..data.queries import QueryWorkloadGenerator
from ..data.synthetic import SyntheticConfig, SyntheticTraceGenerator
from ..p3q.config import P3QConfig
from ..p3q.protocol import P3QSimulation
from ..p3q.query import QuerySession
from ..p3q.scoring import partial_scores
from ..simulator.engine import PHASE_LAZY, ScheduledEvent, SimulationEngine
from ..topk.exact import exact_top_k
from .invariants import InvariantChecker, InvariantViolation, default_checkers
from .spec import ScenarioSpec

#: Violation name used when a scenario crashes rather than failing a checker.
CRASH = "crash"
#: Violation name of the zero-condition bit-equivalence property.
ZERO_CONDITION_EQUIVALENCE = "zero-condition-equivalence"
#: Violation name of the sharded-engine bit-equivalence property.
WORKER_COUNT_EQUIVALENCE = "worker-count-equivalence"


@dataclass
class RunContext:
    """What checkers may inspect during a run."""

    spec: ScenarioSpec
    simulation: P3QSimulation
    #: query_id -> reference top-k items (exact answer over the profiles the
    #: querier expected at issue time); filled once queries are issued.
    references: Dict[int, List[int]] = field(default_factory=dict)
    #: query_id -> live session at the querier; filled once queries are issued.
    sessions: Dict[int, QuerySession] = field(default_factory=dict)


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    spec: ScenarioSpec
    violation: Optional[InvariantViolation]
    fingerprint: Optional[Dict]
    #: Names of the invariants that were checked.
    checked: List[str]

    @property
    def ok(self) -> bool:
        return self.violation is None

    @property
    def invariant(self) -> Optional[str]:
        return None if self.violation is None else self.violation.invariant


def build_simulation(spec: ScenarioSpec) -> P3QSimulation:
    """The live system a spec describes (dataset + configured P3Q stack)."""
    generator = SyntheticTraceGenerator(
        SyntheticConfig(
            num_users=spec.num_users,
            num_items=spec.num_items,
            num_tags=spec.num_tags,
            num_communities=spec.num_communities,
            mean_actions_per_user=spec.mean_actions_per_user,
            seed=spec.dataset_seed,
        )
    )
    dataset = generator.generate()
    config = P3QConfig(
        network_size=spec.network_size,
        storage=spec.storage,
        random_view_size=spec.random_view_size,
        k=spec.k,
        alpha=spec.alpha,
        exchange_size=spec.exchange_size,
        digest_bits=spec.digest_bits,
        digest_hashes=spec.digest_hashes,
        seed=spec.seed,
        transport=spec.transport,
        loss_rate=spec.loss_rate,
        delay_cycles=spec.delay_cycles,
        partition=spec.partition,
        asymmetry=spec.asymmetry,
        free_rider_fraction=spec.free_rider_fraction,
        workers=spec.workers,
        # Fuzzing must exercise the real multi-process path even on
        # one-core CI runners, where "auto" would (correctly) fall back to
        # inline.  The spec picks fork (re-fork per cycle) or pool
        # (persistent workers over shared columnar state).
        engine_executor=spec.engine_executor if spec.workers > 1 else "auto",
    )
    simulation = P3QSimulation(dataset, config)
    # Ground-truth community membership, inverted for the correlated-churn
    # scheduler (the generator caches the dataset; this costs no re-roll).
    members: Dict[int, List[int]] = {}
    if spec.community_churn:
        for uid, communities in generator.community_memberships().items():
            for community in communities:
                members.setdefault(community, []).append(uid)
    simulation.community_members = {
        community: sorted(ids) for community, ids in members.items()
    }
    return simulation


def _schedule_churn(spec: ScenarioSpec, simulation: P3QSimulation) -> None:
    """Install the spec's churn events into the engine's event queue."""
    for idx, event in enumerate(spec.churn):
        rng = random.Random(f"{spec.seed}/simtest/churn/{idx}")

        def depart(engine: SimulationEngine, event=event, rng=rng) -> None:
            online = simulation.network.online_ids()
            count = min(max(1, int(event.fraction * len(online))), len(online) - 1)
            if count <= 0:
                return
            departing = rng.sample(online, k=count)
            crash = event.mode == "crash"
            if crash:
                simulation.crash_users(departing)
            else:
                simulation.depart_users(departing)
            if event.rejoin_after > 0:
                rejoin = (
                    simulation.recover_users if crash else simulation.rejoin_users
                )
                engine.schedule(
                    ScheduledEvent(
                        cycle=event.cycle + event.rejoin_after,
                        phase=event.phase,
                        action=lambda _engine, ids=tuple(departing): rejoin(ids),
                        description=f"rejoin {count} users",
                    )
                )

        simulation.engine.schedule(
            ScheduledEvent(
                cycle=event.cycle,
                phase=event.phase,
                action=depart,
                description=f"depart {event.fraction:.0%} of online users",
            )
        )


def _schedule_community_churn(spec: ScenarioSpec, simulation: P3QSimulation) -> None:
    """Install correlated (whole-community) churn into the event queue."""
    for event in spec.community_churn:

        def depart(engine: SimulationEngine, event=event) -> None:
            members = simulation.community_members.get(event.community, [])
            online = set(simulation.network.online_ids())
            # Never empty the network: keep at least one node online.
            departing = [uid for uid in members if uid in online]
            if len(departing) >= len(online):
                departing = departing[:-1]
            if not departing:
                return
            crash = event.mode == "crash"
            if crash:
                simulation.crash_users(departing)
            else:
                simulation.depart_users(departing)
            if event.rejoin_after > 0:
                rejoin = (
                    simulation.recover_users if crash else simulation.rejoin_users
                )
                engine.schedule(
                    ScheduledEvent(
                        cycle=event.cycle + event.rejoin_after,
                        phase=event.phase,
                        action=lambda _engine, ids=tuple(departing): rejoin(ids),
                        description=f"rejoin community {event.community}",
                    )
                )

        simulation.engine.schedule(
            ScheduledEvent(
                cycle=event.cycle,
                phase=event.phase,
                action=depart,
                description=f"depart community {event.community}",
            )
        )


def _schedule_dynamics(spec: ScenarioSpec, simulation: P3QSimulation) -> None:
    """Install the spec's profile-change day into the lazy schedule."""
    if spec.dynamics is None:
        return
    generator = ProfileDynamicsGenerator(
        simulation.dataset,
        DynamicsConfig(
            change_fraction=spec.dynamics.change_fraction,
            mean_new_actions=spec.dynamics.mean_new_actions,
            num_days=1,
            seed=spec.seed + 101,
        ),
    )
    change_day: ChangeDay = generator.generate()[0]
    simulation.engine.schedule(
        ScheduledEvent(
            cycle=spec.dynamics.at_cycle,
            phase=PHASE_LAZY,
            action=lambda _engine: simulation.apply_profile_changes(change_day),
            description="apply one day of profile changes",
        )
    )


def _issue_workload(spec: ScenarioSpec, ctx: RunContext) -> None:
    """Sample queriers, issue their queries and pin the reference answers.

    The reference for each query is the exact top-k over the *live* profiles
    of everything the querier expected at issue time (her personal network
    plus herself).  Under a direct wire without dynamics the collaborative
    computation must converge to exactly this answer; scores are small
    integer counts, so the float summation is order-independent and the
    reference is unambiguous.
    """
    simulation = ctx.simulation
    dataset: Dataset = simulation.dataset
    rng = random.Random(f"{spec.seed}/simtest/queries")
    queriers = rng.sample(dataset.user_ids, k=min(spec.num_queries, len(dataset.user_ids)))
    generator = QueryWorkloadGenerator(dataset, seed=spec.seed)
    queries = generator.generate(sorted(queriers))
    ctx.sessions = simulation.issue_queries(queries)
    for query_id, session in ctx.sessions.items():
        profiles = [
            simulation.nodes[uid].profile for uid in sorted(session.expected_profiles)
        ]
        scores = partial_scores(profiles, session.query)
        ctx.references[query_id] = [item for item, _ in exact_top_k([scores], session.k)]


def fingerprint(simulation: P3QSimulation) -> Dict:
    """An exact digest of traffic, views, replicas and query results.

    The same shape as the transport golden fixture: two runs are behaviourally
    identical iff their fingerprints are equal.
    """
    stats = simulation.stats
    results = {}
    for query_id, session in sorted(simulation.sessions().items()):
        last = session.snapshots[-1] if session.snapshots else None
        results[query_id] = {
            "items": [] if last is None else list(last.items),
            "profiles_used": 0 if last is None else last.profiles_used,
            "remaining": sorted(session.remaining),
        }
    return {
        "bytes_by_kind": stats.bytes_by_kind(),
        "messages": stats.total_messages(),
        "bytes_by_cycle": dict(sorted(stats.bytes_by_cycle().items())),
        "networks": {
            uid: members
            for uid, members in sorted(simulation.discovered_networks().items())
        },
        "stored": {
            uid: node.personal_network.stored_ids()
            for uid, node in sorted(simulation.nodes.items())
        },
        "replica_versions": {
            uid: dict(sorted(versions.items()))
            for uid, versions in sorted(simulation.stored_replica_versions().items())
        },
        "random_views": {
            uid: node.random_view.member_ids()
            for uid, node in sorted(simulation.nodes.items())
        },
        "results": results,
    }


def _execute(spec: ScenarioSpec, checkers: Sequence[InvariantChecker]) -> Dict:
    """One full scenario run with the given checkers attached."""
    simulation = build_simulation(spec)
    ctx = RunContext(spec=spec, simulation=simulation)
    for checker in checkers:
        checker.bind(ctx)

    if checkers:
        def observe(event) -> None:
            for checker in checkers:
                checker.on_wire_event(event)

        simulation.network.transport.add_observer(observe)

        # The engine stamps the phase of every cycle it runs; the hook reads
        # it back instead of tracking phase state of its own.
        def post_cycle(engine: SimulationEngine, cycle: int) -> None:
            for checker in checkers:
                checker.on_cycle_end(engine.current_phase, cycle)

        simulation.engine.add_post_cycle_hook(post_cycle)

    _schedule_churn(spec, simulation)
    _schedule_community_churn(spec, simulation)
    _schedule_dynamics(spec, simulation)

    simulation.bootstrap_random_views()
    simulation.run_lazy(spec.lazy_cycles)

    _issue_workload(spec, ctx)

    def eager_callback(cycle: int, snapshots) -> None:
        for checker in checkers:
            checker.on_eager_cycle(cycle, snapshots)

    simulation.run_eager(
        spec.eager_cycles,
        callback=eager_callback if checkers else None,
        stop_when_idle=False,
    )

    for checker in checkers:
        checker.on_finish()
    return fingerprint(simulation)


def run_scenario(
    spec: ScenarioSpec,
    checkers: Optional[Sequence[InvariantChecker]] = None,
) -> ScenarioResult:
    """Run one scenario; never raises, all failures land in the result.

    ``checkers`` defaults to every registered invariant that applies to the
    spec; pass an explicit (possibly empty) sequence to restrict them.
    """
    active = list(default_checkers(spec)) if checkers is None else list(checkers)
    names = [checker.name for checker in active]
    try:
        fp = _execute(spec, active)
    except InvariantViolation as violation:
        return ScenarioResult(spec=spec, violation=violation, fingerprint=None, checked=names)
    except Exception as error:  # noqa: BLE001 - a crash IS a fuzzing result
        violation = InvariantViolation(CRASH, f"{type(error).__name__}: {error}")
        return ScenarioResult(spec=spec, violation=violation, fingerprint=None, checked=names)

    if spec.workers > 1:
        # Sharded-engine equivalence: the same scenario on the serial
        # reference engine must produce a bit-identical fingerprint.
        try:
            serial_twin = _execute(spec.but(workers=1), ())
        except Exception as error:  # noqa: BLE001
            violation = InvariantViolation(CRASH, f"serial twin crashed: {error}")
            return ScenarioResult(spec=spec, violation=violation, fingerprint=fp, checked=names)
        if serial_twin != fp:
            diverging = sorted(key for key in fp if fp[key] != serial_twin.get(key))
            violation = InvariantViolation(
                WORKER_COUNT_EQUIVALENCE,
                f"sharded engine with {spec.workers} workers diverges from the "
                f"serial engine in: {', '.join(diverging)}",
            )
            return ScenarioResult(
                spec=spec,
                violation=violation,
                fingerprint=fp,
                checked=names + [WORKER_COUNT_EQUIVALENCE],
            )
        names = names + [WORKER_COUNT_EQUIVALENCE]

    if spec.transport != "direct" and spec.direct_equivalent:
        try:
            # A direct-equivalent spec may still carry an all-zero asymmetry
            # object; the direct transport rejects conditions outright, so
            # the twin drops them (they impose nothing by definition here).
            twin = _execute(
                spec.but(transport="direct", partition=None, asymmetry=None), ()
            )
        except Exception as error:  # noqa: BLE001
            violation = InvariantViolation(CRASH, f"direct twin crashed: {error}")
            return ScenarioResult(spec=spec, violation=violation, fingerprint=fp, checked=names)
        if twin != fp:
            diverging = sorted(
                key for key in fp if fp[key] != twin.get(key)
            )
            violation = InvariantViolation(
                ZERO_CONDITION_EQUIVALENCE,
                f"{spec.transport} transport at zero loss/delay diverges from the "
                f"direct wire in: {', '.join(diverging)}",
            )
            return ScenarioResult(
                spec=spec,
                violation=violation,
                fingerprint=fp,
                checked=names + [ZERO_CONDITION_EQUIVALENCE],
            )
        names = names + [ZERO_CONDITION_EQUIVALENCE]

    return ScenarioResult(spec=spec, violation=None, fingerprint=fp, checked=names)
