"""Greedy spec shrinking: reduce a failing scenario to a minimal repro.

When a scenario violates an invariant, the raw spec usually mixes several
stressors (churn + loss + dynamics + a large population) of which only one
matters.  The shrinker repeatedly applies *simplifying transformations* --
drop the dynamics, drop the churn, zero the loss, collapse to the direct
transport, halve the population / workload / horizons -- keeping a candidate
only when it still fails **the same invariant** (failing differently would
trade one bug report for another).  The pass list is ordered from most to
least semantic: removing a whole stressor beats shaving numbers, so the
minimal spec reads as a statement of *what* breaks rather than a small pile
of coincidences.

Shrinking is budgeted: each candidate costs one full (but early-aborting --
runs stop at the first violation) scenario run, so the driver caps the total
number of candidate runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from .runner import ScenarioResult, run_scenario
from .spec import ScenarioSpec

#: One transformation: name + (spec -> simplified spec or None if not applicable).
Transform = Tuple[str, Callable[[ScenarioSpec], Optional[ScenarioSpec]]]


def _drop_dynamics(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    return spec.but(dynamics=None) if spec.dynamics is not None else None


def _drop_churn(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    return spec.but(churn=()) if spec.churn else None


def _drop_partition(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    return spec.but(partition=None) if spec.partition is not None else None


def _drop_asymmetry(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    return spec.but(asymmetry=None) if spec.asymmetry is not None else None


def _drop_free_riders(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    if spec.free_rider_fraction <= 0.0:
        return None
    return spec.but(free_rider_fraction=0.0)


def _drop_community_churn(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    return spec.but(community_churn=()) if spec.community_churn else None


def _resume_crashes(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    """Downgrade crash-recovery churn to plain resume churn."""
    if not any(e.mode == "crash" for e in spec.churn) and not any(
        e.mode == "crash" for e in spec.community_churn
    ):
        return None
    return spec.but(
        churn=tuple(
            replace(e, mode="resume") if e.mode == "crash" else e for e in spec.churn
        ),
        community_churn=tuple(
            replace(e, mode="resume") if e.mode == "crash" else e
            for e in spec.community_churn
        ),
    )


def _zero_loss(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    return spec.but(loss_rate=0.0) if spec.loss_rate > 0 else None


def _zero_delay(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    return spec.but(delay_cycles=0) if spec.delay_cycles > 0 else None


def _direct_transport(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    if spec.transport == "direct":
        return None
    return spec.but(
        transport="direct",
        loss_rate=0.0,
        delay_cycles=0,
        partition=None,
        asymmetry=None,
    )


def _serial_engine(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    """Drop the sharded engine -- most failures are not about the workers."""
    return spec.but(workers=1) if spec.workers > 1 else None


def _clamp_schedule(spec: ScenarioSpec, lazy: int, eager: int) -> ScenarioSpec:
    """Shrink horizons, discarding or trimming events that fall outside.

    A departure beyond the new horizon is dropped; a rejoin beyond it is
    trimmed to the last cycle that still runs (or dropped entirely, making
    the departure permanent) so the clamped spec stays valid.
    """
    churn = []
    for event in spec.churn:
        horizon = lazy if event.phase == "lazy" else eager
        if event.cycle >= horizon:
            continue
        if event.rejoin_after and event.cycle + event.rejoin_after >= horizon:
            event = replace(event, rejoin_after=horizon - 1 - event.cycle)
        churn.append(event)
    community_churn = []
    for event in spec.community_churn:
        horizon = lazy if event.phase == "lazy" else eager
        if event.cycle >= horizon:
            continue
        if event.rejoin_after and event.cycle + event.rejoin_after >= horizon:
            event = replace(event, rejoin_after=horizon - 1 - event.cycle)
        community_churn.append(event)
    dynamics = spec.dynamics
    if dynamics is not None and dynamics.at_cycle >= lazy:
        dynamics = None
    partition = spec.partition
    if partition is not None and partition.split_cycle >= lazy + eager:
        partition = None
    return spec.but(
        lazy_cycles=lazy,
        eager_cycles=eager,
        churn=tuple(churn),
        community_churn=tuple(community_churn),
        dynamics=dynamics,
        partition=partition,
    )


def _halve_queries(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    if spec.num_queries <= 1:
        return None
    return spec.but(num_queries=max(1, spec.num_queries // 2))


def _halve_eager(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    if spec.eager_cycles <= 4:
        return None
    return _clamp_schedule(spec, spec.lazy_cycles, max(4, spec.eager_cycles // 2))


def _halve_lazy(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    if spec.lazy_cycles <= 1:
        return None
    return _clamp_schedule(spec, max(1, spec.lazy_cycles // 2), spec.eager_cycles)


def _halve_users(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    if spec.num_users <= 12:
        return None
    users = max(12, spec.num_users // 2)
    network = min(spec.network_size, users - 1)
    return spec.but(
        num_users=users,
        num_items=max(60, spec.num_items // 2),
        num_tags=max(24, spec.num_tags // 2),
        network_size=network,
        storage=min(spec.storage, network),
    )


def _halve_network(spec: ScenarioSpec) -> Optional[ScenarioSpec]:
    if spec.network_size <= 4:
        return None
    network = max(4, spec.network_size // 2)
    return spec.but(network_size=network, storage=min(spec.storage, network))


#: Most-semantic-first pass list (see module docstring).
TRANSFORMS: List[Transform] = [
    ("drop dynamics", _drop_dynamics),
    ("drop churn", _drop_churn),
    ("drop community churn", _drop_community_churn),
    ("drop partition", _drop_partition),
    ("drop asymmetry", _drop_asymmetry),
    ("drop free riders", _drop_free_riders),
    ("resume crashed nodes", _resume_crashes),
    ("zero loss rate", _zero_loss),
    ("zero delay", _zero_delay),
    ("direct transport", _direct_transport),
    ("serial engine", _serial_engine),
    ("halve users", _halve_users),
    ("halve queries", _halve_queries),
    ("halve eager cycles", _halve_eager),
    ("halve lazy cycles", _halve_lazy),
    ("halve network size", _halve_network),
]


@dataclass
class ShrinkResult:
    """The minimal spec found, with the trail that led there."""

    spec: ScenarioSpec
    result: ScenarioResult
    #: (transform name, accepted) pairs in the order they were tried.
    trail: List[Tuple[str, bool]]
    runs: int

    @property
    def invariant(self) -> str:
        return self.result.invariant


def shrink(
    spec: ScenarioSpec,
    invariant: str,
    max_runs: int = 48,
    on_step: Optional[Callable[[str, bool, int], None]] = None,
) -> ShrinkResult:
    """Greedily minimise ``spec`` while it keeps violating ``invariant``.

    ``on_step(transform_name, accepted, runs_so_far)`` is invoked after each
    candidate run (the CLI uses it for progress output).  The returned spec
    is a local minimum: no single transformation of the pass list keeps the
    failure alive (or the run budget ran out).
    """
    current = spec
    current_result = run_scenario(current)
    if current_result.invariant != invariant:
        raise ValueError(
            f"spec does not fail invariant {invariant!r} "
            f"(got {current_result.invariant!r}); nothing to shrink"
        )
    runs = 1
    trail: List[Tuple[str, bool]] = []
    progress = True
    while progress and runs < max_runs:
        progress = False
        for name, transform in TRANSFORMS:
            if runs >= max_runs:
                break
            candidate = transform(current)
            if candidate is None or candidate == current:
                continue
            result = run_scenario(candidate)
            runs += 1
            accepted = result.invariant == invariant
            trail.append((name, accepted))
            if on_step is not None:
                on_step(name, accepted, runs)
            if accepted:
                current = candidate
                current_result = result
                progress = True
    return ShrinkResult(spec=current, result=current_result, trail=trail, runs=runs)
