"""Scenario specifications and their seeded random generator.

A :class:`ScenarioSpec` is a *complete, frozen* description of one
simulation-fuzzing run: the synthetic trace, the protocol parameters, the
transport conditions, the churn schedule, the profile-dynamics mix and the
query workload.  Everything downstream (the runner, the shrinker, the CLI)
treats specs as values:

* the same spec always produces the same run, bit for bit -- all randomness
  inside a run derives from ``spec.seed``;
* specs round-trip through JSON (:meth:`ScenarioSpec.to_json` /
  :meth:`ScenarioSpec.from_json`), which is how a failing scenario is
  reported and replayed;
* :meth:`ScenarioSpec.repro_command` renders the exact shell command that
  re-runs one spec standalone.

:class:`ScenarioGenerator` samples random specs.  Sampling is indexed --
``generator.spec(i)`` derives its own RNG stream from ``(master_seed, i)``
-- so spec ``i`` is identical whether specs ``0..i-1`` were generated or
not, and a failure report only needs ``(master_seed, index)`` to name the
scenario it came from.
"""

from __future__ import annotations

import json
import math
import random
import shlex
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional, Tuple

from ..simulator.conditions import AsymmetrySpec, PartitionSpec, validate_fraction
from ..simulator.engine import PHASE_EAGER, PHASE_LAZY
from ..simulator.rng import derive_rng

#: How a churn departure comes back: ``"resume"`` rejoins with whatever the
#: dataset holds now (graceful restart); ``"crash"`` snapshots the profile at
#: departure and restores it on rejoin (restart from pre-crash state).
CHURN_MODES = ("resume", "crash")


@dataclass(frozen=True)
class ChurnEvent:
    """A simultaneous massive departure, optionally followed by a rejoin.

    ``fraction`` of the currently online population departs at the start of
    phase-local cycle ``cycle`` of ``phase``; with ``rejoin_after > 0`` the
    same users come back that many cycles later (in the same phase).  Both
    the departure and the rejoin must land strictly inside the phase horizon
    (:class:`ScenarioSpec` validates this): the engine only fires events of
    cycles that actually run, so a rejoin at or beyond the horizon would
    silently never happen.
    """

    phase: str
    cycle: int
    fraction: float
    rejoin_after: int = 0
    #: ``"resume"`` or ``"crash"`` (see :data:`CHURN_MODES`).
    mode: str = "resume"

    def __post_init__(self) -> None:
        if self.phase not in (PHASE_LAZY, PHASE_EAGER):
            raise ValueError(f"phase must be lazy or eager, got {self.phase!r}")
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")
        if not 0.0 < self.fraction <= 0.5:
            raise ValueError("fraction must be in (0, 0.5]")
        if self.rejoin_after < 0:
            raise ValueError("rejoin_after must be non-negative")
        if self.mode not in CHURN_MODES:
            raise ValueError(f"mode must be one of {CHURN_MODES}, got {self.mode!r}")


@dataclass(frozen=True)
class CommunityChurnEvent:
    """Correlated churn: one whole synthetic community leaves together.

    Every currently-online member of synthetic community ``community``
    departs at phase-local cycle ``cycle``; with ``rejoin_after > 0`` the
    departed members come back together that many cycles later.  ``mode``
    follows :data:`CHURN_MODES` (``"crash"`` restores pre-crash profiles on
    rejoin).  Community membership comes from the synthetic trace generator,
    so the event is fully determined by the spec.
    """

    phase: str
    cycle: int
    community: int
    rejoin_after: int = 0
    mode: str = "resume"

    def __post_init__(self) -> None:
        if self.phase not in (PHASE_LAZY, PHASE_EAGER):
            raise ValueError(f"phase must be lazy or eager, got {self.phase!r}")
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")
        if self.community < 0:
            raise ValueError("community must be non-negative")
        if self.rejoin_after < 0:
            raise ValueError("rejoin_after must be non-negative")
        if self.mode not in CHURN_MODES:
            raise ValueError(f"mode must be one of {CHURN_MODES}, got {self.mode!r}")


@dataclass(frozen=True)
class DynamicsSpec:
    """One day of synthetic profile changes applied during the lazy phase."""

    #: Lazy cycle at the start of which the change day is applied.
    at_cycle: int
    #: Fraction of users changing their profiles that day.
    change_fraction: float
    #: Mean number of new tagging actions per changing user.
    mean_new_actions: int = 4

    def __post_init__(self) -> None:
        if self.at_cycle < 0:
            raise ValueError("at_cycle must be non-negative")
        if not 0.0 < self.change_fraction <= 1.0:
            raise ValueError("change_fraction must be in (0, 1]")
        if self.mean_new_actions < 1:
            raise ValueError("mean_new_actions must be >= 1")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-determined fuzzing scenario."""

    #: Where the spec came from (purely informational, carried into reports).
    master_seed: int = 0
    index: int = 0

    # -- synthetic trace ------------------------------------------------------
    num_users: int = 36
    num_items: int = 260
    num_tags: int = 80
    num_communities: int = 4
    mean_actions_per_user: int = 22
    dataset_seed: int = 11

    # -- protocol parameters --------------------------------------------------
    network_size: int = 12
    storage: int = 4
    random_view_size: int = 5
    k: int = 8
    alpha: float = 0.5
    exchange_size: int = 10
    digest_bits: int = 1_024
    digest_hashes: int = 4

    # -- transport conditions -------------------------------------------------
    transport: str = "direct"
    loss_rate: float = 0.0
    delay_cycles: int = 0
    #: Network partition condition (``"conditioned"`` transport only).
    partition: Optional[PartitionSpec] = None
    #: Asymmetric-link / NAT condition (``"conditioned"`` transport only).
    asymmetry: Optional[AsymmetrySpec] = None
    #: Seeded fraction of nodes that never answer requests or forwards.
    free_rider_fraction: float = 0.0

    #: Worker count of the sharded cycle engine (1 = serial reference).  A
    #: spec with ``workers > 1`` runs the real multi-process executor and
    #: the runner cross-checks its fingerprint against the serial twin.
    workers: int = 1
    #: Executor of the sharded engine when ``workers > 1``: ``"fork"``
    #: (re-fork every cycle) or ``"pool"`` (persistent workers over shared
    #: columnar state).  Both must fingerprint-match the serial twin.
    engine_executor: str = "fork"

    # -- schedule -------------------------------------------------------------
    lazy_cycles: int = 6
    eager_cycles: int = 10
    num_queries: int = 6
    churn: Tuple[ChurnEvent, ...] = ()
    community_churn: Tuple[CommunityChurnEvent, ...] = ()
    dynamics: Optional[DynamicsSpec] = None

    #: Root seed of every RNG stream inside the run.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 4:
            raise ValueError("num_users must be at least 4")
        if self.network_size <= 0 or self.network_size >= self.num_users:
            raise ValueError("network_size must be in [1, num_users)")
        if self.num_queries < 1:
            raise ValueError("num_queries must be positive")
        if self.lazy_cycles < 1 or self.eager_cycles < 1:
            raise ValueError("cycle counts must be positive")
        for event in self.churn:
            limit = self.lazy_cycles if event.phase == PHASE_LAZY else self.eager_cycles
            if event.cycle >= limit:
                raise ValueError(
                    f"churn event at {event.phase} cycle {event.cycle} is outside "
                    f"the {limit}-cycle horizon"
                )
            if event.rejoin_after and event.cycle + event.rejoin_after >= limit:
                raise ValueError(
                    f"churn rejoin at {event.phase} cycle "
                    f"{event.cycle + event.rejoin_after} is outside the "
                    f"{limit}-cycle horizon (it would silently never fire)"
                )
        for event in self.community_churn:
            limit = self.lazy_cycles if event.phase == PHASE_LAZY else self.eager_cycles
            if event.cycle >= limit:
                raise ValueError(
                    f"community churn event at {event.phase} cycle {event.cycle} "
                    f"is outside the {limit}-cycle horizon"
                )
            if event.rejoin_after and event.cycle + event.rejoin_after >= limit:
                raise ValueError(
                    f"community churn rejoin at {event.phase} cycle "
                    f"{event.cycle + event.rejoin_after} is outside the "
                    f"{limit}-cycle horizon (it would silently never fire)"
                )
            if event.community >= self.num_communities:
                raise ValueError(
                    f"community {event.community} does not exist "
                    f"(the trace has {self.num_communities} communities)"
                )
        if self.dynamics is not None and self.dynamics.at_cycle >= self.lazy_cycles:
            raise ValueError("dynamics.at_cycle is outside the lazy horizon")
        if self.transport != "conditioned" and (
            self.partition is not None or self.asymmetry is not None
        ):
            raise ValueError(
                f"transport {self.transport!r} ignores partition/asymmetry "
                "conditions; use 'conditioned'"
            )
        if (
            self.partition is not None
            and self.partition.split_cycle >= self.lazy_cycles + self.eager_cycles
        ):
            raise ValueError(
                f"partition split at global cycle {self.partition.split_cycle} "
                f"is outside the {self.lazy_cycles + self.eager_cycles}-cycle run"
            )
        validate_fraction("free_rider_fraction", self.free_rider_fraction)
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.engine_executor not in ("fork", "pool"):
            raise ValueError(
                f"engine_executor must be 'fork' or 'pool', got {self.engine_executor!r}"
            )

    # -- derived views --------------------------------------------------------

    @property
    def direct_equivalent(self) -> bool:
        """True when the configured conditions degrade to the direct wire."""
        return (
            self.loss_rate == 0.0
            and self.delay_cycles == 0
            and self.partition is None
            and (self.asymmetry is None or self.asymmetry.is_null)
            and self.free_rider_fraction == 0.0
        )

    @property
    def quiescent(self) -> bool:
        """No churn and no profile dynamics: the steady-state setting under
        which the strongest invariants (full recall, exact convergence)
        apply."""
        return not self.churn and not self.community_churn and self.dynamics is None

    def describe(self) -> str:
        """A one-line summary for progress output."""
        parts = [
            f"users={self.num_users}",
            f"s={self.network_size}",
            f"c={self.storage}",
            f"alpha={self.alpha}",
            f"transport={self.transport}",
        ]
        if self.loss_rate:
            parts.append(f"loss={self.loss_rate}")
        if self.delay_cycles:
            parts.append(f"delay={self.delay_cycles}")
        parts.append(f"lazy={self.lazy_cycles}")
        parts.append(f"eager={self.eager_cycles}")
        parts.append(f"queries={self.num_queries}")
        if self.partition is not None:
            parts.append(
                f"partition={self.partition.components}"
                f"@{self.partition.split_cycle}..{self.partition.heal_cycle}"
            )
        if self.asymmetry is not None and not self.asymmetry.is_null:
            parts.append("asymmetry")
        if self.free_rider_fraction:
            parts.append(f"freeriders={self.free_rider_fraction}")
        if self.churn:
            parts.append(f"churn={len(self.churn)}")
        if self.community_churn:
            parts.append(f"community-churn={len(self.community_churn)}")
        if any(
            event.mode == "crash" for event in self.churn + self.community_churn
        ):
            parts.append("crash")
        if self.dynamics is not None:
            parts.append("dynamics")
        if self.workers > 1:
            parts.append(f"workers={self.workers}({self.engine_executor})")
        return " ".join(parts)

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["churn"] = [asdict(event) for event in self.churn]
        data["community_churn"] = [asdict(event) for event in self.community_churn]
        data["partition"] = None if self.partition is None else asdict(self.partition)
        data["asymmetry"] = None if self.asymmetry is None else asdict(self.asymmetry)
        data["dynamics"] = None if self.dynamics is None else asdict(self.dynamics)
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        payload = dict(data)
        payload["churn"] = tuple(
            ChurnEvent(**event) for event in payload.get("churn", ())
        )
        payload["community_churn"] = tuple(
            CommunityChurnEvent(**event)
            for event in payload.get("community_churn", ())
        )
        partition = payload.get("partition")
        payload["partition"] = None if partition is None else PartitionSpec(**partition)
        asymmetry = payload.get("asymmetry")
        payload["asymmetry"] = None if asymmetry is None else AsymmetrySpec(**asymmetry)
        dynamics = payload.get("dynamics")
        payload["dynamics"] = None if dynamics is None else DynamicsSpec(**dynamics)
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def repro_command(self) -> str:
        """The shell command replaying exactly this scenario."""
        return (
            "PYTHONPATH=src python -m repro.simtest "
            f"--spec-json {shlex.quote(self.to_json())}"
        )

    def but(self, **changes: Any) -> "ScenarioSpec":
        """A copy with some fields replaced (shrinking helper)."""
        return replace(self, **changes)


@dataclass
class GeneratorRanges:
    """Sampling bounds of :class:`ScenarioGenerator`.

    The defaults keep one scenario well under a second so a 50-seed batch
    finishes in tens of seconds; widen them for longer offline campaigns.
    """

    users: Tuple[int, int] = (24, 56)
    network_size: Tuple[int, int] = (8, 20)
    storage: Tuple[int, int] = (2, 8)
    random_view: Tuple[int, int] = (4, 8)
    k: Tuple[int, int] = (5, 10)
    exchange_size: Tuple[int, int] = (6, 14)
    lazy_cycles: Tuple[int, int] = (3, 8)
    eager_cycles: Tuple[int, int] = (8, 14)
    queries: Tuple[int, int] = (3, 10)
    alphas: Tuple[float, ...] = (0.0, 0.3, 0.5, 0.7, 1.0)
    loss_rates: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.4)
    delay_choices: Tuple[int, ...] = (1, 2, 3)
    #: Probability of a lossy / latency / zero-condition-stochastic scenario
    #: (the remainder runs the direct transport).
    p_lossy: float = 0.3
    p_latency: float = 0.25
    p_zero_conditions: float = 0.1
    p_churn: float = 0.35
    p_rejoin: float = 0.5
    p_dynamics: float = 0.3

    #: Occasional large-N scenarios: with probability ``p_large_users`` the
    #: user count is redrawn log-uniformly from ``large_users`` (so most
    #: large draws stay in the hundreds, with a tail up to 5000) and the
    #: cycle horizons are tightened to keep one scenario within seconds.
    #: These runs push the incremental runtime through churn/dynamics at
    #: scales where stale-cache bugs hide; the draw comes from a *separate*
    #: seeded stream so tuning it never perturbs the small-scenario stream.
    large_users: Tuple[int, int] = (200, 5_000)
    p_large_users: float = 0.06

    #: Sharded-engine fuzzing: with probability ``p_workers`` the scenario
    #: runs on the sharded engine (fork executor) with a worker count drawn
    #: from ``worker_choices``, and the runner requires its fingerprint to
    #: match the serial twin.  Drawn from an independent seeded stream, so
    #: enabling or tuning it leaves every other field of every scenario
    #: bit-identical.
    worker_choices: Tuple[int, ...] = (2, 4)
    p_workers: float = 0.2

    #: Adversarial conditions, each drawn from its own independent seeded
    #: stream (tuning one never perturbs another dimension or the main
    #: scenario stream).  A partition or asymmetry draw upgrades the
    #: transport to ``"conditioned"`` (composing with any sampled
    #: loss/delay); ``p_zero_adversarial`` samples the conditioned transport
    #: with *no* conditions at all, which the runner pins bit-identical to
    #: the direct twin.
    partition_components: Tuple[int, ...] = (2, 3)
    p_partition: float = 0.12
    degraded_fractions: Tuple[float, ...] = (0.2, 0.5)
    link_loss_rates: Tuple[float, ...] = (0.3, 0.6, 1.0)
    link_delay_choices: Tuple[int, ...] = (0, 1)
    nat_fractions: Tuple[float, ...] = (0.0, 0.1, 0.2)
    p_asymmetry: float = 0.12
    free_rider_fractions: Tuple[float, ...] = (0.1, 0.25, 0.5)
    p_free_riders: float = 0.12
    #: Per churn event: probability the departure is a crash (profile
    #: snapshot restored on rejoin) instead of a graceful resume.
    p_crash: float = 0.4
    p_community_churn: float = 0.1
    p_zero_adversarial: float = 0.05

    @classmethod
    def adversarial(cls) -> "GeneratorRanges":
        """The nightly ``--adversarial`` profile: fault rates turned up.

        Same dimensions, heavier weights -- most scenarios carry at least
        one adversarial condition, so a 50-seed batch exercises every
        condition (and their compositions) many times over.
        """
        return cls(
            p_churn=0.5,
            p_partition=0.35,
            p_asymmetry=0.3,
            p_free_riders=0.3,
            p_crash=0.6,
            p_community_churn=0.25,
            p_zero_adversarial=0.08,
        )

    def capped(self, max_users: int) -> "GeneratorRanges":
        """A copy whose scenarios never exceed ``max_users`` users.

        The PR-gate fuzz smoke runs capped (fast feedback); the nightly
        batch runs uncapped and owns the large-N coverage.
        """
        if max_users < 8:
            raise ValueError("max_users must be at least 8")
        lo, hi = self.users
        large_lo, large_hi = self.large_users
        return replace(
            self,
            users=(min(lo, max_users), min(hi, max_users)),
            large_users=(min(large_lo, max_users), min(large_hi, max_users)),
            p_large_users=0.0 if max_users < large_lo else self.p_large_users,
        )


class ScenarioGenerator:
    """Deterministic, indexed sampling of :class:`ScenarioSpec` values."""

    def __init__(self, master_seed: int = 0, ranges: Optional[GeneratorRanges] = None) -> None:
        self.master_seed = master_seed
        self.ranges = ranges or GeneratorRanges()

    def spec(self, index: int) -> ScenarioSpec:
        """The ``index``-th scenario of this generator's stream."""
        if index < 0:
            raise ValueError("index must be non-negative")
        rng = random.Random(f"{self.master_seed}/simtest/scenario/{index}")
        r = self.ranges

        num_users = rng.randint(*r.users)
        network_size = min(rng.randint(*r.network_size), num_users - 1)
        lazy_cycles = rng.randint(*r.lazy_cycles)
        eager_cycles = rng.randint(*r.eager_cycles)

        # Large-N override from an independent stream: enabling or tuning it
        # leaves every small scenario of the stream bit-identical.
        if r.p_large_users > 0.0:
            large_rng = random.Random(f"{self.master_seed}/simtest/large/{index}")
            if large_rng.random() < r.p_large_users:
                lo, hi = r.large_users
                num_users = max(
                    num_users,
                    round(math.exp(large_rng.uniform(math.log(lo), math.log(hi)))),
                )
                lazy_cycles = min(lazy_cycles, large_rng.randint(2, 4))
                eager_cycles = min(eager_cycles, large_rng.randint(4, 8))

        transport, loss_rate, delay_cycles = self._sample_conditions(rng)
        churn = self._sample_churn(rng, lazy_cycles, eager_cycles)
        dynamics = self._sample_dynamics(rng, lazy_cycles)

        # Remaining main-stream draws, in the historical order (hoisted out
        # of the constructor call so the independent adversarial streams
        # below can use ``num_communities`` without perturbing this stream).
        num_items = num_users * rng.randint(5, 9)
        num_communities = rng.randint(3, 6)
        mean_actions_per_user = rng.randint(14, 30)
        dataset_seed = rng.randrange(2**16)
        storage = min(rng.randint(*r.storage), network_size)
        random_view_size = rng.randint(*r.random_view)
        k = rng.randint(*r.k)
        alpha = rng.choice(r.alphas)
        exchange_size = rng.randint(*r.exchange_size)
        digest_bits = rng.choice((512, 1_024, 2_048))
        digest_hashes = rng.randint(3, 6)
        num_queries = rng.randint(*r.queries)
        seed = rng.randrange(2**16)

        # Worker-count dimension from an independent stream (same pattern as
        # the large-N override: the main scenario stream is untouched).
        workers = 1
        engine_executor = "fork"
        if r.p_workers > 0.0 and r.worker_choices:
            worker_rng = derive_rng(self.master_seed, "simtest", "workers", index)
            if worker_rng.random() < r.p_workers:
                workers = worker_rng.choice(r.worker_choices)
                # Fork and pool executors are both pinned bit-identical to
                # the serial twin; fuzz alternates between them.
                engine_executor = worker_rng.choice(("fork", "pool"))

        # Adversarial dimensions, one independent stream each.
        partition = self._sample_partition(index, lazy_cycles + eager_cycles)
        asymmetry = self._sample_asymmetry(index)
        free_rider_fraction = self._sample_free_riders(index)
        churn = self._sample_crash_modes(index, churn)
        community_churn = self._sample_community_churn(
            index, lazy_cycles, eager_cycles, num_communities
        )
        if partition is not None or asymmetry is not None:
            transport = "conditioned"
        elif self._sample_zero_adversarial(index):
            # Conditioned transport with no conditions at all: the runner
            # pins its fingerprint bit-identical to the direct twin.
            transport, loss_rate, delay_cycles = ("conditioned", 0.0, 0)

        return ScenarioSpec(
            master_seed=self.master_seed,
            index=index,
            num_users=num_users,
            num_items=num_items,
            num_tags=num_users * 2,
            num_communities=num_communities,
            mean_actions_per_user=mean_actions_per_user,
            dataset_seed=dataset_seed,
            network_size=network_size,
            storage=storage,
            random_view_size=random_view_size,
            k=k,
            alpha=alpha,
            exchange_size=exchange_size,
            digest_bits=digest_bits,
            digest_hashes=digest_hashes,
            transport=transport,
            loss_rate=loss_rate,
            delay_cycles=delay_cycles,
            partition=partition,
            asymmetry=asymmetry,
            free_rider_fraction=free_rider_fraction,
            workers=workers,
            engine_executor=engine_executor,
            lazy_cycles=lazy_cycles,
            eager_cycles=eager_cycles,
            num_queries=num_queries,
            churn=churn,
            community_churn=community_churn,
            dynamics=dynamics,
            seed=seed,
        )

    def specs(self, count: int, start: int = 0):
        """Iterate ``count`` consecutive specs starting at ``start``."""
        for index in range(start, start + count):
            yield self.spec(index)

    # -- sampling pieces ------------------------------------------------------

    def _sample_conditions(self, rng: random.Random) -> Tuple[str, float, int]:
        r = self.ranges
        draw = rng.random()
        if draw < r.p_zero_conditions:
            # Stochastic transports at zero rates: the runner double-checks
            # these degrade bit-identically to the direct wire.
            return (rng.choice(("lossy", "latency")), 0.0, 0)
        if draw < r.p_zero_conditions + r.p_lossy:
            return ("lossy", rng.choice(r.loss_rates), 0)
        if draw < r.p_zero_conditions + r.p_lossy + r.p_latency:
            loss = rng.choice((0.0,) + r.loss_rates)
            return ("latency", loss, rng.choice(r.delay_choices))
        return ("direct", 0.0, 0)

    def _sample_churn(
        self, rng: random.Random, lazy_cycles: int, eager_cycles: int
    ) -> Tuple[ChurnEvent, ...]:
        if rng.random() >= self.ranges.p_churn:
            return ()
        events = []
        for _ in range(rng.randint(1, 2)):
            phase = rng.choice((PHASE_LAZY, PHASE_EAGER))
            horizon = lazy_cycles if phase == PHASE_LAZY else eager_cycles
            cycle = rng.randint(1, max(1, horizon - 1))
            # The rejoin must land on a cycle that actually runs (< horizon);
            # when no such cycle exists the departure is simply permanent.
            rejoin_after = 0
            latest_rejoin = horizon - 1 - cycle
            if latest_rejoin >= 1 and rng.random() < self.ranges.p_rejoin:
                rejoin_after = rng.randint(1, latest_rejoin)
            events.append(
                ChurnEvent(
                    phase=phase,
                    cycle=cycle,
                    fraction=rng.choice((0.1, 0.2, 0.3, 0.5)),
                    rejoin_after=rejoin_after,
                )
            )
        # At most one event per (phase, cycle) keeps schedules unambiguous.
        seen = set()
        unique = []
        for event in events:
            key = (event.phase, event.cycle)
            if key not in seen:
                seen.add(key)
                unique.append(event)
        return tuple(unique)

    def _sample_partition(self, index: int, total_cycles: int) -> Optional[PartitionSpec]:
        r = self.ranges
        if r.p_partition <= 0.0 or total_cycles < 2:
            return None
        rng = derive_rng(self.master_seed, "simtest", "partition", index)
        if rng.random() >= r.p_partition:
            return None
        split = rng.randint(0, total_cycles - 2)
        # The heal cycle may land on (or beyond) the final cycle, in which
        # case the cut simply persists to the end of the run.
        heal = rng.randint(split + 1, total_cycles)
        return PartitionSpec(
            components=rng.choice(r.partition_components),
            split_cycle=split,
            heal_cycle=heal,
        )

    def _sample_asymmetry(self, index: int) -> Optional[AsymmetrySpec]:
        r = self.ranges
        if r.p_asymmetry <= 0.0:
            return None
        rng = derive_rng(self.master_seed, "simtest", "asymmetry", index)
        if rng.random() >= r.p_asymmetry:
            return None
        return AsymmetrySpec(
            degraded_fraction=rng.choice(r.degraded_fractions),
            link_loss_rate=rng.choice(r.link_loss_rates),
            link_delay_cycles=rng.choice(r.link_delay_choices),
            nat_fraction=rng.choice(r.nat_fractions),
        )

    def _sample_free_riders(self, index: int) -> float:
        r = self.ranges
        if r.p_free_riders <= 0.0:
            return 0.0
        rng = derive_rng(self.master_seed, "simtest", "freeriders", index)
        if rng.random() >= r.p_free_riders:
            return 0.0
        return rng.choice(r.free_rider_fractions)

    def _sample_crash_modes(
        self, index: int, churn: Tuple[ChurnEvent, ...]
    ) -> Tuple[ChurnEvent, ...]:
        r = self.ranges
        if not churn or r.p_crash <= 0.0:
            return churn
        rng = derive_rng(self.master_seed, "simtest", "crash", index)
        return tuple(
            replace(event, mode="crash") if rng.random() < r.p_crash else event
            for event in churn
        )

    def _sample_community_churn(
        self, index: int, lazy_cycles: int, eager_cycles: int, num_communities: int
    ) -> Tuple[CommunityChurnEvent, ...]:
        r = self.ranges
        if r.p_community_churn <= 0.0:
            return ()
        rng = derive_rng(self.master_seed, "simtest", "community", index)
        if rng.random() >= r.p_community_churn:
            return ()
        phase = rng.choice((PHASE_LAZY, PHASE_EAGER))
        horizon = lazy_cycles if phase == PHASE_LAZY else eager_cycles
        cycle = rng.randint(1, max(1, horizon - 1))
        if cycle >= horizon:
            return ()
        rejoin_after = 0
        latest_rejoin = horizon - 1 - cycle
        if latest_rejoin >= 1 and rng.random() < r.p_rejoin:
            rejoin_after = rng.randint(1, latest_rejoin)
        mode = "crash" if rng.random() < r.p_crash else "resume"
        return (
            CommunityChurnEvent(
                phase=phase,
                cycle=cycle,
                community=rng.randrange(num_communities),
                rejoin_after=rejoin_after,
                mode=mode,
            ),
        )

    def _sample_zero_adversarial(self, index: int) -> bool:
        r = self.ranges
        if r.p_zero_adversarial <= 0.0:
            return False
        rng = derive_rng(self.master_seed, "simtest", "zero-adversarial", index)
        return rng.random() < r.p_zero_adversarial

    def _sample_dynamics(self, rng: random.Random, lazy_cycles: int) -> Optional[DynamicsSpec]:
        if rng.random() >= self.ranges.p_dynamics:
            return None
        return DynamicsSpec(
            at_cycle=rng.randint(1, max(1, lazy_cycles - 1)),
            change_fraction=rng.choice((0.1, 0.2, 0.4)),
            mean_new_actions=rng.randint(2, 8),
        )
