"""Cycle-driven peer-to-peer simulator (PeerSim-equivalent substrate)."""

from .engine import (
    PHASE_EAGER,
    PHASE_LAZY,
    ScheduledEvent,
    SimulationEngine,
)
from .network import Network, NodeOfflineError, UnknownNodeError
from .node import Node
from .rng import SeededRngFactory
from .stats import (
    KIND_COMMON_ITEMS,
    KIND_DIGESTS,
    KIND_FULL_PROFILES,
    KIND_PARTIAL_RESULT,
    KIND_RANDOM_VIEW,
    KIND_REMAINING_FORWARD,
    KIND_REMAINING_RETURN,
    StatsCollector,
    TrafficRecord,
)

__all__ = [
    "KIND_COMMON_ITEMS",
    "KIND_DIGESTS",
    "KIND_FULL_PROFILES",
    "KIND_PARTIAL_RESULT",
    "KIND_RANDOM_VIEW",
    "KIND_REMAINING_FORWARD",
    "KIND_REMAINING_RETURN",
    "Network",
    "Node",
    "NodeOfflineError",
    "PHASE_EAGER",
    "PHASE_LAZY",
    "ScheduledEvent",
    "SeededRngFactory",
    "SimulationEngine",
    "StatsCollector",
    "TrafficRecord",
    "UnknownNodeError",
]
