"""Adversarial network conditions: partitions, asymmetric links, NAT nodes.

The paper's evaluation assumes benign churn and uniform links.  This module
supplies the adversarial side as *composable, deterministic* fault-injection
conditions layered on the transport:

* :class:`PartitionSpec` -- a seeded split of the population into ``>= 2``
  components between a split cycle and a heal cycle (global engine cycles).
  While the cut is active, every freshly sent message whose endpoints sit on
  opposite sides is dropped -- and, like a lossy drop, still charged to its
  sender (the connection attempt happens; the paper's cost model charges at
  send time).  Envelopes already in flight across the cut are *held* until
  the heal cycle instead of being lost: their bytes were spent exactly once,
  and delivery resumes when the components merge.

* :class:`AsymmetrySpec` -- per-*direction* link degradation.  A seeded
  fraction of ordered ``(sender, receiver)`` pairs is marked degraded; a
  degraded direction adds an extra loss roll and an extra delivery delay on
  top of whatever the base loss/latency conditions already impose.  Because
  directions are sampled independently, ``a -> b`` can be perfect while
  ``b -> a`` loses every message.  A seeded ``nat_fraction`` of nodes
  additionally refuses *inbound* connections entirely (NAT without hole
  punching): contacting them fails like contacting an offline node, before
  any bytes are charged, while their own outbound traffic flows normally.

Both specs are frozen config objects (carried by ``P3QConfig`` and
``ScenarioSpec``) with hardened constructors, and every random decision is
drawn from its own seeded stream -- independent of the node RNGs and of the
base loss/delay streams -- so a zero-rate condition consumes no randomness
and a conditioned transport with no conditions is bit-identical to
:class:`~repro.simulator.transport.DirectTransport`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from .transport import (
    Envelope,
    LatencyTransport,
    Message,
    _validate_delay_cycles,
)


def validate_fraction(name: str, value: float) -> float:
    """A population/link fraction must be a finite real number in [0, 1].

    Mirrors ``_validate_loss_rate``: booleans are almost certainly a
    mixed-up argument and NaN would silently disable comparison-based
    sampling, so both are rejected.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def _validate_count(name: str, value: int, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")
    return value


@dataclass(frozen=True, slots=True)
class PartitionSpec:
    """A network partition active over ``[split_cycle, heal_cycle)``.

    Cycles are *global* engine cycles (counted across the lazy and eager
    phases).  The population is dealt into ``components`` groups by a seeded
    shuffle, so components are balanced and every component is non-empty
    whenever the population allows.
    """

    components: int = 2
    split_cycle: int = 0
    heal_cycle: int = 1

    def __post_init__(self) -> None:
        _validate_count("components", self.components, 2)
        _validate_count("split_cycle", self.split_cycle, 0)
        _validate_count("heal_cycle", self.heal_cycle, 0)
        if self.heal_cycle <= self.split_cycle:
            raise ValueError(
                "heal_cycle must come strictly after split_cycle, got "
                f"split={self.split_cycle!r}, heal={self.heal_cycle!r}"
            )


@dataclass(frozen=True, slots=True)
class AsymmetrySpec:
    """Per-direction link degradation plus NAT-like unreachable-inbound nodes.

    A ``degraded_fraction`` of ordered node pairs suffers an extra
    ``link_loss_rate`` drop roll and up to ``link_delay_cycles`` extra delay
    per deferrable message; a ``nat_fraction`` of nodes rejects all inbound
    connections.  The all-zero spec (``is_null``) imposes nothing and
    consumes no randomness.
    """

    degraded_fraction: float = 0.0
    link_loss_rate: float = 0.0
    link_delay_cycles: int = 0
    nat_fraction: float = 0.0

    def __post_init__(self) -> None:
        validate_fraction("degraded_fraction", self.degraded_fraction)
        validate_fraction("link_loss_rate", self.link_loss_rate)
        _validate_delay_cycles(self.link_delay_cycles)
        validate_fraction("nat_fraction", self.nat_fraction)

    @property
    def is_null(self) -> bool:
        """True when this spec perturbs nothing at all."""
        return (
            self.degraded_fraction == 0.0
            and self.link_loss_rate == 0.0
            and self.link_delay_cycles == 0
            and self.nat_fraction == 0.0
        )


class ConditionedTransport(LatencyTransport):
    """Composes partition + asymmetric-link conditions with loss/latency.

    Condition evaluation order per message (matching the base delivery
    path): NAT inbound block (before accounting, like an offline peer) ->
    byte accounting -> partition cut drop (accounted, counted in
    :attr:`cut_drops`) -> base loss roll -> degraded-link loss roll -> base
    delay roll + degraded-link delay.  In-flight envelopes that would cross
    an active cut when drained are re-queued to the heal cycle.
    """

    name = "conditioned"

    def __init__(
        self,
        seed: int = 0,
        loss_rate: float = 0.0,
        delay_cycles: int = 0,
        partition: Optional[PartitionSpec] = None,
        asymmetry: Optional[AsymmetrySpec] = None,
    ) -> None:
        super().__init__(delay_cycles, seed=seed, loss_rate=loss_rate)
        if partition is not None and not isinstance(partition, PartitionSpec):
            raise TypeError(f"partition must be a PartitionSpec, got {partition!r}")
        if asymmetry is not None and not isinstance(asymmetry, AsymmetrySpec):
            raise TypeError(f"asymmetry must be an AsymmetrySpec, got {asymmetry!r}")
        self.partition = partition
        self.asymmetry = asymmetry
        self._seed = seed
        #: node id -> partition component index; assigned lazily because the
        #: transport is attached before the population is registered.
        self._components: Optional[Dict[int, int]] = None
        self._nat: Optional[FrozenSet[int]] = None
        #: Memoized per-(sender, receiver) degraded decisions.  Each ordered
        #: pair gets its own hash-seeded stream, so the decision does not
        #: depend on the order in which links are first exercised.
        self._degraded: Dict[Tuple[int, int], bool] = {}
        self._link_drop_rng = random.Random(f"{seed}/transport/asymmetry/loss")
        self._link_delay_rng = random.Random(f"{seed}/transport/asymmetry/delay")
        #: Messages dropped at an active partition cut (accounted drops).
        self.cut_drops = 0

    # -- condition state -------------------------------------------------------

    def partition_component(self, node_id: int) -> int:
        """The partition component a node belongs to (0 with no partition)."""
        if self.partition is None:
            return 0
        components = self._components
        if components is None:
            components = self._assign_components()
        return components[node_id]

    def _assign_components(self) -> Dict[int, int]:
        ids = self._network.node_ids()
        rng = random.Random(f"{self._seed}/transport/partition")
        rng.shuffle(ids)
        k = self.partition.components
        self._components = {nid: index % k for index, nid in enumerate(ids)}
        return self._components

    def partition_active(self, cycle: Optional[int] = None) -> bool:
        """Whether the cut is up at ``cycle`` (default: the current cycle)."""
        partition = self.partition
        if partition is None:
            return False
        if cycle is None:
            cycle = self._network.current_cycle
        return partition.split_cycle <= cycle < partition.heal_cycle

    def _crosses_cut(self, sender: int, receiver: int) -> bool:
        return self.partition_component(sender) != self.partition_component(receiver)

    def nat_ids(self) -> FrozenSet[int]:
        """Ids of nodes that refuse inbound connections (stable, seeded)."""
        nat = self._nat
        if nat is None:
            asymmetry = self.asymmetry
            if asymmetry is None or asymmetry.nat_fraction <= 0.0:
                nat = frozenset()
            else:
                ids = self._network.node_ids()
                count = int(round(asymmetry.nat_fraction * len(ids)))
                rng = random.Random(f"{self._seed}/transport/nat")
                nat = frozenset(rng.sample(ids, count))
            self._nat = nat
        return nat

    def _link_degraded(self, sender: int, receiver: int) -> bool:
        key = (sender, receiver)
        hit = self._degraded.get(key)
        if hit is None:
            fraction = self.asymmetry.degraded_fraction
            hit = self._degraded[key] = bool(
                fraction > 0.0
                and random.Random(
                    f"{self._seed}/transport/asymmetry/link/{sender}/{receiver}"
                ).random()
                < fraction
            )
        return hit

    # -- condition hooks -------------------------------------------------------

    def _inbound_blocked(self, sender: int, receiver: int) -> bool:
        return receiver in self.nat_ids()

    def _roll_drop(self, message: Message, sender: int, receiver: int) -> bool:
        if (
            self.partition is not None
            and self.partition_active()
            and self._crosses_cut(sender, receiver)
        ):
            self.cut_drops += 1
            return True
        if super()._roll_drop(message, sender, receiver):
            return True
        asymmetry = self.asymmetry
        if (
            asymmetry is not None
            and asymmetry.link_loss_rate > 0.0
            and self._link_degraded(sender, receiver)
        ):
            return self._link_drop_rng.random() < asymmetry.link_loss_rate
        return False

    def _roll_delay(self, message: Message, sender: int, receiver: int) -> int:
        delay = super()._roll_delay(message, sender, receiver)
        asymmetry = self.asymmetry
        if (
            asymmetry is not None
            and asymmetry.link_delay_cycles > 0
            and message.DEFERRABLE
            and self._link_degraded(sender, receiver)
        ):
            delay += self._link_delay_rng.randint(1, asymmetry.link_delay_cycles)
        return delay

    def _drain_blocked(self, envelope: Envelope) -> Optional[int]:
        partition = self.partition
        if (
            partition is not None
            and self.partition_active()
            and self._crosses_cut(envelope.sender, envelope.receiver)
        ):
            return partition.heal_cycle - self._network.current_cycle
        return None
