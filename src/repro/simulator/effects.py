"""Wire effects: the sans-io boundary between protocol logic and a runtime.

The protocol modules (:mod:`repro.gossip.peer_sampling`,
:mod:`repro.gossip.profile_exchange`, :mod:`repro.p3q.eager`) are written as
*generators* that yield one of the effect types below whenever they need the
outside world and receive the outcome back at the ``yield``:

===========================  ==================================  ===========
effect                       meaning                             sent back
===========================  ==================================  ===========
:class:`RequestEffect`       round-trip send (request + reply)   ``Dispatch``
:class:`SendEffect`          one-way, fire-and-forget send       status str
:class:`ProbeEffect`         "is this peer reachable right now"  ``bool``
:class:`PeerDigestEffect`    the subject's current own digest    digest
===========================  ==================================  ===========

A generator never touches the :class:`~repro.simulator.network.Network`, the
transport or the engine -- which is what makes the same protocol code
drivable by two runtimes:

* :func:`drive` executes a generator against a live simulator network,
  issuing the exact transport calls the pre-refactor code made in the exact
  order (the cycle engine stays bit-identical -- pinned by the transport
  golden fixture);
* the asyncio runtime (:mod:`repro.service.runtime`) awaits each effect over
  a datagram wire instead, with timers replacing engine cycles.

:class:`PeerDigestEffect` deserves a note: the cycle engine answers it by
peeking at the subject's live node (she was just contacted, so her current
digest is what the seed used), which a real network cannot do.  The effect
therefore carries the *fallback* digest the caller already holds (the
random-view copy); the asyncio driver answers with that, trading a
possibly-stale version stamp for wire-realism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .transport import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gossip.digest import ProfileDigest
    from .network import Network

#: The type of a sans-io protocol operation: yields effects, receives their
#: outcomes, returns the operation's result.
WireEffects = Generator["Effect", Any, Any]


class Effect:
    """Base of the wire-effect vocabulary."""

    __slots__ = ()


class RequestEffect(Effect):
    """A round-trip send; the driver answers with a ``Dispatch``."""

    __slots__ = ("sender", "receiver", "message", "query_id", "account")

    def __init__(
        self,
        sender: int,
        receiver: int,
        message: Message,
        query_id: Optional[int] = None,
        account: bool = True,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.message = message
        self.query_id = query_id
        self.account = account


class SendEffect(Effect):
    """A one-way send; the driver answers with the dispatch status string."""

    __slots__ = ("sender", "receiver", "message", "query_id", "account")

    def __init__(
        self,
        sender: int,
        receiver: int,
        message: Message,
        query_id: Optional[int] = None,
        account: bool = True,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.message = message
        self.query_id = query_id
        self.account = account


class ProbeEffect(Effect):
    """A reachability check; the driver answers ``True`` when the peer is up."""

    __slots__ = ("node_id",)

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id


class PeerDigestEffect(Effect):
    """Ask for the subject's current own digest (see the module docstring)."""

    __slots__ = ("node_id", "fallback")

    def __init__(self, node_id: int, fallback: "ProfileDigest") -> None:
        self.node_id = node_id
        self.fallback = fallback


def drive(gen: WireEffects, network: "Network"):
    """Run a wire-effect generator against a live simulator network.

    This is the cycle engine's side of the sans-io split: every effect maps
    to the same transport / network call the pre-refactor protocol methods
    made inline, in the same order, so a driven generator is bit-identical
    to the code it replaced.
    """
    transport = network.transport
    try:
        effect = next(gen)
        while True:
            etype = type(effect)
            if etype is RequestEffect:
                result = transport.request(
                    effect.sender,
                    effect.receiver,
                    effect.message,
                    query_id=effect.query_id,
                    account=effect.account,
                )
            elif etype is SendEffect:
                result = transport.send(
                    effect.sender,
                    effect.receiver,
                    effect.message,
                    query_id=effect.query_id,
                    account=effect.account,
                )
            elif etype is ProbeEffect:
                result = network.try_contact(effect.node_id) is not None
            elif etype is PeerDigestEffect:
                result = network.node(effect.node_id).own_digest()
            else:
                raise TypeError(f"unknown wire effect {effect!r}")
            effect = gen.send(result)
    except StopIteration as stop:
        return stop.value
