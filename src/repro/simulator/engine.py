"""Cycle-driven simulation engine.

The engine advances the simulation one *cycle* at a time (PeerSim's
cycle-driven model).  Within a cycle every online node executes its protocol
once, in a per-cycle shuffled order so that no node is systematically
favoured.  Separate logical phases ("lazy", "eager") can be stepped
independently and with different per-cycle real-time durations, mirroring
the paper's 1-minute lazy cycles and 5-second eager cycles.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .network import Network
from .rng import SeededRngFactory


@contextmanager
def paused_gc():
    """Suspend automatic garbage collection for a cycle batch.

    The simulator's heap is overwhelmingly *acyclic* -- profiles, digests,
    cached probe rows and traffic rows are containers of ints, tuples and
    frozensets, all freed by reference counting -- yet its sheer size makes
    every generational collection walk millions of live objects.  Measured
    on an N=10,000 run, the collector fired two thousand times across three
    cycles and reclaimed fewer than a hundred objects while accounting for
    more than half the wall clock.  Batches therefore run with automatic
    collection paused; the previous state is restored afterwards (nested
    pauses are safe: an inner exit leaves collection disabled until the
    outermost guard re-enables it).  No explicit collection is triggered on
    exit -- the rare cyclic garbage simply waits for the caller's next
    natural collection.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()

#: Phase names used by P3Q; the engine accepts any string.
PHASE_LAZY = "lazy"
PHASE_EAGER = "eager"

#: A hook invoked with (engine, cycle) either before or after a cycle.
CycleHook = Callable[["SimulationEngine", int], None]


@dataclass
class ScheduledEvent:
    """An action to run at the start of a specific cycle of a phase."""

    cycle: int
    phase: str
    action: Callable[["SimulationEngine"], None]
    description: str = ""


class SimulationEngine:
    """Drives a :class:`~repro.simulator.network.Network` through cycles."""

    def __init__(self, network: Network, seed: int = 0) -> None:
        self.network = network
        self.rng_factory = SeededRngFactory(seed)
        self._scheduler_rng = self.rng_factory.for_purpose("scheduler")
        #: Per-phase cycle counters (how many cycles of each phase have run).
        self.cycle_counts: Dict[str, int] = {}
        #: Events indexed by ``(phase, cycle)`` so each cycle pops its own
        #: bucket in O(1) instead of rescanning and rebuilding the full list.
        self._events: Dict[Tuple[str, int], List[ScheduledEvent]] = {}
        self._pre_hooks: List[CycleHook] = []
        self._post_hooks: List[CycleHook] = []
        #: Global cycle counter across all phases, used for traffic accounting.
        self.global_cycle = 0
        #: Phase of the cycle currently (or most recently) running; observers
        #: (e.g. simtest invariant checkers) read it instead of threading the
        #: phase through every callback.
        self.current_phase: Optional[str] = None

    # -- configuration --------------------------------------------------------

    def schedule(self, event: ScheduledEvent) -> None:
        """Register an event (e.g. churn, profile change) for a future cycle."""
        if event.cycle < 0:
            raise ValueError("event cycle must be non-negative")
        self._events.setdefault((event.phase, event.cycle), []).append(event)

    def pending_events(self) -> int:
        """Number of scheduled events that have not fired yet."""
        return sum(len(bucket) for bucket in self._events.values())

    def add_pre_cycle_hook(self, hook: CycleHook) -> None:
        self._pre_hooks.append(hook)

    def add_post_cycle_hook(self, hook: CycleHook) -> None:
        self._post_hooks.append(hook)

    def cycles_run(self, phase: str) -> int:
        return self.cycle_counts.get(phase, 0)

    # -- execution ------------------------------------------------------------

    def run_cycle(
        self,
        phase: str = PHASE_LAZY,
        participants: Optional[Sequence[int]] = None,
    ) -> int:
        """Run one cycle of ``phase``; returns the phase-local cycle index.

        ``participants`` restricts which nodes act this cycle (the eager mode
        only involves nodes that hold a pending query); when omitted every
        online node acts.
        """
        cycle_index = self.cycle_counts.get(phase, 0)
        self.current_phase = phase
        self.network.current_cycle = self.global_cycle

        for event in self._events.pop((phase, cycle_index), ()):
            event.action(self)

        # Deliver in-flight messages after events so that churn applies first
        # (a message to a freshly departed node is lost, as on a real wire).
        transport = self.network.transport
        if transport.pending_count():
            transport.drain()

        for hook in self._pre_hooks:
            hook(self, cycle_index)

        # ``online_ids`` hands back a fresh list, so it doubles as the
        # shuffle buffer -- no second O(N) copy per cycle.
        if participants is None:
            order = self.network.online_ids()
        else:
            order = [nid for nid in participants if self.network.is_online(nid)]
        self._scheduler_rng.shuffle(order)
        for node_id in order:
            # A node taken offline earlier in this very cycle must not act.
            if self.network.is_online(node_id):
                self.network.node(node_id).on_cycle(cycle_index, phase)

        for hook in self._post_hooks:
            hook(self, cycle_index)

        # Cycle boundary: fan the profiles that changed during this cycle out
        # to the incremental-runtime listeners (digest-cache eviction).  Quiet
        # cycles flush an empty set at no cost -- invalidation work is
        # O(changes), never O(N).
        self.network.flush_dirty_profiles()
        # Bounded-memory accounting: fold the traffic-row buffer into the
        # aggregates every ``flush_every`` cycles (no-op when unset).
        stats = self.network.stats
        if stats.flush_every is not None:
            stats.maybe_flush()

        self.cycle_counts[phase] = cycle_index + 1
        self.global_cycle += 1
        return cycle_index

    def run_cycles(
        self,
        count: int,
        phase: str = PHASE_LAZY,
        participants: Optional[Sequence[int]] = None,
        callback: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Run ``count`` consecutive cycles of ``phase``.

        ``callback`` is called with the phase-local cycle index after each
        cycle; experiments use it to record per-cycle metrics without
        subclassing the engine.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        with paused_gc():
            for _ in range(count):
                index = self.run_cycle(phase=phase, participants=participants)
                if callback is not None:
                    callback(index)
