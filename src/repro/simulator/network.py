"""Simulated network: node registry, reachability, churn, traffic accounting.

The simulation follows PeerSim's cycle-driven model.  All peer interaction
flows through the attached :class:`~repro.simulator.transport.Transport` as
explicit messages; the default :class:`~repro.simulator.transport.DirectTransport`
reproduces synchronous, lossless exchanges with no latency below the cycle
granularity, while lossy/latency transports perturb delivery without any
protocol change.  What the network itself provides is:

* a registry of nodes with an online/offline flag (churn);
* the guard that an exchange with an offline peer fails, so protocols must
  handle unavailable neighbours;
* byte-level accounting of every transmission (invoked by the transport's
  accounting hook) through the attached
  :class:`~repro.simulator.stats.StatsCollector`.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .node import Node
from .stats import StatsCollector
from .transport import DirectTransport, Transport

#: A callback receiving the ids of profiles that changed during a cycle.
DirtyProfileListener = Callable[[FrozenSet[int]], None]


class UnknownNodeError(KeyError):
    """Raised when addressing a node id that was never registered."""


class NodeOfflineError(RuntimeError):
    """Raised when an exchange is attempted with an offline node."""


class Network:
    """Registry of simulated nodes plus churn state and traffic accounting."""

    def __init__(
        self,
        stats: Optional[StatsCollector] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        self._nodes: Dict[int, Node] = {}
        self._online: Dict[int, bool] = {}
        self.stats = stats or StatsCollector()
        #: The wire: every peer interaction is a message routed through here.
        self.transport = transport or DirectTransport()
        self.transport.attach(self)
        #: The engine keeps this up to date so that nodes can attribute
        #: traffic to the cycle in which it happened.
        self.current_cycle = 0
        #: Ids of users whose profiles changed since the last cycle boundary.
        #: The engine drains this set at the end of every cycle and fans it
        #: out to the registered listeners (digest caches, metrics) so that
        #: incremental state is invalidated in O(changes), not O(N).
        self._dirty_profiles: Set[int] = set()
        self._dirty_listeners: List[DirtyProfileListener] = []
        #: Cached sorted online-id tuple; ``None`` after any membership or
        #: churn change.  ``online_ids`` runs once per cycle over the whole
        #: population, and between churn events the answer never changes.
        self._online_cache: Optional[Tuple[int, ...]] = None
        #: Nodes that *may* hold eager-phase work (an own query session or a
        #: forwarded remaining list).  Nodes register themselves when such
        #: state is created; the eager scheduler filters this set instead of
        #: scanning the whole population every cycle, which at N=100,000
        #: with a handful of queries is the difference between O(queries)
        #: and O(N) per eager cycle.
        self._eager_work: Set[int] = set()
        #: Nodes that ever opened an own query session (snapshot closing).
        self._session_holders: Set[int] = set()

    # -- eager work registry ---------------------------------------------------

    def note_eager_work(self, node_id: int) -> None:
        """Register that a node acquired (potential) eager-phase work."""
        self._eager_work.add(node_id)

    def note_query_session(self, node_id: int) -> None:
        """Register that a node opened an own query session."""
        self._session_holders.add(node_id)
        self._eager_work.add(node_id)

    def eager_work_candidates(self) -> List[int]:
        """Sorted ids of nodes that may hold eager work (superset of truth)."""
        return sorted(self._eager_work)

    def retire_eager_work(self, node_id: int) -> None:
        """Drop a node from the candidate set (it proved idle while online)."""
        self._eager_work.discard(node_id)

    def session_holders(self) -> List[int]:
        """Sorted ids of nodes that ever opened a query session."""
        return sorted(self._session_holders)

    # -- incremental-runtime dirty set ----------------------------------------

    def mark_profiles_dirty(self, user_ids: Iterable[int]) -> None:
        """Record that the given users' profiles changed this cycle."""
        self._dirty_profiles.update(user_ids)

    def add_profile_dirty_listener(self, listener: DirtyProfileListener) -> None:
        """Register a callback for the per-cycle dirty-profile flush."""
        self._dirty_listeners.append(listener)

    def pending_dirty_profiles(self) -> FrozenSet[int]:
        """The not-yet-flushed dirty set (read-only peek, no drain).

        The persistent-pool engine reads it at barrier start so profile
        changes applied between cycles reach the shard workers before the
        cycle that prices them; the set itself still drains through
        :meth:`flush_dirty_profiles` at the cycle boundary.
        """
        return frozenset(self._dirty_profiles)

    def flush_dirty_profiles(self) -> FrozenSet[int]:
        """Drain the dirty set and fan it out to the listeners.

        Called by the engine at every cycle boundary; returns the flushed
        set (empty on quiet cycles, which cost nothing).
        """
        if not self._dirty_profiles:
            return frozenset()
        dirty = frozenset(self._dirty_profiles)
        self._dirty_profiles.clear()
        for listener in self._dirty_listeners:
            listener(dirty)
        return dirty

    # -- registration ---------------------------------------------------------

    def add_node(self, node: Node, online: bool = True) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"node id {node.node_id} already registered")
        self._nodes[node.node_id] = node
        self._online[node.node_id] = online
        self._online_cache = None
        node.attach(self)

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        for node in nodes:
            self.add_node(node)

    # -- lookup ---------------------------------------------------------------

    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def require_online(self, node_id: int) -> Node:
        """The node, raising :class:`NodeOfflineError` if it has departed."""
        node = self.node(node_id)
        if not self._online[node_id]:
            raise NodeOfflineError(f"node {node_id} is offline")
        return node

    def try_contact(self, node_id: int) -> Optional[Node]:
        """The node if it exists and is online, else ``None``.

        This is the call protocols use for best-effort exchanges: an offline
        gossip partner is simply skipped, as in the paper's churn evaluation.
        """
        if node_id not in self._nodes:
            return None
        if not self._online[node_id]:
            return None
        return self._nodes[node_id]

    def is_online(self, node_id: int) -> bool:
        return self._online.get(node_id, False)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node_ids(self) -> List[int]:
        return sorted(self._nodes)

    def online_ids(self) -> List[int]:
        cached = self._online_cache
        if cached is None:
            cached = self._online_cache = tuple(
                sorted(nid for nid, online in self._online.items() if online)
            )
        return list(cached)

    def nodes(self) -> Iterator[Node]:
        for node_id in self.node_ids():
            yield self._nodes[node_id]

    def online_nodes(self) -> Iterator[Node]:
        for node_id in self.online_ids():
            yield self._nodes[node_id]

    # -- churn ----------------------------------------------------------------

    def depart(self, node_ids: Iterable[int]) -> None:
        """Take the given nodes offline (simultaneous massive departure)."""
        for node_id in node_ids:
            if node_id not in self._nodes:
                raise UnknownNodeError(node_id)
            if self._online[node_id]:
                self._online[node_id] = False
                self._online_cache = None
                self._nodes[node_id].on_departure()

    def rejoin(self, node_ids: Iterable[int]) -> None:
        """Bring previously departed nodes back online."""
        for node_id in node_ids:
            if node_id not in self._nodes:
                raise UnknownNodeError(node_id)
            if not self._online[node_id]:
                self._online[node_id] = True
                self._online_cache = None
                self._nodes[node_id].on_join()

    # -- traffic accounting ---------------------------------------------------

    def account(
        self,
        sender: int,
        receiver: int,
        kind: str,
        size_bytes: int,
        query_id: Optional[int] = None,
    ) -> None:
        """Record a transmission of ``size_bytes`` from sender to receiver."""
        self.stats.record(
            cycle=self.current_cycle,
            sender=sender,
            receiver=receiver,
            kind=kind,
            size_bytes=size_bytes,
            query_id=query_id,
        )
