"""Base class for simulated nodes.

A node is the simulation-side stand-in for "the user and her underlying
machine".  Concrete protocols (peer sampling, lazy gossip, P3Q) subclass
:class:`Node` and implement :meth:`Node.on_cycle`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .network import Network


class Node:
    """A participant in the cycle-driven simulation."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._network: Optional["Network"] = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, network: "Network") -> None:
        """Called by the network when the node is registered."""
        self._network = network

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise RuntimeError(f"node {self.node_id} is not attached to a network")
        return self._network

    @property
    def online(self) -> bool:
        return self._network is not None and self._network.is_online(self.node_id)

    # -- protocol hooks -------------------------------------------------------

    def on_cycle(self, cycle: int, phase: str) -> None:
        """Execute one protocol cycle.

        ``phase`` distinguishes logical sub-protocols running at different
        frequencies (P3Q uses ``"lazy"`` and ``"eager"``).  The default
        implementation does nothing.
        """

    def on_departure(self) -> None:
        """Hook invoked when the node leaves the system (churn)."""

    def on_join(self) -> None:
        """Hook invoked when the node (re)joins the system."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(node_id={self.node_id})"
