"""Persistent shard worker pool over shared columnar state.

The fork executor of :mod:`repro.simulator.shard` re-forks the whole
simulation every cycle: correct by construction, but the fork itself is a
per-cycle tax that grows with the heap -- at N=1,000,000 the snapshot costs
more than the pricing it buys.  This module replaces the per-cycle fork
with **long-lived worker processes** over the columnar state of
:mod:`repro.data.columnar`:

* **Attach once.**  Workers are forked exactly once, at pool creation, and
  inherit the :class:`~repro.data.columnar.ColumnarStore` (static action
  columns, copy-on-write and never written) plus the
  :class:`~repro.data.columnar.DigestMatrix` whose digest rows and version
  slots live in one ``multiprocessing.shared_memory`` block -- parent-side
  row updates are visible to every worker without pickling a byte.
* **Deltas, not snapshots.**  Each pricing barrier ships only the cycle's
  *dirty set* -- ``(user_id, version, distinct items)`` for profiles that
  changed since the last barrier -- plus the predicted ``(receiver,
  subject)`` pairs for the worker's shard.  Workers keep a tiny overlay
  ``uid -> (version, items)`` over the static store; everything else they
  read straight from shared memory.
* **Pure replies.**  A worker's reply is the same version-tagged
  ``PricedPair`` list the fork executor records: value entries the parent
  installs through :meth:`DigestCache.install_common_entries`, where every
  memo read re-validates versions -- a mispredicted or stale entry is
  recomputed exactly as if it had never been installed.  Bit-identity to
  the serial engine therefore holds for any worker count, exactly as for
  the fork executor (see the merge-barrier contract in
  ``repro/simulator/shard.py``).

Failure is loud, not hanging: a worker that dies mid-barrier raises
:class:`ShardWorkerError` naming the shard and the cycle instead of
blocking forever on the result queue.
"""

from __future__ import annotations

import os
import queue as queue_module
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.columnar import ColumnarStore, DigestMatrix, geometry_mask_cache, mask_int

#: (user_id, version, distinct items tuple) -- one changed profile.
Delta = Tuple[int, int, Tuple[int, ...]]
#: (receiver_id, subject_id) -- one predicted pricing probe.
Pair = Tuple[int, int]

#: Seconds between liveness checks while waiting on the result queue.
_POLL_SECONDS = 0.2

#: Per-worker bound on the ``subject -> (version, bits int)`` cache.
_SUBJECT_BITS_LIMIT = 1 << 16


class ShardWorkerError(RuntimeError):
    """A persistent shard worker died; the barrier cannot complete."""


def _price_pairs(
    store: ColumnarStore,
    matrix: DigestMatrix,
    overlay: Dict[int, Tuple[int, Tuple[int, ...]]],
    subject_bits: Dict[int, Tuple[int, int]],
    pairs: Sequence[Pair],
) -> List[Tuple[int, int, int, int, frozenset]]:
    """Price ``(receiver, subject)`` pairs against columnar state.

    For each pair: the receiver's distinct items (overlay first, static
    store otherwise) are probed against the subject's digest row -- an item
    is common when its probe mask is fully set in the row, the exact
    membership rule of ``BloomFilter.__contains__`` -- and the result is a
    version-tagged entry for :meth:`DigestCache.install_common_entries`.
    Pairs whose digest row is not built yet (version ``-1``) are skipped:
    the serial apply phase prices them on demand.
    """
    entries: List[Tuple[int, int, int, int, frozenset]] = []
    append = entries.append
    num_bits, num_hashes = matrix.num_bits, matrix.num_hashes
    mask_cache = geometry_mask_cache(num_bits, num_hashes)
    mask_cache_get = mask_cache.get
    for receiver_id, subject_id in pairs:
        receiver_row = store.row_of(receiver_id)
        subject_row = store.row_of(subject_id)
        if receiver_row is None or subject_row is None:
            continue
        subject_version = matrix.row_version(subject_row)
        if subject_version < 0:
            continue
        state = overlay.get(receiver_id)
        if state is not None:
            receiver_version, receiver_items = state
        else:
            receiver_version = store.versions[receiver_row]
            receiver_items = store.distinct_items_of_row(receiver_row)
        cached = subject_bits.get(subject_id)
        if cached is None or cached[0] != subject_version:
            if len(subject_bits) >= _SUBJECT_BITS_LIMIT:
                subject_bits.clear()
            cached = (subject_version, matrix.row_bits_int(subject_row))
            subject_bits[subject_id] = cached
        bits = cached[1]
        common = []
        common_append = common.append
        for item in receiver_items:
            mask = mask_cache_get(item)
            if mask is None:
                mask = mask_int(item, num_bits, num_hashes)
            if bits & mask == mask:
                common_append(item)
        append(
            (receiver_id, receiver_version, subject_id, subject_version, frozenset(common))
        )
    return entries


def _worker_main(
    worker_index: int,
    store: ColumnarStore,
    matrix: DigestMatrix,
    work_queue,
    result_queue,
) -> None:
    """Worker loop: attach to the shared state once, serve barriers forever.

    Messages: ``("price", cycle, pairs, deltas)`` -> ``("priced",
    worker_index, cycle, entries)``; ``("build", rows)`` -> ``("built",
    worker_index, count)``; ``("stop",)`` ends the loop.  Any exception is
    reported as ``("error", worker_index, cycle, repr)`` -- the worker
    stays alive, the parent decides.
    """
    overlay: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
    subject_bits: Dict[int, Tuple[int, int]] = {}
    while True:
        try:
            message = work_queue.get()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "build":
            _, rows = message
            try:
                built = matrix.build_rows(store, rows)
                result_queue.put(("built", worker_index, built))
            except Exception as exc:  # report, don't die
                result_queue.put(("error", worker_index, -1, repr(exc)))
            continue
        # kind == "price"
        _, cycle, pairs, deltas = message
        for user_id, version, items in deltas:
            overlay[user_id] = (version, items)
        try:
            entries = _price_pairs(store, matrix, overlay, subject_bits, pairs)
            result_queue.put(("priced", worker_index, cycle, entries))
        except Exception as exc:
            result_queue.put(("error", worker_index, cycle, repr(exc)))


def _shutdown(processes, work_queues) -> None:
    """Stop the workers; used both by ``close()`` and the GC finalizer."""
    for work_queue in work_queues:
        try:
            work_queue.put(("stop",))
        except (OSError, ValueError):
            pass
    for process in processes:
        process.join(timeout=2.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
    for work_queue in work_queues:
        try:
            work_queue.close()
        except (OSError, ValueError):
            pass


class PersistentShardPool:
    """``workers`` long-lived pricing processes over shared columnar state.

    Created once (the fork is the attach), reused for every barrier; the
    per-barrier protocol is pure message passing over per-worker queues.
    ``barriers_served`` counts completed pricing barriers on this pool
    incarnation -- benchmarks report it as the pool-reuse count.
    """

    def __init__(self, store: ColumnarStore, matrix: DigestMatrix, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        import multiprocessing

        context = multiprocessing.get_context("fork")
        self.workers = workers
        self.store = store
        self.matrix = matrix
        self.barriers_served = 0
        self._work_queues = [context.Queue() for _ in range(workers)]
        self._result_queue = context.Queue()
        self._processes = [
            context.Process(
                target=_worker_main,
                args=(
                    index,
                    store,
                    matrix,
                    self._work_queues[index],
                    self._result_queue,
                ),
                daemon=True,
            )
            for index in range(workers)
        ]
        for process in self._processes:
            process.start()
        self._finalizer = weakref.finalize(
            self, _shutdown, self._processes, self._work_queues
        )

    # -- health ----------------------------------------------------------------

    def alive(self) -> bool:
        return all(process.is_alive() for process in self._processes)

    def _check_liveness(self, pending: Sequence[int], cycle: int) -> None:
        """Raise :class:`ShardWorkerError` if any awaited worker died."""
        for index in pending:
            process = self._processes[index]
            if not process.is_alive():
                raise ShardWorkerError(
                    f"shard {index} worker (pid {process.pid}, exit code "
                    f"{process.exitcode}) died during cycle {cycle}; "
                    f"{len(pending)} shard result(s) outstanding"
                )

    def _collect(self, expected_kind: str, cycle: int) -> Dict[int, object]:
        """One result per worker, liveness-checked; never hangs on a corpse."""
        results: Dict[int, object] = {}
        while len(results) < self.workers:
            try:
                message = self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                pending = [i for i in range(self.workers) if i not in results]
                self._check_liveness(pending, cycle)
                continue
            kind, worker_index = message[0], message[1]
            if kind == "error":
                raise ShardWorkerError(
                    f"shard {worker_index} worker failed during cycle "
                    f"{message[2]}: {message[3]}"
                )
            if kind != expected_kind:  # stale reply from an abandoned barrier
                continue
            if expected_kind == "priced":
                results[worker_index] = message[3]
            else:
                results[worker_index] = message[2]
        return results

    # -- barriers --------------------------------------------------------------

    def price(
        self,
        cycle: int,
        shard_pairs: Sequence[Sequence[Pair]],
        deltas: Sequence[Delta],
    ) -> List[List[Tuple[int, int, int, int, frozenset]]]:
        """One pricing barrier: fan out pairs + deltas, gather shard entries.

        ``shard_pairs[i]`` goes to worker ``i``; every worker receives the
        full delta list (any worker may price any receiver).  Returns the
        per-shard entry lists in shard-index order -- the deterministic
        merge order of the engine.  Raises :class:`ShardWorkerError` when a
        worker died or reported a failure.
        """
        if len(shard_pairs) != self.workers:
            raise ValueError(
                f"expected {self.workers} shards, got {len(shard_pairs)}"
            )
        deltas = list(deltas)
        for index, work_queue in enumerate(self._work_queues):
            work_queue.put(("price", cycle, list(shard_pairs[index]), deltas))
        results = self._collect("priced", cycle)
        self.barriers_served += 1
        return [results[index] for index in range(self.workers)]

    def build_rows(self, shard_rows: Sequence[Sequence[int]]) -> int:
        """Build digest rows shard-parallel, directly into the shared matrix.

        ``shard_rows[i]`` is worker ``i``'s (disjoint) row set; returns the
        total number of rows built once every worker finished -- the
        barrier doubles as the memory fence before the parent reads the
        rows.
        """
        if len(shard_rows) != self.workers:
            raise ValueError(
                f"expected {self.workers} shards, got {len(shard_rows)}"
            )
        for index, work_queue in enumerate(self._work_queues):
            work_queue.put(("build", list(shard_rows[index])))
        results = self._collect("built", cycle=-1)
        return sum(results.values())

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and release the queues (idempotent)."""
        self._finalizer()


def contiguous_row_slabs(num_rows: int, workers: int) -> List[range]:
    """Split ``range(num_rows)`` into ``workers`` contiguous slabs.

    Contiguity keeps each worker's writes to the shared digest block
    sequential; slab sizes differ by at most one row.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    base, extra = divmod(num_rows, workers)
    slabs: List[range] = []
    start = 0
    for index in range(workers):
        size = base + (1 if index < extra else 0)
        slabs.append(range(start, start + size))
        start += size
    return slabs


__all__ = [
    "Delta",
    "Pair",
    "PersistentShardPool",
    "ShardWorkerError",
    "contiguous_row_slabs",
]
