"""Deterministic random number management for simulations.

Each simulation owns a root seed; every node derives its own independent
``random.Random`` stream from that seed and its node id.  This keeps runs
reproducible regardless of the order in which nodes execute, which matters
when comparing scenarios (e.g. with/without churn) that share a seed.

Next to the cached per-node/per-purpose streams the factory hands out
**counter-based streams**: a fresh ``random.Random`` derived purely from
``(root_seed, name, counter)``.  Counter streams carry no mutable factory
state, so any worker of the sharded engine can derive the stream for, say,
``("shard-3", cycle=17)`` independently and obtain bit-identical draws --
the schedule they feed is a function of the coordinates, never of which
process asked first or how many workers exist.
"""

from __future__ import annotations

import random
from typing import Dict


def derive_rng(root_seed: int, *path: object) -> random.Random:
    """A fresh deterministic stream named by ``(root_seed, *path)``.

    Pure: equal coordinates give equal streams in every process, with no
    shared state to advance.  This is the primitive behind
    :meth:`SeededRngFactory.counter_stream` and the simtest/scenario seed
    derivations.
    """
    return random.Random("/".join(str(part) for part in (root_seed,) + path))


class SeededRngFactory:
    """Hands out per-node / per-purpose deterministic RNG streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def for_node(self, node_id: int) -> random.Random:
        """RNG stream dedicated to one node."""
        return self._get(f"node:{node_id}")

    def for_purpose(self, name: str) -> random.Random:
        """RNG stream for a named global purpose (bootstrap, churn, ...)."""
        return self._get(f"purpose:{name}")

    def counter_stream(self, name: str, counter: int) -> random.Random:
        """A counter-based stream for ``(name, counter)`` -- never cached.

        Unlike :meth:`for_purpose`, the stream's draws depend only on the
        coordinates: two calls with the same arguments return independent
        ``random.Random`` objects positioned at the same start, and calls
        for different counters never interact.  The sharded engine uses
        these for per-(shard, cycle) decisions so its schedule is
        independent of worker count and execution order.
        """
        return derive_rng(self.root_seed, "counter", name, counter)

    def _get(self, key: str) -> random.Random:
        stream = self._streams.get(key)
        if stream is None:
            stream = random.Random(f"{self.root_seed}/{key}")
            self._streams[key] = stream
        return stream
