"""Deterministic random number management for simulations.

Each simulation owns a root seed; every node derives its own independent
``random.Random`` stream from that seed and its node id.  This keeps runs
reproducible regardless of the order in which nodes execute, which matters
when comparing scenarios (e.g. with/without churn) that share a seed.
"""

from __future__ import annotations

import random
from typing import Dict


class SeededRngFactory:
    """Hands out per-node / per-purpose deterministic RNG streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def for_node(self, node_id: int) -> random.Random:
        """RNG stream dedicated to one node."""
        return self._get(f"node:{node_id}")

    def for_purpose(self, name: str) -> random.Random:
        """RNG stream for a named global purpose (bootstrap, churn, ...)."""
        return self._get(f"purpose:{name}")

    def _get(self, key: str) -> random.Random:
        stream = self._streams.get(key)
        if stream is None:
            stream = random.Random(f"{self.root_seed}/{key}")
            self._streams[key] = stream
        return stream
