"""Sharded multi-core cycle engine.

:class:`ShardedEngine` runs each cycle as

    snapshot -> parallel per-shard exchange pricing -> deterministic
    merge barrier -> apply

and is **bit-identical to the serial** :class:`~repro.simulator.engine.
SimulationEngine` **for any worker count** -- not by luck, but by
construction:

* **Snapshot.**  Worker processes are forked at the cycle boundary, so each
  worker owns a private copy-on-write image of the entire simulation state
  (profiles, views, RNG streams, caches) exactly as it stood when the cycle
  began.  Nothing a worker does can touch the parent's state.
* **Parallel per-shard pricing.**  The online nodes are partitioned into
  ``workers`` shards (round-robin over the cycle's id order, a pure function
  of the ids -- worker count changes *which worker* prices a node, never
  what is priced).  Each worker executes the cycle for its shard's
  initiators against its snapshot and records every digest-pricing result
  it computes -- the ``(receiver, subject)`` common-item sets of
  :class:`~repro.gossip.digest.DigestCache` -- as version-tagged entries.
  These are *pure values*: the common-item set is a function of the
  receiver's item set at ``receiver_version`` and the subject's digest at
  ``digest_version``, nothing else.
* **Deterministic merge barrier.**  The parent installs the recorded
  entries shard by shard, in shard-index order.  Installing an entry can
  never change behaviour: every memo read re-validates both versions
  against the live objects, so a mispredicted or stale entry is recomputed
  exactly as if it had never been installed.  The merge is therefore a
  cache warm-up, and the only nondeterminism workers could introduce --
  which pairs they happened to price -- is erased by the validation.
* **Apply.**  The parent then runs the *unmodified serial schedule*
  (:meth:`SimulationEngine.run_cycle`): same scheduler shuffle, same
  per-node RNG draws, same message order, same accounting rows.  The
  golden-fixture and results files pin this equality.

Worker-count invariance follows immediately: workers only ever affect
which cache entries are pre-warmed, and the apply phase is the serial
reference schedule regardless.  ``workers=1`` (or the inline executor) is
*literally* the serial engine.

Two executors implement the barrier:

* ``fork`` re-forks the whole simulation every cycle -- the fork IS the
  snapshot.  Correct and simple, but the per-cycle fork cost grows with
  the heap.
* ``pool`` (the default resolution of ``auto`` on multi-core machines)
  keeps **persistent worker processes** attached once to shared columnar
  state (:mod:`repro.data.columnar`): the parent predicts the coming
  cycle's ``(receiver, subject)`` digest probes, ships them with the
  cycle's profile-delta set over per-worker queues, and installs the
  version-tagged replies -- see :mod:`repro.simulator.pool`.  Predicted
  pairs are an over-approximation and every installed entry is validated
  on read, so the same merge-barrier contract applies unchanged: the
  barrier is a cache warm-up, the apply phase is the serial schedule.

Executor selection is honest about the hardware: with fewer than two CPU
cores (or on platforms without ``fork``) speculative pricing cannot pay for
itself, so ``executor="auto"`` degrades to the inline pass-through and the
engine reports that choice (:attr:`ShardedEngine.executor`).  Benchmarks
record the resolved executor next to the requested worker count.
"""

from __future__ import annotations

import os
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .engine import PHASE_LAZY, SimulationEngine
from .network import Network

#: Executor names.
EXECUTOR_INLINE = "inline"
EXECUTOR_FORK = "fork"
EXECUTOR_POOL = "pool"
EXECUTOR_AUTO = "auto"

#: Module-level slot the forked workers read their work from: ``(worker_fn,
#: payload)``.  Set only for the duration of one fork barrier; the ``fork``
#: start method makes children inherit it together with the full snapshot.
_FORK_STATE: Optional[Tuple[Callable, object]] = None


def _fork_entry(index: int):
    worker_fn, payload = _FORK_STATE
    return worker_fn(payload, index)


def run_forked_shards(
    payload: object,
    worker_fn: Callable,
    count: int,
    workers: int,
) -> Optional[List]:
    """Run ``worker_fn(payload, index)`` for ``index in range(count)`` in a
    forked worker pool and return the results in index order.

    The fork IS the snapshot: each worker starts from a private
    copy-on-write image of the caller's state, reached through the
    module-level slot the children inherit (``payload`` itself is never
    pickled; only the shard index crosses the pipe going in).  Shared by
    the cycle-pricing barrier and the shard-parallel bootstrap so the
    fork/global-slot/degrade-on-failure mechanics live in exactly one
    place.  Returns ``None`` when the pool fails wholesale -- callers
    treat the barrier as advisory and fall back to serial work.
    """
    global _FORK_STATE
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    _FORK_STATE = (worker_fn, payload)
    try:
        with ctx.Pool(processes=workers) as pool:
            return pool.map(_fork_entry, range(count))
    except Exception:
        return None
    finally:
        _FORK_STATE = None


def partition_shards(node_ids: Sequence[int], workers: int) -> List[Tuple[int, ...]]:
    """Round-robin partition of ``node_ids`` into ``workers`` shards.

    A pure function of the id sequence and the worker count; shards own
    disjoint initiator sets and their union is the input.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    shards: List[List[int]] = [[] for _ in range(workers)]
    for index, node_id in enumerate(node_ids):
        shards[index % workers].append(node_id)
    return [tuple(shard) for shard in shards]


def _fork_supported() -> bool:
    return sys.platform != "win32" and hasattr(os, "fork")


def resolve_executor(requested: str, workers: int) -> str:
    """The executor actually used for ``workers`` on this machine.

    ``auto`` picks a parallel executor only when it can plausibly help:
    more than one worker, a machine with at least two CPU cores, and a
    platform with ``fork`` -- and then prefers the persistent ``pool``
    (attach-once workers) over the per-cycle ``fork``.  An explicit
    ``fork`` or ``pool`` request is honoured whenever the platform
    supports it (tests force them on single-core machines to exercise the
    real code paths).
    """
    if requested not in (EXECUTOR_AUTO, EXECUTOR_INLINE, EXECUTOR_FORK, EXECUTOR_POOL):
        raise ValueError(f"unknown executor {requested!r}")
    if workers <= 1:
        return EXECUTOR_INLINE
    if requested == EXECUTOR_INLINE:
        return EXECUTOR_INLINE
    if not _fork_supported():
        return EXECUTOR_INLINE
    if requested in (EXECUTOR_FORK, EXECUTOR_POOL):
        return requested
    return EXECUTOR_POOL if (os.cpu_count() or 1) >= 2 else EXECUTOR_INLINE


def _price_shard(engine: "ShardedEngine", shard_index: int) -> Tuple[int, List]:
    """Worker entry point: price one shard's cycle against the fork snapshot.

    Runs in a forked child.  Executes the pending cycle restricted to the
    shard's initiators on the child's private state copy, recording every
    common-item set the digest cache computes.  The child's mutations die
    with the process; only the recorded pure entries travel back.
    """
    assert engine._pricing_cache is not None
    recorded: List = []
    cache = engine._pricing_cache
    cache.record_pricing(recorded)
    # Passive observers (fuzzing checkers) are parent-side concerns; the
    # speculative run must not feed them.
    engine.network.transport._observers.clear()
    shard = engine._current_shards[shard_index]
    try:
        SimulationEngine.run_cycle(engine, phase=engine._pricing_phase, participants=shard)
    except Exception:
        # Speculation is advisory: a worker crash (e.g. an exotic protocol
        # state that only manifests mid-shard) must never fail the cycle.
        return shard_index, recorded
    finally:
        cache.record_pricing(None)
    return shard_index, recorded


class ShardedEngine(SimulationEngine):
    """A :class:`SimulationEngine` with parallel per-shard cycle pricing."""

    def __init__(
        self,
        network: Network,
        seed: int = 0,
        workers: int = 1,
        executor: str = EXECUTOR_AUTO,
    ) -> None:
        super().__init__(network, seed)
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.requested_executor = executor
        self.executor = resolve_executor(executor, workers)
        #: The digest cache pricing entries are harvested from / installed
        #: into; attached by the simulation layer (:meth:`attach_pricing`).
        self._pricing_cache = None
        #: Phases whose cycles are priced in parallel (exchange pricing only
        #: exists in the lazy phase).
        self._pricing_phases = {PHASE_LAZY}
        self._pricing_phase: str = PHASE_LAZY
        self._current_shards: List[Tuple[int, ...]] = []
        #: Persistent-pool state (pool executor only): columnar backing,
        #: long-lived workers, the pair predictor and the delta bookkeeping.
        self._columnar_store = None
        self._digest_matrix = None
        self._pool = None
        self._pair_predictor = None
        self._pool_dirty: set = set()
        self._shipped_versions: Dict[int, int] = {}
        #: Cumulative barrier statistics (exposed for tests and benchmarks).
        self.pricing_stats: Dict[str, int] = {
            "cycles_priced": 0,
            "entries_recorded": 0,
            "entries_installed": 0,
            "worker_failures": 0,
            "pool_barriers": 0,
            "pairs_predicted": 0,
        }

    # -- wiring ---------------------------------------------------------------

    def attach_pricing(self, digest_cache) -> None:
        """Bind the shared digest cache the merge barrier installs into."""
        self._pricing_cache = digest_cache

    def attach_columnar(self, store, matrix) -> None:
        """Bind the columnar state the persistent pool workers attach to.

        Also subscribes to the network's dirty-profile flush: changed
        profiles accumulate here and travel to the workers as the next
        barrier's delta set.
        """
        self._columnar_store = store
        self._digest_matrix = matrix
        self.network.add_profile_dirty_listener(self._note_profiles_dirty)

    def attach_pair_predictor(self, predictor: Callable) -> None:
        """Bind the protocol-level ``acting -> [(receiver, subject)]`` oracle.

        The predictor must over-approximate the digest probes the coming
        cycle can perform without consuming any protocol RNG; mispredicted
        pairs are inert (version-validated on read), missed pairs are
        merely priced serially.
        """
        self._pair_predictor = predictor

    def _note_profiles_dirty(self, user_ids) -> None:
        self._pool_dirty.update(user_ids)

    # -- execution ------------------------------------------------------------

    def run_cycle(self, phase: str = PHASE_LAZY, participants=None) -> int:
        if self._pricing_cache is not None and phase in self._pricing_phases:
            if self.executor == EXECUTOR_FORK:
                self._pricing_barrier(phase, participants)
            elif (
                self.executor == EXECUTOR_POOL
                and self._pair_predictor is not None
                and self._columnar_store is not None
            ):
                self._pool_pricing_barrier(phase, participants)
        return super().run_cycle(phase=phase, participants=participants)

    def _pricing_barrier(self, phase: str, participants) -> None:
        """Snapshot, price every shard in parallel, merge deterministically."""
        if participants is None:
            acting = self.network.online_ids()
        else:
            acting = [nid for nid in participants if self.network.is_online(nid)]
        if len(acting) < self.workers:
            return
        self._current_shards = partition_shards(acting, self.workers)
        self._pricing_phase = phase
        try:
            results = run_forked_shards(self, _price_shard, self.workers, self.workers)
        finally:
            self._current_shards = []
        if results is None:
            self.pricing_stats["worker_failures"] += 1
            return

        # Deterministic merge barrier: shard-index order.
        stats = self.pricing_stats
        stats["cycles_priced"] += 1
        for _shard_index, entries in sorted(results, key=lambda item: item[0]):
            stats["entries_recorded"] += len(entries)
            stats["entries_installed"] += self._pricing_cache.install_common_entries(
                entries
            )

    # -- persistent-pool barrier ----------------------------------------------

    def _pool_pricing_barrier(self, phase: str, participants) -> None:
        """Predict the cycle's digest probes, price them on the pool, install.

        No snapshot is taken: the parent enumerates (through the attached
        predictor) an over-approximation of the ``(receiver, subject)``
        pairs the serial apply phase can price, ships them -- together with
        the profile deltas accumulated since the last barrier -- to the
        persistent workers, and installs the version-tagged replies in
        shard-index order.  Everything installed is validated on read, so
        the barrier obeys the same contract as the fork executor's:
        worker count changes which entries are pre-warmed, never what any
        cycle computes.
        """
        if participants is None:
            acting = self.network.online_ids()
        else:
            acting = [nid for nid in participants if self.network.is_online(nid)]
        if len(acting) < self.workers:
            return
        pairs = self._pair_predictor(acting)
        if not pairs:
            return
        pool = self._ensure_pool()
        if pool is None:
            return
        cycle_index = self.cycle_counts.get(phase, 0)
        deltas = self._collect_deltas()
        # Unique pairs, grouped by subject so each worker's digest-row cache
        # sees every probe of a subject; subjects round-robin over shards --
        # a pure function of the pair set, like partition_shards.
        unique_pairs = sorted(set(pairs))
        shard_of: Dict[int, int] = {}
        workers = self.workers
        for _receiver, subject in unique_pairs:
            if subject not in shard_of:
                shard_of[subject] = len(shard_of) % workers
        shard_pairs: List[List[Tuple[int, int]]] = [[] for _ in range(workers)]
        for pair in unique_pairs:
            shard_pairs[shard_of[pair[1]]].append(pair)

        shard_entries = pool.price(cycle_index, shard_pairs, deltas)

        stats = self.pricing_stats
        stats["cycles_priced"] += 1
        stats["pool_barriers"] += 1
        stats["pairs_predicted"] += len(unique_pairs)
        for entries in shard_entries:
            stats["entries_recorded"] += len(entries)
            stats["entries_installed"] += self._pricing_cache.install_common_entries(
                entries
            )

    def _collect_deltas(self) -> List[Tuple[int, int, Tuple[int, ...]]]:
        """Drain the dirty bookkeeping into the barrier's delta list.

        Covers both the listener-accumulated set (flushed at past cycle
        boundaries) and the network's still-pending set (changes applied
        since the last boundary, e.g. a change day between cycles).  Each
        shipped delta also refreshes the user's digest row in the shared
        matrix -- parent and workers see the same subject bits -- and is
        deduplicated per version so repeated flushes of one change ship
        once.
        """
        dirty = self._pool_dirty | set(self.network.pending_dirty_profiles())
        self._pool_dirty.clear()
        if not dirty:
            return []
        store = self._columnar_store
        matrix = self._digest_matrix
        shipped = self._shipped_versions
        network = self.network
        deltas: List[Tuple[int, int, Tuple[int, ...]]] = []
        for user_id in sorted(dirty):
            if user_id not in network:
                continue
            profile = getattr(network.node(user_id), "profile", None)
            if profile is None:
                continue
            version = profile.version
            if shipped.get(user_id) == version:
                continue
            row = store.row_of(user_id)
            if row is None:
                continue
            items = tuple(profile.items)
            matrix.set_row_from_items(row, items, version)
            shipped[user_id] = version
            deltas.append((user_id, version, items))
        return deltas

    def _ensure_pool(self):
        """The persistent pool, forked on first use (attach-once)."""
        if self._pool is None and self._columnar_store is not None:
            from .pool import PersistentShardPool

            try:
                self._pool = PersistentShardPool(
                    self._columnar_store, self._digest_matrix, self.workers
                )
            except Exception:
                self.pricing_stats["worker_failures"] += 1
                return None
        return self._pool

    def build_digest_rows(self) -> int:
        """Build every digest row of the attached matrix (bootstrap warm-up).

        Shard-parallel on the persistent pool when it pays (the rows land
        directly in the shared block; the reply barrier is the memory
        fence), serial vectorized otherwise.  Pure warm-up either way:
        row adoption validates versions on every read.
        """
        matrix = self._digest_matrix
        store = self._columnar_store
        if matrix is None or store is None:
            return 0
        if self.executor == EXECUTOR_POOL and len(store) >= 4 * self.workers:
            pool = self._ensure_pool()
            if pool is not None:
                from .pool import ShardWorkerError, contiguous_row_slabs

                try:
                    return pool.build_rows(
                        contiguous_row_slabs(len(store), self.workers)
                    )
                except ShardWorkerError:
                    self.pricing_stats["worker_failures"] += 1
        return matrix.build_rows(store)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Stop the persistent workers, if any (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
