"""Traffic and activity accounting for the simulator.

Bandwidth consumption is a first-class result in the paper (Section 3.3.2,
Figure 6, the Section 3.5 summary in Kbps), so every message sent through
the simulated network carries a size in bytes and a traffic *kind*.  The
collector aggregates per-cycle, per-node and per-kind totals that the
experiment harness turns into the paper's series.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

#: Well-known traffic kinds (free-form strings are allowed too).
KIND_RANDOM_VIEW = "random_view_digests"
KIND_DIGESTS = "personal_digests"
KIND_COMMON_ITEMS = "common_item_actions"
KIND_FULL_PROFILES = "full_profiles"
KIND_REMAINING_FORWARD = "remaining_list_forward"
KIND_REMAINING_RETURN = "remaining_list_return"
KIND_PARTIAL_RESULT = "partial_result"


@dataclass(slots=True)
class TrafficRecord:
    """One accounted transmission.

    Slotted: one record is allocated per simulated message, so at large
    network sizes the per-instance ``__dict__`` of a plain dataclass costs
    real memory and allocation time.
    """

    cycle: int
    sender: int
    receiver: int
    kind: str
    size_bytes: int
    #: Optional tag tying the transmission to a query (eager mode traffic).
    query_id: Optional[int] = None


class StatsCollector:
    """Aggregate message counts and byte volumes across a simulation.

    Recording sits on the per-message hot path, so it only appends one row;
    the per-kind/cycle/node/query aggregates are folded in lazily (and
    incrementally -- each row is processed exactly once) the first time an
    aggregate view is read after new traffic arrived.
    """

    def __init__(self) -> None:
        #: Raw rows ``(cycle, sender, receiver, kind, size_bytes, query_id)``.
        self._rows: List[tuple] = []
        #: Number of leading rows already folded into the aggregates.
        self._aggregated = 0
        self._bytes_by_kind: Dict[str, int] = defaultdict(int)
        self._bytes_by_cycle: Dict[int, int] = defaultdict(int)
        self._bytes_by_node: Dict[int, int] = defaultdict(int)
        self._bytes_by_query: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._messages_by_kind: Dict[str, int] = defaultdict(int)
        self._messages_by_query: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))

    # -- recording ------------------------------------------------------------

    def record(
        self,
        cycle: int,
        sender: int,
        receiver: int,
        kind: str,
        size_bytes: int,
        query_id: Optional[int] = None,
    ) -> None:
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        self._rows.append((cycle, sender, receiver, kind, size_bytes, query_id))

    def _catch_up(self) -> None:
        """Fold not-yet-aggregated rows into the aggregate dictionaries."""
        rows = self._rows
        start = self._aggregated
        if start == len(rows):
            return
        bytes_by_kind = self._bytes_by_kind
        bytes_by_cycle = self._bytes_by_cycle
        bytes_by_node = self._bytes_by_node
        messages_by_kind = self._messages_by_kind
        for cycle, sender, _receiver, kind, size_bytes, query_id in rows[start:]:
            bytes_by_kind[kind] += size_bytes
            bytes_by_cycle[cycle] += size_bytes
            bytes_by_node[sender] += size_bytes
            messages_by_kind[kind] += 1
            if query_id is not None:
                self._bytes_by_query[query_id][kind] += size_bytes
                self._messages_by_query[query_id][kind] += 1
        self._aggregated = len(rows)

    # -- aggregate views ------------------------------------------------------

    @property
    def records(self) -> List[TrafficRecord]:
        return [TrafficRecord(*row) for row in self._rows]

    def query_receivers(self, query_id: int, kind: str) -> set:
        """Distinct receivers of one query's traffic of one kind.

        Scans the raw rows without materializing :class:`TrafficRecord`
        objects -- this backs per-query metrics (users reached) that would
        otherwise allocate one object per recorded message per call.
        """
        return {
            row[2] for row in self._rows if row[5] == query_id and row[3] == kind
        }

    def total_bytes(self, kind: Optional[str] = None) -> int:
        self._catch_up()
        if kind is None:
            return sum(self._bytes_by_kind.values())
        return self._bytes_by_kind.get(kind, 0)

    def total_messages(self, kind: Optional[str] = None) -> int:
        self._catch_up()
        if kind is None:
            return sum(self._messages_by_kind.values())
        return self._messages_by_kind.get(kind, 0)

    def bytes_by_kind(self) -> Dict[str, int]:
        self._catch_up()
        return dict(self._bytes_by_kind)

    def bytes_by_cycle(self) -> Dict[int, int]:
        self._catch_up()
        return dict(self._bytes_by_cycle)

    def bytes_by_node(self) -> Dict[int, int]:
        self._catch_up()
        return dict(self._bytes_by_node)

    def query_bytes(self, query_id: int) -> Dict[str, int]:
        """Per-kind byte totals attributed to one query (Figure 6 rows)."""
        self._catch_up()
        return dict(self._bytes_by_query.get(query_id, {}))

    def query_messages(self, query_id: int) -> Dict[str, int]:
        self._catch_up()
        return dict(self._messages_by_query.get(query_id, {}))

    def query_ids(self) -> List[int]:
        self._catch_up()
        return sorted(self._bytes_by_query)

    # -- derived rates --------------------------------------------------------

    def average_bandwidth_bps(
        self,
        seconds_per_cycle: float,
        kinds: Optional[Iterable[str]] = None,
        num_nodes: Optional[int] = None,
    ) -> float:
        """Average bandwidth in *bits per second*, per node if requested.

        The paper reports per-user rates (13.4 Kbps lazy maintenance, 91 Kbps
        per query): dividing the total traffic by the simulated wall-clock
        duration and by the number of participating nodes reproduces that
        quantity for our measured traffic.
        """
        if seconds_per_cycle <= 0:
            raise ValueError("seconds_per_cycle must be positive")
        self._catch_up()
        cycles = (max(self._bytes_by_cycle) + 1) if self._bytes_by_cycle else 1
        if kinds is None:
            total = self.total_bytes()
        else:
            total = sum(self._bytes_by_kind.get(kind, 0) for kind in kinds)
        duration = cycles * seconds_per_cycle
        bits_per_second = total * 8 / duration
        if num_nodes:
            bits_per_second /= num_nodes
        return bits_per_second

    def merge(self, other: "StatsCollector") -> None:
        """Fold another collector's records into this one."""
        self._rows.extend(other._rows)
