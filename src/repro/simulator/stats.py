"""Traffic and activity accounting for the simulator.

Bandwidth consumption is a first-class result in the paper (Section 3.3.2,
Figure 6, the Section 3.5 summary in Kbps), so every message sent through
the simulated network carries a size in bytes and a traffic *kind*.  The
collector aggregates per-cycle, per-node and per-kind totals that the
experiment harness turns into the paper's series.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

#: Well-known traffic kinds (free-form strings are allowed too).
KIND_RANDOM_VIEW = "random_view_digests"
KIND_DIGESTS = "personal_digests"
KIND_COMMON_ITEMS = "common_item_actions"
KIND_FULL_PROFILES = "full_profiles"
KIND_REMAINING_FORWARD = "remaining_list_forward"
KIND_REMAINING_RETURN = "remaining_list_return"
KIND_PARTIAL_RESULT = "partial_result"


@dataclass(slots=True)
class TrafficRecord:
    """One accounted transmission.

    Slotted: one record is allocated per simulated message, so at large
    network sizes the per-instance ``__dict__`` of a plain dataclass costs
    real memory and allocation time.
    """

    cycle: int
    sender: int
    receiver: int
    kind: str
    size_bytes: int
    #: Optional tag tying the transmission to a query (eager mode traffic).
    query_id: Optional[int] = None


class StatsCollector:
    """Aggregate message counts and byte volumes across a simulation.

    Recording sits on the per-message hot path, so it only appends one row;
    the per-kind/cycle/node/query aggregates are folded in lazily (and
    incrementally -- each row is processed exactly once) the first time an
    aggregate view is read after new traffic arrived.

    At large N the raw row buffer is the collector's only unbounded state
    (an N=10,000 lazy cycle records ~10^5 rows).  ``flush_every`` bounds it:
    every that-many cycles (the engine ticks :meth:`maybe_flush` at each
    cycle boundary) the buffered rows are folded into the aggregates -- and
    into the per-(query, kind) receiver sets that back
    :meth:`query_receivers` -- and then dropped.  Every aggregate view is
    exact regardless of flushing; only :attr:`records` degrades to the rows
    retained since the last flush (documented there).
    """

    def __init__(self, flush_every: Optional[int] = None) -> None:
        if flush_every is not None and flush_every < 1:
            raise ValueError("flush_every must be positive when set")
        #: Raw rows ``(cycle, sender, receiver, kind, size_bytes, query_id)``.
        self._rows: List[tuple] = []
        #: Number of leading rows already folded into the aggregates.
        self._aggregated = 0
        #: Fold-and-drop period in cycles (``None`` keeps every row).
        self.flush_every = flush_every
        self._cycles_since_flush = 0
        #: Rows dropped by flushes (diagnostics: total recorded = this +
        #: ``len(self._rows)``).
        self._flushed_rows = 0
        #: ``(query_id, kind) -> receivers`` folded out of flushed rows so
        #: :meth:`query_receivers` stays exact across flushes.
        self._flushed_receivers: Dict[tuple, set] = {}
        self._bytes_by_kind: Dict[str, int] = defaultdict(int)
        self._bytes_by_cycle: Dict[int, int] = defaultdict(int)
        self._bytes_by_node: Dict[int, int] = defaultdict(int)
        self._bytes_by_query: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._messages_by_kind: Dict[str, int] = defaultdict(int)
        self._messages_by_cycle: Dict[int, int] = defaultdict(int)
        self._messages_by_query: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))

    # -- recording ------------------------------------------------------------

    def record(
        self,
        cycle: int,
        sender: int,
        receiver: int,
        kind: str,
        size_bytes: int,
        query_id: Optional[int] = None,
    ) -> None:
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        self._rows.append((cycle, sender, receiver, kind, size_bytes, query_id))

    def _catch_up(self) -> None:
        """Fold not-yet-aggregated rows into the aggregate dictionaries."""
        rows = self._rows
        start = self._aggregated
        if start == len(rows):
            return
        bytes_by_kind = self._bytes_by_kind
        bytes_by_cycle = self._bytes_by_cycle
        bytes_by_node = self._bytes_by_node
        messages_by_kind = self._messages_by_kind
        messages_by_cycle = self._messages_by_cycle
        for cycle, sender, _receiver, kind, size_bytes, query_id in rows[start:]:
            bytes_by_kind[kind] += size_bytes
            bytes_by_cycle[cycle] += size_bytes
            bytes_by_node[sender] += size_bytes
            messages_by_kind[kind] += 1
            messages_by_cycle[cycle] += 1
            if query_id is not None:
                self._bytes_by_query[query_id][kind] += size_bytes
                self._messages_by_query[query_id][kind] += 1
        self._aggregated = len(rows)

    # -- flushing -------------------------------------------------------------

    def maybe_flush(self) -> bool:
        """Cycle-boundary tick: flush if the configured period elapsed.

        Called by the engine once per cycle; a no-op unless ``flush_every``
        is set.  Returns ``True`` when a flush happened.
        """
        if self.flush_every is None:
            return False
        self._cycles_since_flush += 1
        if self._cycles_since_flush < self.flush_every:
            return False
        self.flush()
        return True

    def flush(self) -> int:
        """Fold every buffered row into the aggregates and drop the buffer.

        Aggregate views (bytes/messages by kind, cycle, node and query, and
        :meth:`query_receivers`) are unaffected -- they answer identically
        before and after a flush.  Returns the number of rows dropped.
        """
        self._catch_up()
        receivers = self._flushed_receivers
        for _cycle, _sender, receiver, kind, _size, query_id in self._rows:
            if query_id is not None:
                key = (query_id, kind)
                bucket = receivers.get(key)
                if bucket is None:
                    bucket = receivers[key] = set()
                bucket.add(receiver)
        dropped = len(self._rows)
        self._rows.clear()
        self._aggregated = 0
        self._flushed_rows += dropped
        self._cycles_since_flush = 0
        return dropped

    # -- aggregate views ------------------------------------------------------

    @property
    def records(self) -> List[TrafficRecord]:
        """Materialized rows -- only those retained since the last flush.

        Without ``flush_every`` this is every recorded transmission (the
        seed behaviour).  With flushing enabled, callers needing full
        message-level history should read it between flush boundaries.
        """
        return [TrafficRecord(*row) for row in self._rows]

    def query_receivers(self, query_id: int, kind: str) -> set:
        """Distinct receivers of one query's traffic of one kind.

        Scans the raw rows without materializing :class:`TrafficRecord`
        objects -- this backs per-query metrics (users reached) that would
        otherwise allocate one object per recorded message per call.  Exact
        across flushes: flushed rows contribute through the folded
        receiver sets.
        """
        out = {
            row[2] for row in self._rows if row[5] == query_id and row[3] == kind
        }
        flushed = self._flushed_receivers.get((query_id, kind))
        if flushed:
            out |= flushed
        return out

    def total_bytes(self, kind: Optional[str] = None) -> int:
        self._catch_up()
        if kind is None:
            return sum(self._bytes_by_kind.values())
        return self._bytes_by_kind.get(kind, 0)

    def total_messages(self, kind: Optional[str] = None) -> int:
        self._catch_up()
        if kind is None:
            return sum(self._messages_by_kind.values())
        return self._messages_by_kind.get(kind, 0)

    def bytes_by_kind(self) -> Dict[str, int]:
        self._catch_up()
        return dict(self._bytes_by_kind)

    def bytes_by_cycle(self) -> Dict[int, int]:
        self._catch_up()
        return dict(self._bytes_by_cycle)

    def messages_by_cycle(self) -> Dict[int, int]:
        """Message counts per cycle (the serving harness's traffic series).

        Exact across flushes, like every other aggregate view.
        """
        self._catch_up()
        return dict(self._messages_by_cycle)

    def bytes_by_node(self) -> Dict[int, int]:
        self._catch_up()
        return dict(self._bytes_by_node)

    def query_bytes(self, query_id: int) -> Dict[str, int]:
        """Per-kind byte totals attributed to one query (Figure 6 rows)."""
        self._catch_up()
        return dict(self._bytes_by_query.get(query_id, {}))

    def query_messages(self, query_id: int) -> Dict[str, int]:
        self._catch_up()
        return dict(self._messages_by_query.get(query_id, {}))

    def query_ids(self) -> List[int]:
        self._catch_up()
        return sorted(self._bytes_by_query)

    # -- derived rates --------------------------------------------------------

    def average_bandwidth_bps(
        self,
        seconds_per_cycle: float,
        kinds: Optional[Iterable[str]] = None,
        num_nodes: Optional[int] = None,
    ) -> float:
        """Average bandwidth in *bits per second*, per node if requested.

        The paper reports per-user rates (13.4 Kbps lazy maintenance, 91 Kbps
        per query): dividing the total traffic by the simulated wall-clock
        duration and by the number of participating nodes reproduces that
        quantity for our measured traffic.
        """
        if seconds_per_cycle <= 0:
            raise ValueError("seconds_per_cycle must be positive")
        self._catch_up()
        cycles = (max(self._bytes_by_cycle) + 1) if self._bytes_by_cycle else 1
        if kinds is None:
            total = self.total_bytes()
        else:
            total = sum(self._bytes_by_kind.get(kind, 0) for kind in kinds)
        duration = cycles * seconds_per_cycle
        bits_per_second = total * 8 / duration
        if num_nodes:
            bits_per_second /= num_nodes
        return bits_per_second

    def merge(self, other: "StatsCollector") -> None:
        """Fold another collector's records into this one.

        Exact even when either side has flushed: both sides' aggregates are
        brought up to date and added, the other's retained rows are adopted
        (pre-folded, so they are never double counted), and the flushed
        receiver sets are united.
        """
        self._catch_up()
        other._catch_up()
        for kind, value in other._bytes_by_kind.items():
            self._bytes_by_kind[kind] += value
        for cycle, value in other._bytes_by_cycle.items():
            self._bytes_by_cycle[cycle] += value
        for node, value in other._bytes_by_node.items():
            self._bytes_by_node[node] += value
        for kind, value in other._messages_by_kind.items():
            self._messages_by_kind[kind] += value
        for cycle, value in other._messages_by_cycle.items():
            self._messages_by_cycle[cycle] += value
        for query_id, per_kind in other._bytes_by_query.items():
            bucket = self._bytes_by_query[query_id]
            for kind, value in per_kind.items():
                bucket[kind] += value
        for query_id, per_kind in other._messages_by_query.items():
            bucket = self._messages_by_query[query_id]
            for kind, value in per_kind.items():
                bucket[kind] += value
        for key, receivers in other._flushed_receivers.items():
            mine = self._flushed_receivers.get(key)
            if mine is None:
                self._flushed_receivers[key] = set(receivers)
            else:
                mine |= receivers
        self._rows.extend(other._rows)
        self._aggregated = len(self._rows)
        self._flushed_rows += other._flushed_rows
