"""Explicit message-passing transport layer.

Every peer interaction of the P3Q stack flows through a
:class:`Transport` as a typed, frozen :class:`Message`:

============================  =============================================
message                       meaning
============================  =============================================
:class:`DigestAdvertisement`  digests advertised in a gossip exchange --
                              random-view digests (peer sampling) or
                              stored-profile digests (lazy Algorithm 1)
:class:`CommonItemsRequest`   step-2 ask: "subject's actions on these items"
:class:`CommonItemsReply`     the matching tagging actions (or ``None``)
:class:`FullProfileRequest`   step-3 ask for a complete profile replica
:class:`FullProfilePush`      the full profile (or ``None`` if not held)
:class:`QueryForward`         an eager remaining-list forward (Algorithm 3)
:class:`RemainingReturn`      the alpha-share handed back to the forwarder
:class:`QueryResult`          a partial result shipped to the querier
============================  =============================================

Reifying the wire protocol as data is what makes network conditions
pluggable: the same protocol code runs unchanged over

* :class:`DirectTransport` -- synchronous and lossless, bit-identical to the
  seed's direct method calls (the default; all reproduced figures use it);
* :class:`LossyTransport` -- every message is independently dropped with a
  seeded per-message probability (gossip under packet loss);
* :class:`LatencyTransport` -- top-level exchanges are delayed by a seeded
  number of cycles and drained by the engine at the start of later cycles
  (stale digests, late partial results, churn mid-exchange); it composes
  with a loss rate.

Delivery semantics
------------------

``request`` performs a round-trip: the receiver's ``handle_message`` runs
synchronously and its reply message is returned in the :class:`Dispatch`.
Cycle-granularity latency applies at *exchange* granularity: a deferred
request is queued whole, the receiver processes it when the engine drains
the queue, and the reply is then routed back to the initiator as a one-way
message (itself subject to delay).  The control sub-requests *inside* an
exchange (:class:`CommonItemsRequest`, :class:`FullProfileRequest`) always
complete within the cycle in which the exchange is processed -- real
round-trip times are far below the paper's 60 s / 5 s cycle lengths -- but
remain individually droppable by a lossy transport.

Byte accounting happens in exactly one place, :meth:`Transport._account`:
every payload-bearing message is priced by
:func:`repro.gossip.sizes.total_bytes` and recorded at *send* time (a lost
message still costs its sender bandwidth).  Pure control messages (the two
request types, which the paper's cost model does not charge) and failure
replies carrying a ``None`` payload are never recorded, which reproduces the
seed's accounting exactly.

Observation
-----------

Every transport accepts *observers* (:meth:`Transport.add_observer`): callables
receiving one :class:`WireEvent` per wire action -- request legs, reply legs,
one-way sends and deferred (drained) deliveries, each with its final delivery
status and whether the accounting hook ran for it.  Observers are passive:
they cannot alter delivery, and with none registered the hot paths pay a
single falsy check per message.  The simulation-fuzzing subsystem
(:mod:`repro.simtest`) uses them to cross-check byte accounting and query
lifecycle invariants against an independent model of the wire.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List, NamedTuple, Optional, Tuple

from .stats import (
    KIND_COMMON_ITEMS,
    KIND_DIGESTS,
    KIND_FULL_PROFILES,
    KIND_PARTIAL_RESULT,
    KIND_RANDOM_VIEW,
    KIND_REMAINING_FORWARD,
    KIND_REMAINING_RETURN,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..data.models import TaggingAction, UserProfile
    from ..data.queries import Query
    from ..gossip.digest import ProfileDigest
    from ..p3q.query import PartialResult
    from .network import Network

#: ``DigestAdvertisement.view`` values.
VIEW_RANDOM = "random"
VIEW_PERSONAL = "personal"

#: Dispatch statuses.
DELIVERED = "delivered"
DROPPED = "dropped"
#: The request leg arrived and was processed, but the *reply* was lost.
#: Callers must not retry: the receiver's side effects already happened.
REPLY_DROPPED = "reply_dropped"
DEFERRED = "deferred"
UNREACHABLE = "unreachable"
#: A deferred envelope whose receiver departed while it was in flight (the
#: bytes were already spent at send time; only observers ever see this).
LOST = "lost"


# ------------------------------------------------------------------- messages


class Message:
    """Base of the wire-message catalogue.

    ``kind`` is the traffic kind recorded by the stats collector (``None``
    for control messages the cost model does not charge); ``DEFERRABLE``
    marks the top-level exchange messages a latency transport may delay.
    """

    __slots__ = ()

    kind: Optional[str] = None
    DEFERRABLE = False

    @property
    def accountable(self) -> bool:
        """False for failure replies whose payload is ``None``."""
        return True


@dataclass(frozen=True, slots=True)
class DigestAdvertisement(Message):
    """Digests advertised in one direction of a gossip exchange."""

    digests: Tuple["ProfileDigest", ...]
    #: :data:`VIEW_RANDOM` (peer sampling) or :data:`VIEW_PERSONAL` (lazy).
    view: str

    DEFERRABLE = True

    @property
    def kind(self) -> str:  # type: ignore[override]
        return KIND_RANDOM_VIEW if self.view == VIEW_RANDOM else KIND_DIGESTS


@dataclass(frozen=True, slots=True)
class CommonItemsRequest(Message):
    """Step 2 of the lazy exchange: ask the profile holder for the actions
    of ``subject_id`` restricted to the (Bloom-probed) common items."""

    subject_id: int
    items: FrozenSet[int]


@dataclass(frozen=True, slots=True)
class CommonItemsReply(Message):
    """The requested tagging actions; ``None`` when the holder no longer
    stores the subject's profile (the request simply fails).

    ``actions`` carries the subject's actions on the common items as
    *interned action ids* (:mod:`repro.data.interning`): interning is a
    bijection, so the set's cardinality -- which is all the cost model
    charges -- and the receiver-side overlap score are exactly those of the
    tuple representation, while pricing and scoring stay C-level small-int
    set operations.
    """

    subject_id: int
    actions: Optional[FrozenSet[int]]

    kind = KIND_COMMON_ITEMS

    @property
    def accountable(self) -> bool:
        return self.actions is not None


@dataclass(frozen=True, slots=True)
class FullProfileRequest(Message):
    """Step 3 of the lazy exchange: ask for a complete profile replica."""

    subject_id: int


@dataclass(frozen=True, slots=True)
class FullProfilePush(Message):
    """A complete profile copy; ``None`` when the sender does not hold it."""

    subject_id: int
    profile: Optional["UserProfile"]

    kind = KIND_FULL_PROFILES

    @property
    def accountable(self) -> bool:
        return self.profile is not None


@dataclass(frozen=True, slots=True)
class QueryForward(Message):
    """An eager gossip: the query plus the forwarded remaining list."""

    query: "Query"
    remaining: Tuple[int, ...]
    #: Eager cycle at which the forward was emitted (stamps partial results).
    cycle: int

    kind = KIND_REMAINING_FORWARD
    DEFERRABLE = True


@dataclass(frozen=True, slots=True)
class RemainingReturn(Message):
    """The share of a forwarded remaining list handed back to the sender."""

    query_id: int
    remaining: Tuple[int, ...]

    kind = KIND_REMAINING_RETURN
    DEFERRABLE = True


@dataclass(frozen=True, slots=True)
class QueryResult(Message):
    """A partial result list sent directly to the querier."""

    partial: "PartialResult"

    kind = KIND_PARTIAL_RESULT
    DEFERRABLE = True


# ------------------------------------------------------------------ envelopes


class Envelope(NamedTuple):
    """One message in flight: addressing plus delivery metadata.

    A named tuple: envelopes are allocated once or twice per round-trip on
    the hottest path of the simulator, and tuple construction is C-level.
    """

    sender: int
    receiver: int
    message: Message
    query_id: Optional[int]
    expects_reply: bool
    account: bool


class Dispatch:
    """Outcome of a transport round-trip."""

    __slots__ = ("status", "reply")

    def __init__(self, status: str, reply: Optional[Message]) -> None:
        self.status = status
        self.reply = reply

    @property
    def delivered(self) -> bool:
        return self.status == DELIVERED

    @property
    def deferred(self) -> bool:
        return self.status == DEFERRED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dispatch({self.status}, reply={type(self.reply).__name__ if self.reply else None})"


#: ``WireEvent.op`` values.
OP_REQUEST = "request"
OP_REPLY = "reply"
OP_SEND = "send"
OP_DRAIN = "drain"


class WireEvent(NamedTuple):
    """One observable wire action, reported to transport observers.

    ``op`` is the leg (:data:`OP_REQUEST` for the forward leg of a round
    trip, :data:`OP_REPLY` for its answer, :data:`OP_SEND` for a one-way
    send, :data:`OP_DRAIN` for a deferred envelope delivered -- or lost --
    by :meth:`Transport.drain`); ``status`` is the leg's final delivery
    status and ``accounted`` records whether the byte-accounting hook ran
    for this message (drained envelopes were accounted when first sent).
    """

    op: str
    sender: int
    receiver: int
    message: Message
    status: str
    accounted: bool
    query_id: Optional[int]


#: An observer: called once per wire event, must not mutate anything.
TransportObserver = Callable[[WireEvent], None]


#: Reply-less outcomes are immutable, so one instance each serves every call
#: (the request path is hot: thousands of control round-trips per cycle).
_UNREACHABLE_DISPATCH = Dispatch(UNREACHABLE, None)
_DROPPED_DISPATCH = Dispatch(DROPPED, None)
_REPLY_DROPPED_DISPATCH = Dispatch(REPLY_DROPPED, None)
_DEFERRED_DISPATCH = Dispatch(DEFERRED, None)
_DELIVERED_SILENT_DISPATCH = Dispatch(DELIVERED, None)


# ----------------------------------------------------------------- transports


class Transport:
    """Routes envelopes between nodes; :class:`DirectTransport` semantics.

    The base class is synchronous and lossless; subclasses perturb delivery
    through the :meth:`_roll_drop` / :meth:`_roll_delay` hooks only, so every
    transport shares one delivery and accounting path.
    """

    name = "direct"

    def __init__(self) -> None:
        self._network: Optional["Network"] = None
        self._total_bytes = None
        #: absolute global cycle -> envelopes due at that cycle (FIFO).
        self._queue: Dict[int, List[Envelope]] = {}
        #: Passive observers notified of every wire event (see WireEvent).
        self._observers: List[TransportObserver] = []

    # -- wiring ---------------------------------------------------------------

    def attach(self, network: "Network") -> None:
        """Bind to a network (called by :class:`Network.__init__`).

        The size model lives in :mod:`repro.gossip.sizes` (the gossip layer
        legitimately depends on the simulator below it); resolving it here at
        attach time rather than at module import keeps the simulator package
        importable on its own and avoids a load-order cycle with the sizes
        module, which imports the message catalogue at its top level.
        """
        from ..gossip.sizes import total_bytes

        self._network = network
        self._total_bytes = total_bytes

    # -- observation ----------------------------------------------------------

    def add_observer(self, observer: TransportObserver) -> None:
        """Register a passive observer of every wire event."""
        self._observers.append(observer)

    def remove_observer(self, observer: TransportObserver) -> None:
        self._observers.remove(observer)

    def _notify(
        self,
        op: str,
        sender: int,
        receiver: int,
        message: Message,
        status: str,
        accounted: bool,
        query_id: Optional[int],
    ) -> None:
        event = WireEvent(op, sender, receiver, message, status, accounted, query_id)
        for observer in self._observers:
            observer(event)

    # -- condition hooks (overridden by lossy/latency/conditioned transports) --
    #
    # All hooks receive the (sender, receiver) pair so that conditions can be
    # link-local (asymmetric links, partition cuts) as well as global.

    def _roll_drop(self, message: Message, sender: int, receiver: int) -> bool:
        return False

    def _roll_delay(self, message: Message, sender: int, receiver: int) -> int:
        return 0

    def _inbound_blocked(self, sender: int, receiver: int) -> bool:
        """True when the receiver cannot accept *inbound* connections (NAT).

        Checked before accounting: like contacting an offline node, the
        connection never opens, so no bytes are charged.
        """
        return False

    def _drain_blocked(self, envelope: Envelope) -> Optional[int]:
        """Cycles to re-queue a due envelope for, or ``None`` to deliver now.

        A conditioned transport holds an in-flight envelope whose endpoints
        sit on opposite sides of an active partition cut until the heal
        cycle: the bytes were spent at send time, so delivery resumes once
        the cut heals rather than being silently lost.
        """
        return None

    # -- sending --------------------------------------------------------------

    def request(
        self,
        sender: int,
        receiver: int,
        message: Message,
        query_id: Optional[int] = None,
        account: bool = True,
    ) -> Dispatch:
        """Round-trip send: deliver ``message`` and return the reply.

        A deferred request is queued whole; its reply will eventually reach
        the sender through :meth:`drain` as a one-way message.
        """
        node = self._network.try_contact(receiver)
        handler = getattr(node, "handle_message", None)
        if handler is None or self._inbound_blocked(sender, receiver):
            if self._observers:
                self._notify(OP_REQUEST, sender, receiver, message, UNREACHABLE, False, query_id)
            return _UNREACHABLE_DISPATCH
        if account:
            self._account(sender, receiver, message, query_id)
        if self._roll_drop(message, sender, receiver):
            if self._observers:
                self._notify(OP_REQUEST, sender, receiver, message, DROPPED, account, query_id)
            return _DROPPED_DISPATCH
        delay = self._roll_delay(message, sender, receiver)
        if delay > 0:
            self._enqueue(Envelope(sender, receiver, message, query_id, True, account), delay)
            if self._observers:
                self._notify(OP_REQUEST, sender, receiver, message, DEFERRED, account, query_id)
            return _DEFERRED_DISPATCH
        reply = handler(Envelope(sender, receiver, message, query_id, True, account))
        if reply is None:
            if self._observers:
                self._notify(OP_REQUEST, sender, receiver, message, DELIVERED, account, query_id)
            return _DELIVERED_SILENT_DISPATCH
        if account:
            self._account(receiver, sender, reply, query_id)
        if self._roll_drop(reply, receiver, sender):
            # The receiver DID process the request; only its answer is lost.
            # Distinguished from DROPPED so callers do not retry work the
            # other side already performed.
            if self._observers:
                self._notify(OP_REQUEST, sender, receiver, message, REPLY_DROPPED, account, query_id)
                self._notify(OP_REPLY, receiver, sender, reply, DROPPED, account, query_id)
            return _REPLY_DROPPED_DISPATCH
        if self._observers:
            self._notify(OP_REQUEST, sender, receiver, message, DELIVERED, account, query_id)
            self._notify(OP_REPLY, receiver, sender, reply, DELIVERED, account, query_id)
        return Dispatch(DELIVERED, reply)

    def send(
        self,
        sender: int,
        receiver: int,
        message: Message,
        query_id: Optional[int] = None,
        account: bool = True,
    ) -> str:
        """One-way, fire-and-forget send; returns the dispatch status."""
        node = self._network.try_contact(receiver)
        handler = getattr(node, "handle_message", None)
        if handler is None or self._inbound_blocked(sender, receiver):
            if self._observers:
                self._notify(OP_SEND, sender, receiver, message, UNREACHABLE, False, query_id)
            return UNREACHABLE
        if account:
            self._account(sender, receiver, message, query_id)
        if self._roll_drop(message, sender, receiver):
            if self._observers:
                self._notify(OP_SEND, sender, receiver, message, DROPPED, account, query_id)
            return DROPPED
        delay = self._roll_delay(message, sender, receiver)
        if delay > 0:
            self._enqueue(Envelope(sender, receiver, message, query_id, False, account), delay)
            if self._observers:
                self._notify(OP_SEND, sender, receiver, message, DEFERRED, account, query_id)
            return DEFERRED
        handler(Envelope(sender, receiver, message, query_id, False, account))
        if self._observers:
            self._notify(OP_SEND, sender, receiver, message, DELIVERED, account, query_id)
        return DELIVERED

    # -- deferred delivery ----------------------------------------------------

    def pending_count(self) -> int:
        """Number of in-flight (delayed) envelopes."""
        if not self._queue:
            return 0
        return sum(len(batch) for batch in self._queue.values())

    def drain(self) -> int:
        """Deliver every queued envelope now due; returns the count delivered.

        Called by the engine at the start of each cycle, after scheduled
        events (so churn applies first: a message to a node that departed
        while it was in flight is simply lost -- its bytes were already
        spent).  Replies to deferred round-trips are routed back through
        :meth:`send` and may themselves be dropped or delayed.
        """
        if not self._queue:
            return 0
        now = self._network.current_cycle
        due = sorted(cycle for cycle in self._queue if cycle <= now)
        delivered = 0
        for cycle in due:
            for envelope in self._queue.pop(cycle):
                node = self._network.try_contact(envelope.receiver)
                handler = getattr(node, "handle_message", None)
                if handler is None:
                    if self._observers:
                        self._notify(
                            OP_DRAIN,
                            envelope.sender,
                            envelope.receiver,
                            envelope.message,
                            LOST,
                            False,
                            envelope.query_id,
                        )
                    continue
                hold = self._drain_blocked(envelope)
                if hold is not None and hold > 0:
                    # An active partition cut: the envelope stays in flight
                    # (its bytes were spent once, at send time) and becomes
                    # due again when the condition lifts.
                    self._queue.setdefault(now + hold, []).append(envelope)
                    if self._observers:
                        self._notify(
                            OP_DRAIN,
                            envelope.sender,
                            envelope.receiver,
                            envelope.message,
                            DEFERRED,
                            False,
                            envelope.query_id,
                        )
                    continue
                delivered += 1
                if self._observers:
                    self._notify(
                        OP_DRAIN,
                        envelope.sender,
                        envelope.receiver,
                        envelope.message,
                        DELIVERED,
                        False,
                        envelope.query_id,
                    )
                reply = handler(envelope)
                if reply is not None and envelope.expects_reply:
                    self.send(
                        envelope.receiver,
                        envelope.sender,
                        reply,
                        query_id=envelope.query_id,
                        account=envelope.account,
                    )
        return delivered

    def _enqueue(self, envelope: Envelope, delay: int) -> None:
        due = self._network.current_cycle + delay
        self._queue.setdefault(due, []).append(envelope)

    # -- delivery internals ---------------------------------------------------

    def _account(
        self,
        sender: int,
        receiver: int,
        message: Message,
        query_id: Optional[int],
    ) -> None:
        """The single byte-accounting hook every message passes through.

        Control messages (``kind`` is ``None``) and failure replies carrying
        a ``None`` payload are free; everything else is priced at send time
        by :func:`repro.gossip.sizes.total_bytes`.
        """
        kind = message.kind
        if kind is None or not message.accountable:
            return
        self._network.account(
            sender, receiver, kind, self._total_bytes(message), query_id=query_id
        )


class DirectTransport(Transport):
    """Synchronous, lossless delivery -- the seed's semantics, bit-identical.

    Overrides the send paths without the drop/delay hooks: this transport
    carries every message of every reproduced figure, so the round-trip is
    kept as lean as resolve -> account -> deliver -> account.  Accounting is
    inlined (the same row :meth:`Transport._account` would record through
    :meth:`Network.account`, without the two intermediate frames): tens of
    thousands of round-trips per cycle make every call frame measurable.
    """

    name = "direct"

    def request(
        self,
        sender: int,
        receiver: int,
        message: Message,
        query_id: Optional[int] = None,
        account: bool = True,
    ) -> Dispatch:
        network = self._network
        handler = getattr(network.try_contact(receiver), "handle_message", None)
        if handler is None:
            if self._observers:
                self._notify(OP_REQUEST, sender, receiver, message, UNREACHABLE, False, query_id)
            return _UNREACHABLE_DISPATCH
        if account:
            kind = message.kind
            if kind is not None and message.accountable:
                network.stats.record(
                    network.current_cycle, sender, receiver, kind,
                    self._total_bytes(message), query_id,
                )
        reply = handler(Envelope(sender, receiver, message, query_id, True, account))
        if reply is None:
            if self._observers:
                self._notify(OP_REQUEST, sender, receiver, message, DELIVERED, account, query_id)
            return _DELIVERED_SILENT_DISPATCH
        if account:
            kind = reply.kind
            if kind is not None and reply.accountable:
                network.stats.record(
                    network.current_cycle, receiver, sender, kind,
                    self._total_bytes(reply), query_id,
                )
        if self._observers:
            self._notify(OP_REQUEST, sender, receiver, message, DELIVERED, account, query_id)
            self._notify(OP_REPLY, receiver, sender, reply, DELIVERED, account, query_id)
        return Dispatch(DELIVERED, reply)

    def send(
        self,
        sender: int,
        receiver: int,
        message: Message,
        query_id: Optional[int] = None,
        account: bool = True,
    ) -> str:
        handler = getattr(self._network.try_contact(receiver), "handle_message", None)
        if handler is None:
            if self._observers:
                self._notify(OP_SEND, sender, receiver, message, UNREACHABLE, False, query_id)
            return UNREACHABLE
        if account:
            self._account(sender, receiver, message, query_id)
        handler(Envelope(sender, receiver, message, query_id, False, account))
        if self._observers:
            self._notify(OP_SEND, sender, receiver, message, DELIVERED, account, query_id)
        return DELIVERED


class LossyTransport(Transport):
    """Drops each message independently with probability ``loss_rate``.

    The drop stream is seeded and separate from every node's RNG stream, so
    a ``loss_rate`` of 0 is bit-identical to :class:`DirectTransport` and a
    fixed seed yields a fully deterministic run.
    """

    name = "lossy"

    def __init__(self, loss_rate: float, seed: int = 0) -> None:
        super().__init__()
        self.loss_rate = _validate_loss_rate(loss_rate)
        self._drop_rng = random.Random(f"{seed}/transport/loss")

    def _roll_drop(self, message: Message, sender: int, receiver: int) -> bool:
        if self.loss_rate <= 0.0:
            return False
        return self._drop_rng.random() < self.loss_rate

    @property
    def drop_rng(self) -> random.Random:
        return self._drop_rng


class LatencyTransport(LossyTransport):
    """Delays top-level exchanges by 0..``delay_cycles`` engine cycles.

    Delays are drawn from a seeded stream separate from the drop stream;
    ``delay_cycles=0`` (with ``loss_rate=0``) is bit-identical to
    :class:`DirectTransport`.  Only ``DEFERRABLE`` messages are ever queued;
    the control sub-requests of an exchange stay synchronous (see the module
    docstring for the semantics).
    """

    name = "latency"

    def __init__(self, delay_cycles: int, seed: int = 0, loss_rate: float = 0.0) -> None:
        super().__init__(loss_rate, seed=seed)
        self.delay_cycles = _validate_delay_cycles(delay_cycles)
        self._delay_rng = random.Random(f"{seed}/transport/delay")

    def _roll_delay(self, message: Message, sender: int, receiver: int) -> int:
        if self.delay_cycles <= 0 or not message.DEFERRABLE:
            return 0
        return self._delay_rng.randint(0, self.delay_cycles)


#: Transport names accepted by :func:`make_transport` / ``P3QConfig.transport``.
TRANSPORT_NAMES = ("direct", "lossy", "latency", "conditioned")


def _validate_loss_rate(loss_rate: float) -> float:
    """A loss rate must be a finite real number in [0, 1].

    NaN would silently disable every comparison-based drop roll and booleans
    are almost certainly a mixed-up argument, so both are rejected rather
    than accepted as degenerate probabilities.
    """
    if isinstance(loss_rate, bool) or not isinstance(loss_rate, (int, float)):
        raise TypeError(f"loss_rate must be a number, got {loss_rate!r}")
    if not math.isfinite(loss_rate) or not 0.0 <= loss_rate <= 1.0:
        raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate!r}")
    return float(loss_rate)


def _validate_delay_cycles(delay_cycles: int) -> int:
    """A delay bound must be a non-negative integer.

    A float (even an integral one) would only blow up cycles later inside
    ``randint``, mid-simulation; failing at construction keeps the error at
    the configuration site.
    """
    if isinstance(delay_cycles, bool) or not isinstance(delay_cycles, int):
        raise TypeError(f"delay_cycles must be an int, got {delay_cycles!r}")
    if delay_cycles < 0:
        raise ValueError(f"delay_cycles must be non-negative, got {delay_cycles!r}")
    return delay_cycles


def make_transport(
    name: str,
    loss_rate: float = 0.0,
    delay_cycles: int = 0,
    seed: int = 0,
    partition=None,
    asymmetry=None,
) -> Transport:
    """Build a transport from configuration values.

    Network-condition parameters that the named transport would silently
    ignore (a loss rate on ``direct``, a delay on ``lossy``, a partition on
    anything but ``conditioned``) are rejected: a config carrying them
    describes a run the transport will not perform.
    """
    _validate_loss_rate(loss_rate)
    _validate_delay_cycles(delay_cycles)
    if name != "conditioned" and (partition is not None or asymmetry is not None):
        raise ValueError(
            f"partition/asymmetry conditions require the 'conditioned' transport; got {name!r}"
        )
    if name == "direct":
        if loss_rate or delay_cycles:
            raise ValueError(
                "the direct transport is lossless and synchronous; "
                f"got loss_rate={loss_rate!r}, delay_cycles={delay_cycles!r} "
                "(use 'lossy' or 'latency')"
            )
        return DirectTransport()
    if name == "lossy":
        if delay_cycles:
            raise ValueError(
                f"the lossy transport cannot delay messages; got delay_cycles={delay_cycles!r} "
                "(use 'latency', which composes delay with a loss rate)"
            )
        return LossyTransport(loss_rate, seed=seed)
    if name == "latency":
        return LatencyTransport(delay_cycles, seed=seed, loss_rate=loss_rate)
    if name == "conditioned":
        # Imported here: the conditions module builds on this one.
        from .conditions import ConditionedTransport

        return ConditionedTransport(
            seed=seed,
            loss_rate=loss_rate,
            delay_cycles=delay_cycles,
            partition=partition,
            asymmetry=asymmetry,
        )
    raise ValueError(f"unknown transport {name!r} (expected one of {TRANSPORT_NAMES})")
