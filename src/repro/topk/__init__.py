"""Top-k query processing machinery: NRA, incremental NRA, exact oracle."""

from .heap import Candidate, CandidateHeap
from .nra import NRAResult, RankedList, nra_top_k
from .incremental import IncrementalNRA
from .exact import exact_top_k, merge_score_maps, top_k_items

__all__ = [
    "Candidate",
    "CandidateHeap",
    "IncrementalNRA",
    "NRAResult",
    "RankedList",
    "exact_top_k",
    "merge_score_maps",
    "nra_top_k",
    "top_k_items",
]
