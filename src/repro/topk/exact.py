"""Brute-force exact top-k aggregation.

Used as the correctness oracle for the NRA implementations and for small
baselines: simply sum every list's score per item and sort.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Tuple


def merge_score_maps(score_maps: Iterable[Mapping[int, float]]) -> Dict[int, float]:
    """Sum per-item scores across several item -> score maps."""
    totals: Dict[int, float] = defaultdict(float)
    for scores in score_maps:
        for item, score in scores.items():
            totals[item] += score
    return dict(totals)


def exact_top_k(score_maps: Iterable[Mapping[int, float]], k: int) -> List[Tuple[int, float]]:
    """Exact top-k by summed score; deterministic tie-break on item id."""
    if k <= 0:
        raise ValueError("k must be positive")
    totals = merge_score_maps(score_maps)
    ranked = sorted(
        ((item, score) for item, score in totals.items() if score > 0),
        key=lambda pair: (-pair[1], pair[0]),
    )
    return ranked[:k]


def top_k_items(score_maps: Iterable[Mapping[int, float]], k: int) -> List[int]:
    """Just the item ids of :func:`exact_top_k`."""
    return [item for item, _ in exact_top_k(score_maps, k)]
