"""Candidate bookkeeping for NRA-style top-k processing.

NRA (No Random Access) maintains, for every item seen so far, a *worst-case*
score (assume the item is absent from every list where it has not yet been
seen) and a *best-case* score (assume its score in those lists equals the
last value read from them).  Candidates are ordered by worst-case score,
ties broken by best-case score, and the algorithm can stop as soon as no
candidate outside the current top-k can possibly beat the k-th worst-case
score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass
class Candidate:
    """One item tracked by the NRA candidate heap."""

    item: int
    #: Sum of the scores actually seen for this item, per source list id.
    seen_scores: Dict[int, float] = field(default_factory=dict)

    def worst_case(self) -> float:
        """Pessimistic score: unseen lists contribute nothing."""
        return sum(self.seen_scores.values())

    def best_case(self, last_seen: Dict[int, float]) -> float:
        """Optimistic score: unseen lists contribute their last-seen value.

        ``last_seen`` maps list id -> the score at the current scan position
        of that list (0 once a list is exhausted).
        """
        total = self.worst_case()
        for list_id, bound in last_seen.items():
            if list_id not in self.seen_scores:
                total += bound
        return total


class CandidateHeap:
    """The candidate set of an NRA run.

    The structure is deliberately a sorted-on-demand dict rather than an
    actual binary heap: both best- and worst-case scores of *every*
    candidate change when any list advances, so a heap would be re-built
    each step anyway.  The paper notes the same simplification
    ("not re-ranking the candidate heap once an item is modified" is listed
    as an optimization out of scope).
    """

    def __init__(self) -> None:
        self._candidates: Dict[int, Candidate] = {}

    def __len__(self) -> int:
        return len(self._candidates)

    def __contains__(self, item: int) -> bool:
        return item in self._candidates

    def items(self) -> Iterable[int]:
        return self._candidates.keys()

    def observe(self, item: int, list_id: int, score: float) -> None:
        """Record that ``item`` was seen in list ``list_id`` with ``score``."""
        candidate = self._candidates.get(item)
        if candidate is None:
            candidate = Candidate(item)
            self._candidates[item] = candidate
        candidate.seen_scores[list_id] = score

    def ranked(self, last_seen: Dict[int, float]) -> List[Tuple[int, float, float]]:
        """Candidates as ``(item, worst_case, best_case)`` in NRA order.

        Ordering: descending worst-case, then descending best-case, then item
        id for determinism.
        """
        rows = [
            (c.item, c.worst_case(), c.best_case(last_seen))
            for c in self._candidates.values()
        ]
        rows.sort(key=lambda row: (-row[1], -row[2], row[0]))
        return rows

    def top_k(self, k: int, last_seen: Dict[int, float]) -> List[Tuple[int, float]]:
        """Current top-k as ``(item, worst_case_score)``."""
        return [(item, worst) for item, worst, _ in self.ranked(last_seen)[:k]]

    def is_confident(self, k: int, last_seen: Dict[int, float]) -> bool:
        """NRA stop condition.

        True when the k-th candidate's worst-case score is at least the
        best-case score of every object outside the current top-k -- both the
        candidates already seen and the *unseen* objects, whose best possible
        score is the sum of the last-seen values over all lists (the classical
        NRA threshold).  With fewer than k candidates the answer cannot be
        confident unless every list is exhausted (``last_seen`` all zero),
        which the caller checks.
        """
        ranked = self.ranked(last_seen)
        if len(ranked) < k:
            return False
        kth_worst = ranked[k - 1][1]
        unseen_best = sum(last_seen.values())
        if unseen_best > kth_worst:
            return False
        for _, _, best in ranked[k:]:
            if best > kth_worst:
                return False
        return True
