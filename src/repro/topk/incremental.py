"""Incremental NRA for asynchronously arriving partial result lists.

In P3Q the inputs of the top-k aggregation are not all available up front:
partial result lists are produced on the fly by the users reached by the
query and arrive at the querier over several gossip cycles.  Algorithm 4 of
the paper adapts NRA to this setting:

* the querier keeps, across cycles, the candidate heap and the per-list scan
  state (last seen value, last scanned position);
* at each cycle the *new* lists are scanned sequentially in parallel,
  starting from position 1;
* whenever the scan cursor reaches a position where some *old* list had
  stopped, that old list rejoins the scan -- so every list is scanned at most
  once over the whole processing;
* the scan of a cycle stops when the NRA confidence condition holds for the
  current knowledge (or everything is exhausted), and the current top-k is
  displayed to the user.

The final top-k (once every neighbour's profile has contributed) equals the
exact personalized top-k the centralized baseline would compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .heap import CandidateHeap
from .nra import RankedList


@dataclass
class _ListState:
    """Scan state of one partial result list across cycles."""

    ranked: RankedList
    position: int = 0          # next index to read
    last_seen: float = 0.0     # score at the last read position (bound for unseen items)

    def __post_init__(self) -> None:
        if self.ranked.entries:
            # Before the first read, the optimistic bound for unseen items is
            # the list's top score.
            self.last_seen = self.ranked.entries[0][1]
        else:
            self.last_seen = 0.0

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.ranked.entries)


class IncrementalNRA:
    """Querier-side incremental top-k merging (paper Algorithm 4)."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self._heap = CandidateHeap()
        self._lists: Dict[int, _ListState] = {}
        self._next_list_id = 0
        self._total_accesses = 0

    # -- feeding lists --------------------------------------------------------

    def add_list(self, scores: Dict[int, float], list_id: Optional[int] = None) -> int:
        """Register a newly received partial result list.

        ``scores`` maps item -> partial relevance score; only positive scores
        are kept (the paper's partial results only contain items with positive
        partial scores).  Returns the internal list id.
        """
        if list_id is None:
            list_id = self._next_list_id
        if list_id in self._lists:
            raise ValueError(f"list id {list_id} already registered")
        self._next_list_id = max(self._next_list_id, list_id) + 1
        ranked = RankedList.from_scores(list_id, scores)
        self._lists[list_id] = _ListState(ranked=ranked)
        return list_id

    # -- per-cycle processing -------------------------------------------------

    def process_cycle(self, new_lists: Sequence[Dict[int, float]] = ()) -> List[Tuple[int, float]]:
        """Add the lists received this cycle and recompute the top-k.

        Returns the current top-k as ``(item, worst_case_score)`` pairs; the
        worst-case score equals the exact score once processing is complete.
        """
        new_ids = [self.add_list(scores) for scores in new_lists]
        self._scan(new_ids)
        return self.current_top_k()

    def _last_seen_bounds(self) -> Dict[int, float]:
        return {
            list_id: (0.0 if state.exhausted else state.last_seen)
            for list_id, state in self._lists.items()
        }

    def _scan(self, new_ids: Sequence[int]) -> None:
        """One cycle of Algorithm 4: scan new lists, pulling old ones back in."""
        new_set = set(new_ids)
        scanning: List[_ListState] = [
            self._lists[list_id] for list_id in new_ids if not self._lists[list_id].exhausted
        ]
        # Old lists that were never exhausted rejoin when the cursor reaches
        # the position where they had stopped (Algorithm 4, lines 18-22).
        dormant: List[_ListState] = [
            state
            for list_id, state in self._lists.items()
            if list_id not in new_set and not state.exhausted
        ]

        scanning_position = 0
        while (scanning or dormant) and not self._confident():
            if not scanning:
                # The new lists are exhausted but the answer is not confident
                # yet: resume the remaining old lists from where they stopped.
                scanning, dormant = dormant, []
            for state in list(scanning):
                item, score = state.ranked.entries[state.position]
                self._heap.observe(item, state.ranked.list_id, score)
                state.last_seen = score
                state.position += 1
                self._total_accesses += 1
                if state.exhausted:
                    scanning.remove(state)
            scanning_position += 1
            # Old lists stopped exactly at this depth rejoin the parallel scan.
            for state in list(dormant):
                if state.position == scanning_position:
                    dormant.remove(state)
                    if not state.exhausted:
                        scanning.append(state)

    def _confident(self) -> bool:
        bounds = self._last_seen_bounds()
        if all(state.exhausted for state in self._lists.values()):
            return True
        return self._heap.is_confident(self.k, bounds)

    # -- results --------------------------------------------------------------

    def current_top_k(self) -> List[Tuple[int, float]]:
        """The current best answer given everything scanned so far."""
        return self._heap.top_k(self.k, self._last_seen_bounds())

    def current_items(self) -> List[int]:
        return [item for item, _ in self.current_top_k()]

    def finalize(self) -> List[Tuple[int, float]]:
        """Exhaust every registered list and return the exact top-k.

        Used when the querier knows no further partial results will arrive
        (all neighbours' profiles have been used) and wants the final answer
        regardless of the early-stop condition.
        """
        pending = [list_id for list_id, state in self._lists.items() if not state.exhausted]
        while pending:
            for list_id in pending:
                state = self._lists[list_id]
                while not state.exhausted:
                    item, score = state.ranked.entries[state.position]
                    self._heap.observe(item, list_id, score)
                    state.last_seen = score
                    state.position += 1
                    self._total_accesses += 1
            pending = [list_id for list_id, state in self._lists.items() if not state.exhausted]
        return self.current_top_k()

    # -- introspection --------------------------------------------------------

    @property
    def num_lists(self) -> int:
        return len(self._lists)

    @property
    def sequential_accesses(self) -> int:
        return self._total_accesses

    @property
    def num_candidates(self) -> int:
        return len(self._heap)
