"""Classical NRA (No Random Access) top-k aggregation.

Fagin's NRA algorithm merges several ranked lists, each mapping items to
partial scores sorted in descending score order, into the top-k items by
*sum* of partial scores -- reading the lists strictly sequentially (no random
access by item).  P3Q's querier-side merging (Algorithm 4) is an incremental
adaptation of this algorithm; the classical version lives here both as the
reference implementation the incremental one is tested against and as a
baseline in its own right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .heap import CandidateHeap


@dataclass(frozen=True)
class RankedList:
    """One input list: ``(item, score)`` pairs sorted by descending score."""

    list_id: int
    entries: Tuple[Tuple[int, float], ...]

    def __post_init__(self) -> None:
        scores = [score for _, score in self.entries]
        if any(b > a for a, b in zip(scores, scores[1:])):
            raise ValueError("RankedList entries must be sorted by descending score")

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def from_scores(cls, list_id: int, scores: Dict[int, float]) -> "RankedList":
        """Build a ranked list from an item -> score map, dropping zeros."""
        entries = tuple(
            sorted(
                ((item, score) for item, score in scores.items() if score > 0),
                key=lambda pair: (-pair[1], pair[0]),
            )
        )
        return cls(list_id=list_id, entries=entries)


@dataclass
class NRAResult:
    """Outcome of an NRA run."""

    #: Top-k items with their (worst-case == exact at termination) scores.
    top_k: List[Tuple[int, float]]
    #: Number of sequential accesses performed across all lists.
    sequential_accesses: int
    #: Scan depth reached (number of rounds of parallel sequential access).
    depth: int

    @property
    def items(self) -> List[int]:
        return [item for item, _ in self.top_k]


def nra_top_k(lists: Sequence[RankedList], k: int) -> NRAResult:
    """Run classical NRA over the given ranked lists.

    Returns the top-k items by summed score.  Items never seen in any list
    have score zero and are never returned.  Terminates as soon as the
    standard NRA confidence condition holds or every list is exhausted.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    heap = CandidateHeap()
    positions = {lst.list_id: 0 for lst in lists}
    last_seen: Dict[int, float] = {lst.list_id: (lst.entries[0][1] if lst.entries else 0.0) for lst in lists}
    accesses = 0
    depth = 0
    active = [lst for lst in lists if lst.entries]

    while active:
        depth += 1
        still_active = []
        for lst in active:
            pos = positions[lst.list_id]
            item, score = lst.entries[pos]
            accesses += 1
            heap.observe(item, lst.list_id, score)
            last_seen[lst.list_id] = score
            positions[lst.list_id] = pos + 1
            if pos + 1 < len(lst.entries):
                still_active.append(lst)
            else:
                # An exhausted list can no longer contribute to best-case scores.
                last_seen[lst.list_id] = 0.0
        active = still_active
        if heap.is_confident(k, last_seen):
            break

    top = heap.top_k(k, last_seen)
    return NRAResult(top_k=top, sequential_accesses=accesses, depth=depth)
