"""Shared fixtures for the test suite.

Fixtures deliberately use very small datasets and Bloom filters so the full
suite runs in seconds; the experiment-scale behaviour is exercised by the
benchmark harness instead.
"""

from __future__ import annotations

import pytest

from repro.data.models import Dataset
from repro.data.queries import Query, QueryWorkloadGenerator
from repro.data.synthetic import SyntheticConfig, generate_dataset
from repro.p3q.config import P3QConfig
from repro.p3q.protocol import P3QSimulation
from repro.similarity.knn import IdealNetworkIndex


@pytest.fixture(scope="session")
def tiny_dataset() -> Dataset:
    """A handcrafted 5-user dataset with known overlaps.

    Users 0, 1, 2 form a community around items 1-4; users 3 and 4 share a
    separate community around items 10-12; user 4 also touches item 1 so the
    two groups are weakly connected.
    """
    actions = {
        0: [(1, 100), (2, 100), (3, 101), (4, 102)],
        1: [(1, 100), (2, 100), (3, 101), (5, 103)],
        2: [(1, 100), (2, 105), (4, 102), (6, 104)],
        3: [(10, 200), (11, 201), (12, 202)],
        4: [(10, 200), (11, 201), (1, 100)],
    }
    return Dataset.from_actions(actions)


@pytest.fixture(scope="session")
def synthetic_dataset() -> Dataset:
    """A seeded synthetic dataset, small but structurally realistic."""
    config = SyntheticConfig(
        num_users=60,
        num_items=400,
        num_tags=120,
        num_communities=6,
        mean_actions_per_user=30,
        seed=7,
    )
    return generate_dataset(config)


@pytest.fixture(scope="session")
def synthetic_ideal(synthetic_dataset) -> IdealNetworkIndex:
    return IdealNetworkIndex(synthetic_dataset, size=20)


@pytest.fixture()
def small_config() -> P3QConfig:
    return P3QConfig(
        network_size=20,
        storage=5,
        random_view_size=5,
        k=10,
        alpha=0.5,
        digest_bits=2_048,
        digest_hashes=5,
        seed=3,
    )


@pytest.fixture()
def warm_simulation(synthetic_dataset, small_config) -> P3QSimulation:
    """A warm-started simulation over the synthetic dataset."""
    simulation = P3QSimulation(synthetic_dataset.copy(), small_config)
    simulation.warm_start()
    simulation.bootstrap_random_views()
    return simulation


@pytest.fixture()
def query_workload(synthetic_dataset) -> list[Query]:
    generator = QueryWorkloadGenerator(synthetic_dataset, seed=5)
    return generator.generate(synthetic_dataset.user_ids[:10])
